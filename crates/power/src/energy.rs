use crate::{constants, AreaModel};
use rasa_systolic::{EngineStats, SystolicConfig};
use std::fmt;

/// The activity counts an energy estimate is based on, normally derived
/// from the matrix engine's [`EngineStats`] after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineActivitySummary {
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Number of `rasa_mm` instructions that streamed weights into the
    /// array (full loads plus shadow prefetches; bypassed loads move no
    /// data).
    pub weight_loads: u64,
    /// Engine cycles from the start of the run to the last completion.
    pub busy_engine_cycles: u64,
    /// Bytes streamed between the tile registers and the array edges
    /// (operands in, results out).
    pub tile_io_bytes: u64,
}

impl EngineActivitySummary {
    /// Derives the summary from engine statistics, given the weight-tile and
    /// I/O volume per instruction implied by the ISA tile geometry
    /// (a full AMX-like tile moves a 2 KB A tile + 1 KB C tile in and a 1 KB
    /// C tile out, and a weight load streams 512 BF16 values).
    #[must_use]
    pub fn from_engine_stats(stats: &EngineStats) -> Self {
        let weight_loads = stats.full_weight_loads + stats.weight_prefetches;
        EngineActivitySummary {
            macs: stats.total_macs,
            weight_loads,
            busy_engine_cycles: stats.last_completion_cycle,
            tile_io_bytes: stats.matmuls * (2048 + 1024 + 1024),
        }
    }
}

/// Component-wise energy of one run (joules).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Multiply-accumulate energy.
    pub mac: f64,
    /// Weight-load streaming energy.
    pub weight_load: f64,
    /// Operand feed / result drain energy.
    pub tile_io: f64,
    /// Time-proportional (leakage + clock-tree) energy.
    pub static_clock: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.mac + self.weight_load + self.tile_io + self.static_clock
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} J (mac {:.3e}, wl {:.3e}, io {:.3e}, static {:.3e})",
            self.total(),
            self.mac,
            self.weight_load,
            self.tile_io,
            self.static_clock
        )
    }
}

/// The analytical energy model (see [`crate::constants`] for calibration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyModel {
    area: AreaModel,
}

impl EnergyModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        EnergyModel {
            area: AreaModel::new(),
        }
    }

    /// Estimates the energy of a run on the given array configuration.
    #[must_use]
    pub fn energy(
        &self,
        config: &SystolicConfig,
        activity: &EngineActivitySummary,
    ) -> EnergyBreakdown {
        let area = self.area.array_area_mm2(config);
        let weight_values_per_load = (config.max_tk() * config.max_tn()) as f64;
        let runtime_s = activity.busy_engine_cycles as f64 / constants::ENGINE_CLOCK_HZ;
        EnergyBreakdown {
            mac: activity.macs as f64 * constants::MAC_ENERGY,
            weight_load: activity.weight_loads as f64
                * weight_values_per_load
                * constants::WEIGHT_LOAD_ENERGY_PER_VALUE,
            tile_io: activity.tile_io_bytes as f64 * constants::TILE_IO_ENERGY_PER_BYTE,
            static_clock: constants::STATIC_CLOCK_POWER_DENSITY * area * runtime_s,
        }
    }

    /// Average power over the run in watts.
    #[must_use]
    pub fn average_power(&self, config: &SystolicConfig, activity: &EngineActivitySummary) -> f64 {
        let runtime_s = activity.busy_engine_cycles as f64 / constants::ENGINE_CLOCK_HZ;
        if runtime_s <= 0.0 {
            return 0.0;
        }
        self.energy(config, activity).total() / runtime_s
    }

    /// Energy-efficiency improvement of `config` over `baseline` for runs
    /// performing the same useful work (the paper's "energy efficiency vs.
    /// the baseline" metric): the ratio of total energies.
    #[must_use]
    pub fn efficiency_vs(
        &self,
        config: &SystolicConfig,
        activity: &EngineActivitySummary,
        baseline: &SystolicConfig,
        baseline_activity: &EngineActivitySummary,
    ) -> f64 {
        let e = self.energy(config, activity).total();
        if e <= 0.0 {
            return 0.0;
        }
        self.energy(baseline, baseline_activity).total() / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_systolic::{ControlScheme, PeVariant};

    /// Synthetic activity for a GEMM of `mm` full tiles finishing after
    /// `interval` engine cycles per instruction.
    fn activity(mm: u64, interval: u64, weight_load_every: u64) -> EngineActivitySummary {
        EngineActivitySummary {
            macs: mm * 8192,
            weight_loads: mm / weight_load_every,
            busy_engine_cycles: mm * interval,
            tile_io_bytes: mm * 4096,
        }
    }

    #[test]
    fn energy_breakdown_sums() {
        let model = EnergyModel::new();
        let cfg = SystolicConfig::paper_baseline();
        let act = activity(1000, 95, 1);
        let e = model.energy(&cfg, &act);
        assert!(e.total() > 0.0);
        assert!((e.total() - (e.mac + e.weight_load + e.tile_io + e.static_clock)).abs() < 1e-18);
        assert!(e.to_string().contains("static"));
        // The time-proportional term dominates for the under-utilized
        // baseline, which is what the paper's efficiency ratios imply.
        assert!(e.static_clock > 10.0 * (e.mac + e.weight_load + e.tile_io));
    }

    #[test]
    fn efficiency_ratios_match_paper_scale() {
        let model = EnergyModel::new();
        let baseline = SystolicConfig::paper_baseline();
        let base_act = activity(10_000, 95, 1);

        // RASA-DB-WLS: ≈78 % runtime reduction, weight loads halved.
        let db = SystolicConfig::paper(PeVariant::Db, ControlScheme::Wls).unwrap();
        let db_act = activity(10_000, 21, 2);
        let eff_db = model.efficiency_vs(&db, &db_act, &baseline, &base_act);
        assert!(eff_db > 3.5 && eff_db < 5.5, "db-wls efficiency {eff_db}");

        // RASA-DM-WLBP: ≈55 % runtime reduction.
        let dm = SystolicConfig::paper(PeVariant::Dm, ControlScheme::Wlbp).unwrap();
        let dm_act = activity(10_000, 42, 2);
        let eff_dm = model.efficiency_vs(&dm, &dm_act, &baseline, &base_act);
        assert!(eff_dm > 1.8 && eff_dm < 2.8, "dm-wlbp efficiency {eff_dm}");

        // RASA-DMDB-WLS: ≈79 % runtime reduction.
        let dmdb = SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap();
        let dmdb_act = activity(10_000, 20, 2);
        let eff_dmdb = model.efficiency_vs(&dmdb, &dmdb_act, &baseline, &base_act);
        assert!(
            eff_dmdb > 3.8 && eff_dmdb < 5.8,
            "dmdb-wls efficiency {eff_dmdb}"
        );

        // Ordering: both WLS designs beat DM-WLBP.
        assert!(eff_db > eff_dm && eff_dmdb > eff_dm);
    }

    #[test]
    fn power_is_area_and_runtime_sensitive() {
        let model = EnergyModel::new();
        let base = SystolicConfig::paper_baseline();
        let act = activity(100, 95, 1);
        let p = model.average_power(&base, &act);
        // Sub-watt block.
        assert!(p > 0.1 && p < 5.0, "power {p}");
        assert_eq!(
            model.average_power(&base, &EngineActivitySummary::default()),
            0.0
        );
    }

    #[test]
    fn from_engine_stats_conversion() {
        let stats = EngineStats {
            matmuls: 10,
            weight_bypasses: 5,
            weight_prefetches: 2,
            full_weight_loads: 3,
            occupancy_cycles: 900,
            last_completion_cycle: 500,
            total_macs: 81920,
            operand_stall_cycles: 0,
            structural_stall_cycles: 0,
        };
        let act = EngineActivitySummary::from_engine_stats(&stats);
        assert_eq!(act.macs, 81920);
        assert_eq!(act.weight_loads, 5);
        assert_eq!(act.busy_engine_cycles, 500);
        assert_eq!(act.tile_io_bytes, 10 * 4096);
    }
}
