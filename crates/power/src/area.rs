use crate::constants;
use rasa_systolic::{PeVariant, SystolicConfig};
use std::fmt;

/// Component-wise area of one systolic-array configuration (all in mm²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Total multiplier area.
    pub multipliers: f64,
    /// Total adder area (including the DM merge-adder row).
    pub adders: f64,
    /// Total weight-buffer area (stationary plus shadow planes).
    pub weight_buffers: f64,
    /// Total PE pipeline/control area.
    pub pipeline: f64,
    /// Array-level control, skew buffers and register ports.
    pub control: f64,
}

impl AreaBreakdown {
    /// Total array area.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.multipliers + self.adders + self.weight_buffers + self.pipeline + self.control
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} mm² (mul {:.3}, add {:.3}, wbuf {:.3}, pipe {:.3}, ctrl {:.3})",
            self.total(),
            self.multipliers,
            self.adders,
            self.weight_buffers,
            self.pipeline,
            self.control
        )
    }
}

/// The analytical area model (see [`crate::constants`] for calibration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AreaModel;

impl AreaModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        AreaModel
    }

    /// Area of a single PE of the given variant (mm²), excluding the
    /// array-level control and the merge-adder row.
    #[must_use]
    pub fn pe_area_mm2(&self, variant: PeVariant) -> f64 {
        let lanes = variant.multipliers_per_pe() as f64;
        let multipliers = lanes * constants::BF16_MULTIPLIER_AREA;
        let adders = lanes * constants::FP32_ADDER_AREA;
        let weight_buffers = lanes * constants::WEIGHT_BUFFER_AREA
            + if variant.has_double_buffering() {
                lanes * (constants::WEIGHT_BUFFER_AREA + constants::SHADOW_BUFFER_AREA)
            } else {
                0.0
            };
        let pipeline = if variant.has_double_multiplier() {
            constants::PE_PIPELINE_AREA_DM
        } else {
            constants::PE_PIPELINE_AREA
        };
        multipliers + adders + weight_buffers + pipeline
    }

    /// Full component breakdown for an array configuration.
    #[must_use]
    pub fn breakdown(&self, config: &SystolicConfig) -> AreaBreakdown {
        let variant = config.pe();
        let pes = config.num_pes() as f64;
        let lanes = variant.multipliers_per_pe() as f64;

        let multipliers = pes * lanes * constants::BF16_MULTIPLIER_AREA;
        let mut adders = pes * lanes * constants::FP32_ADDER_AREA;
        if variant.needs_merge_adder_row() {
            adders += config.cols() as f64 * constants::FP32_ADDER_AREA;
        }
        let mut weight_buffers = pes * lanes * constants::WEIGHT_BUFFER_AREA;
        if variant.has_double_buffering() {
            weight_buffers +=
                pes * lanes * (constants::WEIGHT_BUFFER_AREA + constants::SHADOW_BUFFER_AREA);
        }
        let pipeline = pes
            * if variant.has_double_multiplier() {
                constants::PE_PIPELINE_AREA_DM
            } else {
                constants::PE_PIPELINE_AREA
            };
        AreaBreakdown {
            multipliers,
            adders,
            weight_buffers,
            pipeline,
            control: constants::ARRAY_CONTROL_AREA,
        }
    }

    /// Total array area (mm²).
    #[must_use]
    pub fn array_area_mm2(&self, config: &SystolicConfig) -> f64 {
        self.breakdown(config).total()
    }

    /// Area overhead of `config` relative to `baseline` (0.031 means
    /// "+3.1 %").
    #[must_use]
    pub fn overhead_vs(&self, config: &SystolicConfig, baseline: &SystolicConfig) -> f64 {
        self.array_area_mm2(config) / self.array_area_mm2(baseline) - 1.0
    }

    /// The array's share of the Skylake GT2 4-core die (the paper reports
    /// ≈0.7 % for the baseline array).
    #[must_use]
    pub fn fraction_of_skylake_die(&self, config: &SystolicConfig) -> f64 {
        self.array_area_mm2(config) / constants::SKYLAKE_GT2_4C_DIE_AREA
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_systolic::ControlScheme;

    fn cfg(pe: PeVariant) -> SystolicConfig {
        let scheme = if pe.has_double_buffering() {
            ControlScheme::Wls
        } else {
            ControlScheme::Wlbp
        };
        SystolicConfig::paper(pe, scheme).unwrap()
    }

    #[test]
    fn baseline_area_matches_reported_scale() {
        let model = AreaModel::new();
        let baseline = model.array_area_mm2(&SystolicConfig::paper_baseline());
        // ≈0.8 mm², about 0.7 % of the Skylake die.
        assert!(baseline > 0.70 && baseline < 0.95, "baseline {baseline}");
        let frac = model.fraction_of_skylake_die(&SystolicConfig::paper_baseline());
        assert!(frac > 0.005 && frac < 0.009, "die fraction {frac}");
    }

    #[test]
    fn variant_overheads_match_paper_ordering() {
        let model = AreaModel::new();
        let base = SystolicConfig::paper_baseline();
        let db = model.overhead_vs(&cfg(PeVariant::Db), &base);
        let dm = model.overhead_vs(&cfg(PeVariant::Dm), &base);
        let dmdb = model.overhead_vs(&cfg(PeVariant::Dmdb), &base);
        // Paper: +3.1 %, +2.6 %, +5.5 %. Allow a ±1.5 point band.
        assert!((db - 0.031).abs() < 0.015, "db overhead {db}");
        assert!((dm - 0.026).abs() < 0.015, "dm overhead {dm}");
        assert!((dmdb - 0.055).abs() < 0.02, "dmdb overhead {dmdb}");
        // All overheads are small and DMDB is the largest.
        assert!(dmdb > db && dmdb > dm);
        assert!(dmdb < 0.10);
    }

    #[test]
    fn dmdb_total_is_close_to_the_papers_0847() {
        let model = AreaModel::new();
        let dmdb = model.array_area_mm2(&cfg(PeVariant::Dmdb));
        assert!((dmdb - 0.847).abs() < 0.05, "dmdb area {dmdb}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = AreaModel::new();
        for pe in PeVariant::all() {
            let config = if pe.has_double_buffering() {
                cfg(pe)
            } else {
                SystolicConfig::paper(pe, ControlScheme::Base).unwrap()
            };
            let b = model.breakdown(&config);
            assert!((b.total() - model.array_area_mm2(&config)).abs() < 1e-12);
            assert!(b.multipliers > 0.0 && b.pipeline > 0.0 && b.control > 0.0);
            assert!(b.to_string().contains("mm²"));
        }
    }

    #[test]
    fn multiplier_area_is_constant_across_variants() {
        // The paper keeps the multiplier count constant (512); so must the
        // multiplier area.
        let model = AreaModel::new();
        let base = model.breakdown(&SystolicConfig::paper_baseline());
        let dm = model.breakdown(&cfg(PeVariant::Dm));
        assert!((base.multipliers - dm.multipliers).abs() < 1e-12);
    }

    #[test]
    fn pe_area_ordering() {
        let model = AreaModel::new();
        let base = model.pe_area_mm2(PeVariant::Baseline);
        let db = model.pe_area_mm2(PeVariant::Db);
        let dm = model.pe_area_mm2(PeVariant::Dm);
        let dmdb = model.pe_area_mm2(PeVariant::Dmdb);
        assert!(db > base);
        assert!(dm > db); // a DM PE is roughly two PEs worth of datapath
        assert!(dmdb > dm);
    }
}
