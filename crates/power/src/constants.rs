//! Calibrated technology constants of the area/energy model.
//!
//! The RASA paper reports *relative* area and energy numbers obtained from a
//! Nangate 15 nm synthesis flow. The constants below are not lifted from
//! that (unavailable) flow; they are chosen so that the component sums
//! reproduce the paper's reported relations (see the crate documentation)
//! while staying in a physically plausible range for a 15 nm-class library.
//! All areas are in mm², energies in joules, powers in watts.

/// Area of one BF16 multiplier (mm²).
pub const BF16_MULTIPLIER_AREA: f64 = 560.0e-6;

/// Area of one FP32 adder (mm²).
pub const FP32_ADDER_AREA: f64 = 430.0e-6;

/// Area of one 2-byte stationary weight buffer inside a PE (mm²).
pub const WEIGHT_BUFFER_AREA: f64 = 28.0e-6;

/// Area of the extra shadow weight buffer plus its dedicated load link per
/// PE lane (the RASA-DB addition) (mm²).
pub const SHADOW_BUFFER_AREA: f64 = 18.0e-6;

/// Area of the pipeline registers, operand muxes and local control of one
/// single-multiplier PE (mm²).
pub const PE_PIPELINE_AREA: f64 = 465.0e-6;

/// Area of the (wider) pipeline registers and the second accumulation path
/// of a double-multiplier PE (mm²).
pub const PE_PIPELINE_AREA_DM: f64 = 983.0e-6;

/// Area of the array-level control, operand skew buffers and tile-register
/// read/write ports, independent of the PE variant (mm²).
pub const ARRAY_CONTROL_AREA: f64 = 0.044;

/// Die area of the Intel Skylake GT2 4-core CPU the paper compares against
/// (mm²); the baseline array is reported as ≈0.7 % of it.
pub const SKYLAKE_GT2_4C_DIE_AREA: f64 = 122.0;

/// Dynamic energy of one BF16 multiply + FP32 accumulate (J).
pub const MAC_ENERGY: f64 = 0.08e-12;

/// Dynamic energy of moving one weight value into a PE's (shadow) weight
/// buffer during Weight Load (J).
pub const WEIGHT_LOAD_ENERGY_PER_VALUE: f64 = 0.02e-12;

/// Dynamic energy of moving one byte between the tile registers and the
/// array edges (operand feed and drain) (J).
pub const TILE_IO_ENERGY_PER_BYTE: f64 = 0.10e-12;

/// Time-proportional power per mm² of array (leakage plus the ungated clock
/// tree at 500 MHz) (W/mm²). This term dominating the energy balance is what
/// the paper's reported energy-efficiency ratios (≈ the inverse runtime
/// ratios, slightly degraded by the added area) imply.
pub const STATIC_CLOCK_POWER_DENSITY: f64 = 1.2;

/// Engine clock frequency used for converting engine cycles to seconds (Hz).
pub const ENGINE_CLOCK_HZ: f64 = 500.0e6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_physically_sensible() {
        // Component areas are positive and no single PE component exceeds
        // a few thousand square microns at 15 nm.
        for a in [
            BF16_MULTIPLIER_AREA,
            FP32_ADDER_AREA,
            WEIGHT_BUFFER_AREA,
            SHADOW_BUFFER_AREA,
            PE_PIPELINE_AREA,
            PE_PIPELINE_AREA_DM,
        ] {
            assert!(a > 0.0 && a < 5.0e-3);
        }
        assert!(ARRAY_CONTROL_AREA < 0.1);
        // Energies are femto/picojoule scale.
        assert!(MAC_ENERGY > 0.0 && MAC_ENERGY < 10.0e-12);
        assert!(WEIGHT_LOAD_ENERGY_PER_VALUE < MAC_ENERGY);
        assert!(STATIC_CLOCK_POWER_DENSITY > 0.0);
        assert!(ENGINE_CLOCK_HZ > 1.0e8);
    }
}
