use crate::{AreaBreakdown, AreaModel, EnergyBreakdown, EnergyModel, EngineActivitySummary};
use rasa_systolic::SystolicConfig;
use std::fmt;

/// A combined area/energy/performance report for one design point on one
/// workload — the raw material of Fig. 6 (performance per area) and the
/// §V energy-efficiency comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// The design label (e.g. `RASA-DMDB-WLS`).
    pub design: String,
    /// Area breakdown of the array.
    pub area: AreaBreakdown,
    /// Energy breakdown of the run.
    pub energy: EnergyBreakdown,
    /// Core cycles of the run (runtime in the CPU clock domain).
    pub core_cycles: u64,
}

impl PowerReport {
    /// Builds a report for a design point and its observed activity.
    #[must_use]
    pub fn new(
        config: &SystolicConfig,
        activity: &EngineActivitySummary,
        core_cycles: u64,
    ) -> Self {
        let area_model = AreaModel::new();
        let energy_model = EnergyModel::new();
        PowerReport {
            design: config.label(),
            area: area_model.breakdown(config),
            energy: energy_model.energy(config, activity),
            core_cycles,
        }
    }

    /// Performance relative to a baseline report (baseline cycles divided by
    /// this design's cycles; >1 means faster).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &PowerReport) -> f64 {
        if self.core_cycles == 0 {
            return 0.0;
        }
        baseline.core_cycles as f64 / self.core_cycles as f64
    }

    /// Performance-per-area relative to a baseline report — the Fig. 6
    /// metric: speedup divided by the area ratio.
    #[must_use]
    pub fn performance_per_area_vs(&self, baseline: &PowerReport) -> f64 {
        let area_ratio = self.area.total() / baseline.area.total();
        if area_ratio <= 0.0 {
            return 0.0;
        }
        self.speedup_vs(baseline) / area_ratio
    }

    /// Energy-efficiency improvement relative to a baseline report (>1 means
    /// this design uses less energy for the same work).
    #[must_use]
    pub fn energy_efficiency_vs(&self, baseline: &PowerReport) -> f64 {
        let e = self.energy.total();
        if e <= 0.0 {
            return 0.0;
        }
        baseline.energy.total() / e
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} mm², {:.3e} J, {} core cycles",
            self.design,
            self.area.total(),
            self.energy.total(),
            self.core_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_systolic::{ControlScheme, PeVariant};

    fn report(pe: PeVariant, scheme: ControlScheme, interval: u64) -> PowerReport {
        let cfg = SystolicConfig::paper(pe, scheme).unwrap();
        let mm = 10_000u64;
        let act = EngineActivitySummary {
            macs: mm * 8192,
            weight_loads: mm / 2,
            busy_engine_cycles: mm * interval,
            tile_io_bytes: mm * 4096,
        };
        PowerReport::new(&cfg, &act, mm * interval * 4)
    }

    #[test]
    fn fig6_style_comparison() {
        let baseline = report(PeVariant::Baseline, ControlScheme::Base, 95);
        let db_wls = report(PeVariant::Db, ControlScheme::Wls, 21);
        let dm_wlbp = report(PeVariant::Dm, ControlScheme::Wlbp, 42);
        let dmdb_wls = report(PeVariant::Dmdb, ControlScheme::Wls, 20);

        // Speedups mirror the runtime reductions.
        assert!(db_wls.speedup_vs(&baseline) > 4.0);
        assert!(dm_wlbp.speedup_vs(&baseline) > 2.0);
        assert!(dmdb_wls.speedup_vs(&baseline) >= db_wls.speedup_vs(&baseline));

        // Because the area overheads are small, PPA follows the same trend
        // (the Fig. 6 observation).
        let ppa_db = db_wls.performance_per_area_vs(&baseline);
        let ppa_dm = dm_wlbp.performance_per_area_vs(&baseline);
        let ppa_dmdb = dmdb_wls.performance_per_area_vs(&baseline);
        assert!(ppa_db > ppa_dm);
        assert!(ppa_dmdb > ppa_dm);
        assert!(ppa_db > 0.9 * db_wls.speedup_vs(&baseline));

        // Energy efficiency is in the paper's reported range.
        let eff = dmdb_wls.energy_efficiency_vs(&baseline);
        assert!(eff > 3.8 && eff < 5.8, "efficiency {eff}");

        assert!(baseline.to_string().contains("BASELINE"));
        assert_eq!(baseline.speedup_vs(&baseline), 1.0);
        assert!((baseline.performance_per_area_vs(&baseline) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_report_is_safe() {
        let cfg = SystolicConfig::paper_baseline();
        let r = PowerReport::new(&cfg, &EngineActivitySummary::default(), 0);
        let baseline = report(PeVariant::Baseline, ControlScheme::Base, 95);
        assert_eq!(r.speedup_vs(&baseline), 0.0);
        assert_eq!(r.energy_efficiency_vs(&baseline), 0.0);
    }
}
