//! # rasa-power — analytical area, power and energy model for RASA designs
//!
//! The paper synthesizes its RTL with Synopsys DC on the Nangate 15 nm
//! library and uses Cadence Innovus for place-and-route to obtain area and
//! power. Neither tool nor library is available here, so this crate is the
//! documented substitute: a component-level analytical model whose constants
//! are **calibrated** so that the paper's *reported relative results* are
//! reproduced:
//!
//! * the baseline 32×16 array occupies ≈0.8 mm², about 0.7 % of a Skylake
//!   GT2 4-core die;
//! * the RASA-DB / RASA-DM / RASA-DMDB arrays cost ≈3.1 % / 2.6 % / 5.5 %
//!   more area than the baseline (the full DMDB design totals ≈0.847 mm²);
//! * energy efficiency relative to the baseline is dominated by the runtime
//!   reduction (the array's idle/clock power over the run), giving ≈4.4× /
//!   2.2× / 4.6× for DB-WLS / DM-WLBP / DMDB-WLS.
//!
//! The model is deliberately transparent: every constant lives in
//! [`constants`] with the reasoning behind its value, and the area and
//! energy computations are simple sums over component counts, so the
//! sensitivity of any conclusion to the calibration is easy to inspect.
//!
//! ```
//! use rasa_power::AreaModel;
//! use rasa_systolic::{SystolicConfig, PeVariant, ControlScheme};
//!
//! let area = AreaModel::new();
//! let baseline = area.array_area_mm2(&SystolicConfig::paper_baseline());
//! let dmdb = area.array_area_mm2(
//!     &SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls)?);
//! assert!(dmdb > baseline);
//! assert!((dmdb / baseline - 1.0) < 0.08); // small overhead, as reported
//! # Ok::<(), rasa_systolic::SystolicError>(())
//! ```

#![deny(missing_docs)]

pub mod constants;

mod area;
mod energy;
mod report;

pub use area::{AreaBreakdown, AreaModel};
pub use energy::{EnergyBreakdown, EnergyModel, EngineActivitySummary};
pub use report::PowerReport;
