//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use rasa_numeric::{
    gemm_bf16_fp32, gemm_f32, im2col, lower_conv_to_gemm, max_abs_diff, Bf16, ConvShape, GemmShape,
    Matrix, TileGrid, TilingConfig,
};

fn arb_small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f32>> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("length matches"))
}

proptest! {
    /// BF16 round trip: converting f32→bf16→f32 never moves a value by more
    /// than one BF16 ulp (relative 2^-7 for normal values).
    #[test]
    fn bf16_round_trip_error_bounded(x in -1.0e6f32..1.0e6) {
        let r = Bf16::from_f32(x).to_f32();
        let bound = (x.abs() * Bf16::epsilon()).max(f32::MIN_POSITIVE * 256.0);
        prop_assert!((r - x).abs() <= bound, "x={x} r={r}");
    }

    /// BF16 conversion is monotone: a larger f32 never produces a smaller
    /// BF16.
    #[test]
    fn bf16_conversion_is_monotone(a in -1.0e6f32..1.0e6, b in -1.0e6f32..1.0e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo).to_f32() <= Bf16::from_f32(hi).to_f32());
    }

    /// GEMM distributes over split accumulation: computing C += A×B in one
    /// pass equals computing it in two K-halves.
    #[test]
    fn gemm_split_k_accumulation(
        a in arb_small_matrix(5, 8),
        b in arb_small_matrix(8, 4),
    ) {
        let mut c_once = Matrix::zeros(5, 4);
        gemm_f32(&a, &b, &mut c_once);

        // Split K = 8 into 5 + 3 and accumulate in two passes.
        let a1 = a.tile(0, 0, 5, 5);
        let a2 = a.tile(0, 5, 5, 3);
        let b1 = b.tile(0, 0, 5, 4);
        let b2 = b.tile(5, 0, 3, 4);
        let mut c_twice = Matrix::zeros(5, 4);
        gemm_f32(&a1, &b1, &mut c_twice);
        gemm_f32(&a2, &b2, &mut c_twice);

        prop_assert!(max_abs_diff(&c_once, &c_twice) < 1e-4);
    }

    /// The mixed-precision GEMM agrees with the full-precision GEMM computed
    /// on the already-quantized operands (i.e. quantization is the only
    /// source of error, accumulation is exact in f32 for these sizes).
    #[test]
    fn mixed_precision_gemm_matches_quantized_reference(
        a in arb_small_matrix(6, 10),
        b in arb_small_matrix(10, 7),
    ) {
        let a16 = a.map(Bf16::from_f32);
        let b16 = b.map(Bf16::from_f32);
        let aq = a16.map(Bf16::to_f32);
        let bq = b16.map(Bf16::to_f32);
        let mut c_ref = Matrix::zeros(6, 7);
        gemm_f32(&aq, &bq, &mut c_ref);
        let mut c_mixed = Matrix::zeros(6, 7);
        gemm_bf16_fp32(&a16, &b16, &mut c_mixed).unwrap();
        prop_assert!(max_abs_diff(&c_ref, &c_mixed) < 1e-3);
    }

    /// Tiling always covers the full GEMM exactly: the sum of tile extents
    /// along each axis equals the GEMM dimension.
    #[test]
    fn tile_grid_covers_shape(m in 1usize..200, k in 1usize..200, n in 1usize..200) {
        let shape = GemmShape::new(m, k, n);
        let grid = TileGrid::new(shape, TilingConfig::amx()).unwrap();
        let mut m_sum = 0;
        let mut k_sum = 0;
        let mut n_sum = 0;
        for mi in 0..grid.m_tiles() {
            m_sum += grid.tile(mi, 0, 0).unwrap().rows;
        }
        for ki in 0..grid.k_tiles() {
            k_sum += grid.tile(0, ki, 0).unwrap().depth;
        }
        for ni in 0..grid.n_tiles() {
            n_sum += grid.tile(0, 0, ni).unwrap().cols;
        }
        prop_assert_eq!(m_sum, m);
        prop_assert_eq!(k_sum, k);
        prop_assert_eq!(n_sum, n);
        prop_assert_eq!(grid.iter().count(), grid.total_tiles());
    }

    /// im2col lowering preserves the total MAC count: the lowered GEMM
    /// computes exactly conv.macs() multiply-accumulates.
    #[test]
    fn conv_lowering_preserves_macs(
        n in 1usize..3, c in 1usize..4, y in 3usize..8, x in 3usize..8,
        k in 1usize..4, r in 1usize..4, s in 1usize..4,
    ) {
        prop_assume!(r <= y && s <= x);
        let conv = ConvShape::new(n, c, y, x, k, r, s, 1, 0);
        conv.validate().unwrap();
        let gemm = conv.to_gemm();
        prop_assert_eq!(gemm.macs(), conv.macs());
        prop_assert_eq!(gemm.m, n * conv.out_y() * conv.out_x());
        prop_assert_eq!(gemm.k, c * r * s);
        prop_assert_eq!(gemm.n, k);
    }

    /// im2col followed by GEMM equals direct convolution for random data
    /// (small shapes keep the test fast).
    #[test]
    fn im2col_gemm_matches_direct(
        seed in 0u64..1000,
        pad in 0usize..2,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = ConvShape::new(1, 2, 5, 5, 3, 3, 3, 1, pad);
        let input = Matrix::from_fn(1, 2 * 25, |_, _| rng.gen_range(-2.0f32..2.0));
        let filters = Matrix::from_fn(3, 2 * 9, |_, _| rng.gen_range(-2.0f32..2.0));

        // Direct convolution.
        let out_y = shape.out_y();
        let out_x = shape.out_x();
        let mut golden = Matrix::zeros(out_y * out_x, 3);
        for oy in 0..out_y {
            for ox in 0..out_x {
                for kf in 0..3 {
                    let mut acc = 0.0;
                    for c in 0..2 {
                        for r in 0..3 {
                            for s in 0..3 {
                                let iy = (oy + r) as isize - pad as isize;
                                let ix = (ox + s) as isize - pad as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < 5 && (ix as usize) < 5 {
                                    let in_idx = (c * 5 + iy as usize) * 5 + ix as usize;
                                    let f_idx = (c * 3 + r) * 3 + s;
                                    acc += input[(0, in_idx)] * filters[(kf, f_idx)];
                                }
                            }
                        }
                    }
                    golden[(oy * out_x + ox, kf)] = acc;
                }
            }
        }

        let (a, b) = lower_conv_to_gemm(&input, &filters, &shape).unwrap();
        let mut cmat = Matrix::zeros(a.rows(), b.cols());
        gemm_f32(&a, &b, &mut cmat);
        prop_assert!(max_abs_diff(&golden, &cmat) < 1e-4);
        // And the standalone im2col agrees with the paired lowering.
        let a2 = im2col(&input, &shape).unwrap();
        prop_assert_eq!(a, a2);
    }
}
