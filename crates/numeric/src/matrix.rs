use crate::NumericError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
///
/// `Matrix<f32>` is used for accumulators and reference results;
/// `Matrix<Bf16>` for operand data fed to the functional systolic array.
/// The container deliberately stays simple — the interesting numerics live
/// in the GEMM kernels and the systolic array model.
///
/// ```
/// use rasa_numeric::Matrix;
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix filled with `T::default()` (zero for numeric types).
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, NumericError> {
        if data.len() != rows * cols {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix construction",
                detail: format!(
                    "{} elements provided for a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the matrix has no elements.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element accessor returning `None` when out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets an element.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::OutOfBounds`] when the indices exceed the
    /// matrix dimensions.
    pub fn set(&mut self, row: usize, col: usize, value: T) -> Result<(), NumericError> {
        if row < self.rows && col < self.cols {
            self.data[row * self.cols + col] = value;
            Ok(())
        } else {
            Err(NumericError::OutOfBounds {
                detail: format!("({row},{col}) in a {}x{} matrix", self.rows, self.cols),
            })
        }
    }

    /// Borrow of the underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// A single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Extracts the sub-tile starting at `(row0, col0)` with shape
    /// `(tile_rows, tile_cols)`, zero-padding any part that falls outside
    /// the matrix (the behaviour of a tile load past the edge of an operand,
    /// which kernel generators rely on for edge tiles).
    #[must_use]
    pub fn tile(&self, row0: usize, col0: usize, tile_rows: usize, tile_cols: usize) -> Matrix<T> {
        Matrix::from_fn(tile_rows, tile_cols, |i, j| {
            self.get(row0 + i, col0 + j).unwrap_or_default()
        })
    }

    /// Writes `tile` into this matrix at `(row0, col0)`, ignoring any part of
    /// the tile that falls outside the matrix (the inverse of [`Matrix::tile`]).
    pub fn set_tile(&mut self, row0: usize, col0: usize, tile: &Matrix<T>) {
        for i in 0..tile.rows {
            for j in 0..tile.cols {
                if row0 + i < self.rows && col0 + j < self.cols {
                    self.data[(row0 + i) * self.cols + (col0 + j)] = tile.data[i * tile.cols + j];
                }
            }
        }
    }

    /// Transposes the matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.data[j * self.cols + i])
    }

    /// Applies `f` element-wise producing a new matrix (e.g. `f32 → Bf16`).
    #[must_use]
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(idx, &v)| (idx / cols, idx % cols, v))
    }
}

impl<T: Copy + Default> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl<T: Copy + Default> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl<T: Copy + Default + fmt::Display> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        let max_cols = 8.min(self.cols);
        for i in 0..max_rows {
            for j in 0..max_cols {
                write!(f, "{:>10} ", self.data[i * self.cols + j])?;
            }
            if max_cols < self.cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if max_rows < self.rows {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

/// Fills a matrix with uniformly distributed values in `[-1, 1)` using the
/// supplied RNG — the standard way the tests and examples create operand
/// data.
#[must_use]
pub fn random_matrix(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bf16;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert_eq!(m[(2, 3)], 23.0);
        assert_eq!(m.get(2, 3), Some(23.0));
        assert_eq!(m.get(3, 0), None);
        assert_eq!(m.get(0, 4), None);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0]).is_err());
    }

    #[test]
    fn set_and_out_of_bounds() {
        let mut m = Matrix::<f32>::zeros(2, 2);
        m.set(1, 1, 5.0).unwrap();
        assert_eq!(m[(1, 1)], 5.0);
        assert!(m.set(2, 0, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let m = Matrix::<f32>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn row_slice() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as i32);
        assert_eq!(m.row(1), &[3, 4, 5]);
    }

    #[test]
    fn tile_extraction_with_padding() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j + 1) as f32);
        // A 2x2 tile fully inside.
        let t = m.tile(1, 1, 2, 2);
        assert_eq!(t[(0, 0)], 5.0);
        assert_eq!(t[(1, 1)], 9.0);
        // A tile hanging off the edge is zero padded.
        let t = m.tile(2, 2, 2, 2);
        assert_eq!(t[(0, 0)], 9.0);
        assert_eq!(t[(0, 1)], 0.0);
        assert_eq!(t[(1, 0)], 0.0);
        assert_eq!(t[(1, 1)], 0.0);
    }

    #[test]
    fn set_tile_round_trips_and_clips() {
        let mut m = Matrix::<f32>::zeros(4, 4);
        let t = Matrix::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f32);
        m.set_tile(1, 1, &t);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 2)], 4.0);
        // Writing past the edge silently clips.
        m.set_tile(3, 3, &t);
        assert_eq!(m[(3, 3)], 1.0);
    }

    #[test]
    fn transpose() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn map_to_bf16() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f32 + 0.5);
        let b = m.map(Bf16::from_f32);
        assert_eq!(b[(0, 0)].to_f32(), 0.5);
        assert_eq!(b[(1, 1)].to_f32(), 2.5);
    }

    #[test]
    fn iteration_order_is_row_major() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as i32);
        let items: Vec<_> = m.iter().collect();
        assert_eq!(items, vec![(0, 0, 0), (0, 1, 1), (1, 0, 2), (1, 1, 3)]);
    }

    #[test]
    fn random_matrix_is_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = random_matrix(8, 8, &mut rng);
        assert!(m.iter().all(|(_, _, v)| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn display_truncates_large_matrices() {
        let m = Matrix::<f32>::zeros(20, 20);
        let s = m.to_string();
        assert!(s.contains("[20x20]"));
        assert!(s.contains('…'));
    }
}
