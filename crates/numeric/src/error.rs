use std::error::Error;
use std::fmt;

/// Errors produced by the numeric substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NumericError {
    /// Two matrices had incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Description of the operation that failed.
        operation: &'static str,
        /// Human-readable description of the shapes involved.
        detail: String,
    },
    /// A convolution shape was internally inconsistent (e.g. the filter is
    /// larger than the padded input).
    InvalidConvShape {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A tiling configuration had a zero tile dimension.
    InvalidTiling {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An index was outside the bounds of a matrix or grid.
    OutOfBounds {
        /// Human-readable description of the access.
        detail: String,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::DimensionMismatch { operation, detail } => {
                write!(f, "dimension mismatch in {operation}: {detail}")
            }
            NumericError::InvalidConvShape { reason } => {
                write!(f, "invalid convolution shape: {reason}")
            }
            NumericError::InvalidTiling { reason } => write!(f, "invalid tiling: {reason}"),
            NumericError::OutOfBounds { detail } => write!(f, "out of bounds: {detail}"),
        }
    }
}

impl Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NumericError::DimensionMismatch {
            operation: "gemm",
            detail: "a is 4x3 but b is 5x2".to_string(),
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("4x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<NumericError>();
    }
}
