use crate::{GemmShape, Matrix, NumericError};
use std::fmt;

/// The shape of a 2-D convolution layer in the paper's notation (Table I):
/// `N` batch, `C` input channels, `X`/`Y` input spatial dimensions, `K`
/// output channels (filters), `R`/`S` filter spatial dimensions.
///
/// ```
/// use rasa_numeric::ConvShape;
/// // ResNet50-2 from Table I: N=32 K=C=64 X=Y=56 R=S=3 (stride 1, pad 1).
/// let conv = ConvShape::new(32, 64, 56, 56, 64, 3, 3, 1, 1);
/// let gemm = conv.to_gemm();
/// assert_eq!(gemm.m, 32 * 56 * 56);
/// assert_eq!(gemm.k, 64 * 3 * 3);
/// assert_eq!(gemm.n, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub y: usize,
    /// Input width.
    pub x: usize,
    /// Number of filters (output channels).
    pub k: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    /// Spatial stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvShape {
    /// Creates a convolution shape.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub const fn new(
        n: usize,
        c: usize,
        y: usize,
        x: usize,
        k: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        ConvShape {
            n,
            c,
            y,
            x,
            k,
            r,
            s,
            stride,
            pad,
        }
    }

    /// Output height after padding and striding.
    #[must_use]
    pub const fn out_y(&self) -> usize {
        (self.y + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width after padding and striding.
    #[must_use]
    pub const fn out_x(&self) -> usize {
        (self.x + 2 * self.pad - self.s) / self.stride + 1
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidConvShape`] if any dimension is zero,
    /// the stride is zero, or the filter does not fit in the padded input.
    pub fn validate(&self) -> Result<(), NumericError> {
        if self.n == 0
            || self.c == 0
            || self.y == 0
            || self.x == 0
            || self.k == 0
            || self.r == 0
            || self.s == 0
        {
            return Err(NumericError::InvalidConvShape {
                reason: "all dimensions must be non-zero".to_string(),
            });
        }
        if self.stride == 0 {
            return Err(NumericError::InvalidConvShape {
                reason: "stride must be non-zero".to_string(),
            });
        }
        if self.y + 2 * self.pad < self.r || self.x + 2 * self.pad < self.s {
            return Err(NumericError::InvalidConvShape {
                reason: format!(
                    "filter {}x{} larger than padded input {}x{}",
                    self.r,
                    self.s,
                    self.y + 2 * self.pad,
                    self.x + 2 * self.pad
                ),
            });
        }
        Ok(())
    }

    /// The GEMM this convolution lowers to via im2col:
    /// `M = N·outY·outX`, `K = C·R·S`, `N = K(filters)` (§II-A of the paper).
    #[must_use]
    pub const fn to_gemm(&self) -> GemmShape {
        GemmShape {
            m: self.n * self.out_y() * self.out_x(),
            k: self.c * self.r * self.s,
            n: self.k,
        }
    }

    /// Number of multiply-accumulates in the direct convolution (equals the
    /// MACs of the lowered GEMM).
    #[must_use]
    pub const fn macs(&self) -> usize {
        self.to_gemm().macs()
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} C={} Y={} X={} K={} R={} S={} stride={} pad={}",
            self.n, self.c, self.y, self.x, self.k, self.r, self.s, self.stride, self.pad
        )
    }
}

/// Lowers convolution input activations (NCHW layout, one matrix row per
/// batch image, flattened C·Y·X per row) into the im2col operand matrix of
/// shape `(N·outY·outX) × (C·R·S)`.
///
/// The weight matrix for the lowered GEMM is the filter tensor reshaped to
/// `(C·R·S) × K`; multiplying the two reproduces the convolution exactly.
///
/// # Errors
///
/// Returns [`NumericError::InvalidConvShape`] for inconsistent shapes and
/// [`NumericError::DimensionMismatch`] when `input` does not have `N` rows
/// of `C·Y·X` columns.
pub fn im2col(input: &Matrix<f32>, shape: &ConvShape) -> Result<Matrix<f32>, NumericError> {
    shape.validate()?;
    if input.rows() != shape.n || input.cols() != shape.c * shape.y * shape.x {
        return Err(NumericError::DimensionMismatch {
            operation: "im2col",
            detail: format!(
                "expected {}x{} activations, got {}x{}",
                shape.n,
                shape.c * shape.y * shape.x,
                input.rows(),
                input.cols()
            ),
        });
    }
    let out_y = shape.out_y();
    let out_x = shape.out_x();
    let m = shape.n * out_y * out_x;
    let k = shape.c * shape.r * shape.s;
    let mut out = Matrix::zeros(m, k);
    for n in 0..shape.n {
        for oy in 0..out_y {
            for ox in 0..out_x {
                let row = (n * out_y + oy) * out_x + ox;
                for c in 0..shape.c {
                    for r in 0..shape.r {
                        for s in 0..shape.s {
                            let iy = (oy * shape.stride + r) as isize - shape.pad as isize;
                            let ix = (ox * shape.stride + s) as isize - shape.pad as isize;
                            let col = (c * shape.r + r) * shape.s + s;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < shape.y
                                && (ix as usize) < shape.x
                            {
                                let idx = (c * shape.y + iy as usize) * shape.x + ix as usize;
                                out[(row, col)] = input[(n, idx)];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Lowers a full convolution (activations + filters) to its GEMM operands:
/// returns `(a, b)` such that `a × b` is the convolution output with one row
/// per output pixel and one column per filter.
///
/// `filters` must have `K` rows of `C·R·S` columns (one filter per row).
///
/// # Errors
///
/// Propagates the validation errors of [`im2col`] and checks the filter
/// matrix shape.
pub fn lower_conv_to_gemm(
    input: &Matrix<f32>,
    filters: &Matrix<f32>,
    shape: &ConvShape,
) -> Result<(Matrix<f32>, Matrix<f32>), NumericError> {
    let a = im2col(input, shape)?;
    if filters.rows() != shape.k || filters.cols() != shape.c * shape.r * shape.s {
        return Err(NumericError::DimensionMismatch {
            operation: "lower_conv_to_gemm",
            detail: format!(
                "expected {}x{} filters, got {}x{}",
                shape.k,
                shape.c * shape.r * shape.s,
                filters.rows(),
                filters.cols()
            ),
        });
    }
    Ok((a, filters.transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_f32;

    /// Direct (naive) convolution used as the golden model for im2col.
    fn direct_conv(input: &Matrix<f32>, filters: &Matrix<f32>, shape: &ConvShape) -> Matrix<f32> {
        let out_y = shape.out_y();
        let out_x = shape.out_x();
        let mut out = Matrix::zeros(shape.n * out_y * out_x, shape.k);
        for n in 0..shape.n {
            for oy in 0..out_y {
                for ox in 0..out_x {
                    let row = (n * out_y + oy) * out_x + ox;
                    for kf in 0..shape.k {
                        let mut acc = 0.0;
                        for c in 0..shape.c {
                            for r in 0..shape.r {
                                for s in 0..shape.s {
                                    let iy = (oy * shape.stride + r) as isize - shape.pad as isize;
                                    let ix = (ox * shape.stride + s) as isize - shape.pad as isize;
                                    if iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < shape.y
                                        && (ix as usize) < shape.x
                                    {
                                        let in_idx =
                                            (c * shape.y + iy as usize) * shape.x + ix as usize;
                                        let f_idx = (c * shape.r + r) * shape.s + s;
                                        acc += input[(n, in_idx)] * filters[(kf, f_idx)];
                                    }
                                }
                            }
                        }
                        out[(row, kf)] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn table1_resnet_shapes_lower_correctly() {
        // ResNet50-1: 1x1 conv, no padding assumed.
        let c1 = ConvShape::new(32, 64, 56, 56, 64, 1, 1, 1, 0);
        assert_eq!(c1.to_gemm(), GemmShape::new(32 * 56 * 56, 64, 64));
        // ResNet50-2: 3x3 conv with pad 1 keeps the spatial size.
        let c2 = ConvShape::new(32, 64, 56, 56, 64, 3, 3, 1, 1);
        assert_eq!(c2.out_y(), 56);
        assert_eq!(c2.to_gemm(), GemmShape::new(32 * 56 * 56, 64 * 9, 64));
        // ResNet50-3: 1x1 conv on 14x14 with 1024 input channels, 512 filters.
        let c3 = ConvShape::new(32, 1024, 14, 14, 512, 1, 1, 1, 0);
        assert_eq!(c3.to_gemm(), GemmShape::new(32 * 14 * 14, 1024, 512));
    }

    #[test]
    fn output_dims_with_stride_and_pad() {
        let c = ConvShape::new(1, 3, 8, 8, 4, 3, 3, 2, 1);
        assert_eq!(c.out_y(), 4);
        assert_eq!(c.out_x(), 4);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(ConvShape::new(0, 3, 8, 8, 4, 3, 3, 1, 1)
            .validate()
            .is_err());
        assert!(ConvShape::new(1, 3, 8, 8, 4, 3, 3, 0, 1)
            .validate()
            .is_err());
        assert!(ConvShape::new(1, 3, 2, 2, 4, 5, 5, 1, 0)
            .validate()
            .is_err());
        assert!(ConvShape::new(1, 3, 8, 8, 4, 3, 3, 1, 1).validate().is_ok());
    }

    #[test]
    fn im2col_gemm_equals_direct_convolution() {
        let shape = ConvShape::new(2, 3, 6, 5, 4, 3, 3, 1, 1);
        let input = Matrix::from_fn(shape.n, shape.c * shape.y * shape.x, |i, j| {
            ((i * 37 + j * 11) % 13) as f32 - 6.0
        });
        let filters = Matrix::from_fn(shape.k, shape.c * shape.r * shape.s, |i, j| {
            ((i * 17 + j * 7) % 9) as f32 - 4.0
        });
        let golden = direct_conv(&input, &filters, &shape);

        let (a, b) = lower_conv_to_gemm(&input, &filters, &shape).unwrap();
        let gemm = shape.to_gemm();
        assert_eq!(a.rows(), gemm.m);
        assert_eq!(a.cols(), gemm.k);
        assert_eq!(b.rows(), gemm.k);
        assert_eq!(b.cols(), gemm.n);
        let mut c = Matrix::zeros(gemm.m, gemm.n);
        gemm_f32(&a, &b, &mut c);
        assert_eq!(crate::max_abs_diff(&golden, &c), 0.0);
    }

    #[test]
    fn im2col_strided_matches_direct() {
        let shape = ConvShape::new(1, 2, 7, 7, 3, 3, 3, 2, 0);
        let input = Matrix::from_fn(1, 2 * 7 * 7, |_, j| (j % 5) as f32);
        let filters = Matrix::from_fn(3, 2 * 9, |i, j| ((i + j) % 3) as f32);
        let golden = direct_conv(&input, &filters, &shape);
        let (a, b) = lower_conv_to_gemm(&input, &filters, &shape).unwrap();
        let mut c = Matrix::zeros(a.rows(), b.cols());
        gemm_f32(&a, &b, &mut c);
        assert_eq!(crate::max_abs_diff(&golden, &c), 0.0);
    }

    #[test]
    fn im2col_rejects_wrong_input_shape() {
        let shape = ConvShape::new(2, 3, 4, 4, 2, 3, 3, 1, 1);
        let input = Matrix::<f32>::zeros(2, 10);
        assert!(im2col(&input, &shape).is_err());
    }

    #[test]
    fn lower_conv_rejects_wrong_filter_shape() {
        let shape = ConvShape::new(1, 1, 4, 4, 2, 3, 3, 1, 1);
        let input = Matrix::<f32>::zeros(1, 16);
        let filters = Matrix::<f32>::zeros(2, 8);
        assert!(lower_conv_to_gemm(&input, &filters, &shape).is_err());
    }

    #[test]
    fn display_contains_all_dims() {
        let c = ConvShape::new(32, 64, 56, 56, 64, 3, 3, 1, 1);
        let s = c.to_string();
        assert!(s.contains("N=32"));
        assert!(s.contains("R=3"));
    }
}
