//! # rasa-numeric — numeric substrate for the RASA simulation stack
//!
//! The RASA paper evaluates a mixed-precision matrix engine: BF16 operands
//! with FP32 accumulation. This crate provides everything the functional
//! model needs to compute and check real numbers:
//!
//! * a software [`Bf16`] type with round-to-nearest-even conversion from
//!   `f32`, matching the numerics a BF16 multiplier array would produce;
//! * a row-major [`Matrix`] container with tile extraction/insertion;
//! * reference GEMM kernels ([`gemm_f32`], [`gemm_bf16_fp32`]) used as the
//!   golden model for the functional systolic array;
//! * convolution-to-GEMM lowering ([`im2col`], [`ConvShape`]) so that the
//!   ResNet50 convolution layers of Table I can be expressed as GEMMs, the
//!   same lowering the paper relies on (§II-A);
//! * tiling helpers ([`TileGrid`]) that partition a GEMM into the
//!   TM×TK×TN register tiles executed by `rasa_mm` instructions.
//!
//! ## Example
//!
//! ```
//! use rasa_numeric::{Matrix, gemm_f32, GemmShape};
//!
//! let shape = GemmShape::new(4, 3, 2);
//! let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f32);
//! let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
//! let mut c = Matrix::zeros(4, 2);
//! gemm_f32(&a, &b, &mut c);
//! assert_eq!(c.rows(), shape.m);
//! assert_eq!(c.cols(), shape.n);
//! ```

#![deny(missing_docs)]

mod bf16;
mod error;
mod gemm;
mod im2col;
mod matrix;
mod tiling;

pub use bf16::Bf16;
pub use error::NumericError;
pub use gemm::{gemm_bf16_fp32, gemm_f32, max_abs_diff, GemmShape};
pub use im2col::{im2col, lower_conv_to_gemm, ConvShape};
pub use matrix::{random_matrix, Matrix};
pub use tiling::{RegisterBlock, TileCoord, TileGrid, TilingConfig};
