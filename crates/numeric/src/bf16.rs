use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A software brain-float-16 value (1 sign, 8 exponent, 7 mantissa bits).
///
/// BF16 is the input data type of the RASA processing elements; partial sums
/// accumulate in FP32. The conversion from `f32` uses round-to-nearest-even,
/// matching common hardware implementations (and the behaviour assumed by
/// the paper's mixed-precision MAC units).
///
/// Arithmetic on `Bf16` is defined as "convert to f32, operate, convert
/// back" — the semantics of a BF16 multiplier feeding an FP32 adder are
/// obtained by using [`Bf16::to_f32`] explicitly before accumulating, which
/// is what [`crate::gemm_bf16_fp32`] and the functional systolic array do.
///
/// ```
/// use rasa_numeric::Bf16;
/// let x = Bf16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// // 1/3 is not representable exactly; conversion rounds.
/// let third = Bf16::from_f32(1.0 / 3.0);
/// assert!((third.to_f32() - 1.0 / 3.0).abs() < 1.0 / 256.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);

    /// Creates a BF16 from its raw bit pattern.
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Preserve NaN, set a quiet bit so the truncated mantissa is
            // never all zeros (which would turn NaN into infinity).
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7fff + lsb);
        // Overflow of the mantissa correctly carries into the exponent and,
        // at the extreme, rounds large finite values to infinity.
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts to `f32` (exact: every BF16 value is representable).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Whether the value is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// Whether the value is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.to_f32().is_finite()
    }

    /// The quantisation step around 1.0 (2^-7), useful for test tolerances.
    #[must_use]
    pub const fn epsilon() -> f32 {
        1.0 / 128.0
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Self {
        Bf16::from_f32(value)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> Self {
        value.to_f32()
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl Add for Bf16 {
    type Output = Bf16;

    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for Bf16 {
    type Output = Bf16;

    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for Bf16 {
    type Output = Bf16;

    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Neg for Bf16 {
    type Output = Bf16;

    fn neg(self) -> Bf16 {
        Bf16::from_bits(self.0 ^ 0x8000)
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [
            0.0f32, 1.0, -1.0, 0.5, 2.0, -3.5, 256.0, 65536.0, -0.0078125,
        ] {
            let b = Bf16::from_f32(v);
            assert_eq!(b.to_f32(), v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-8 lies exactly between 1.0 and the next BF16 (1.0 + 2^-7);
        // nearest-even rounds down to 1.0.
        let half_ulp = 1.0 + f32::powi(2.0, -8);
        assert_eq!(Bf16::from_f32(half_ulp).to_f32(), 1.0);
        // 1.0 + 3*2^-8 lies between 1.0+2^-7 and 1.0+2^-6... nearest is
        // 1.0 + 2^-7 + 2^-7? Check monotonically: it must round to one of
        // the two adjacent representable values.
        let x = 1.0 + 3.0 * f32::powi(2.0, -8);
        let r = Bf16::from_f32(x).to_f32();
        assert!((r - x).abs() <= f32::powi(2.0, -8));
    }

    #[test]
    fn rounding_error_is_bounded() {
        // Relative error of BF16 conversion is at most 2^-8 for normal values.
        let mut v = 1.0e-3f32;
        while v < 1.0e3 {
            let r = Bf16::from_f32(v).to_f32();
            assert!(
                ((r - v) / v).abs() <= f32::powi(2.0, -8) * 1.001,
                "v={v} r={r}"
            );
            v *= 1.37;
        }
    }

    #[test]
    fn nan_and_infinity_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
        assert!(!Bf16::from_f32(f32::NAN).is_finite());
        assert!(Bf16::ONE.is_finite());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // Just above the largest finite BF16 (~3.39e38).
        let big = 3.4e38f32;
        let b = Bf16::from_f32(big);
        assert!(b.to_f32().is_infinite() || b.to_f32() >= 3.3e38);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(2.0);
        assert_eq!((a + b).to_f32(), 3.5);
        assert_eq!((b - a).to_f32(), 0.5);
        assert_eq!((a * b).to_f32(), 3.0);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn negation_of_zero() {
        assert_eq!((-Bf16::ZERO).to_f32(), -0.0);
        assert_eq!((-Bf16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn ordering() {
        assert!(Bf16::from_f32(1.0) < Bf16::from_f32(2.0));
        assert!(Bf16::from_f32(-1.0) < Bf16::ZERO);
    }

    #[test]
    fn display_shows_decimal_value() {
        assert_eq!(Bf16::from_f32(2.5).to_string(), "2.5");
    }

    #[test]
    fn conversion_traits() {
        let b: Bf16 = 4.0f32.into();
        let f: f32 = b.into();
        assert_eq!(f, 4.0);
    }
}
