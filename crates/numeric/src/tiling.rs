use crate::{GemmShape, NumericError};
use std::fmt;

/// The register-tile dimensions used to partition a GEMM: TM×TK for A tiles,
/// TK×TN for B tiles and TM×TN for C tiles.
///
/// For the AMX-like ISA these are 16/32/16; the values are carried here (and
/// not hard-coded) so that design-space exploration over tile-register
/// geometries remains possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilingConfig {
    /// Tile extent in the M dimension.
    pub tm: usize,
    /// Tile extent in the K (reduction) dimension.
    pub tk: usize,
    /// Tile extent in the N dimension.
    pub tn: usize,
}

impl TilingConfig {
    /// Creates a tiling configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidTiling`] if any dimension is zero.
    pub fn new(tm: usize, tk: usize, tn: usize) -> Result<Self, NumericError> {
        if tm == 0 || tk == 0 || tn == 0 {
            return Err(NumericError::InvalidTiling {
                reason: format!("tile dimensions must be non-zero, got {tm}/{tk}/{tn}"),
            });
        }
        Ok(TilingConfig { tm, tk, tn })
    }

    /// The AMX-like tiling of the paper: TM=16, TK=32, TN=16.
    #[must_use]
    pub const fn amx() -> Self {
        TilingConfig {
            tm: 16,
            tk: 32,
            tn: 16,
        }
    }
}

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig::amx()
    }
}

impl fmt::Display for TilingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TM={} TK={} TN={}", self.tm, self.tk, self.tn)
    }
}

/// The register-block shape of a micro-kernel: how many A tiles (`m`) and B
/// tiles (`n`) are held live at once, accumulating into an `m × n` grid of C
/// tiles.
///
/// The paper's Algorithm 1 uses a 2×2 block (four accumulators, two A tiles,
/// two B tiles — eight tile registers). Other shapes trade register pressure
/// against operand-load traffic: a block needs `m·n + m + n` tile registers
/// and issues `m + n` operand loads per K step for `m·n` matmuls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegisterBlock {
    /// A-tile rows of the block (accumulator grid height).
    pub m: usize,
    /// B-tile columns of the block (accumulator grid width).
    pub n: usize,
}

impl RegisterBlock {
    /// Creates a register-block shape.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidTiling`] if either dimension is zero.
    pub fn new(m: usize, n: usize) -> Result<Self, NumericError> {
        if m == 0 || n == 0 {
            return Err(NumericError::InvalidTiling {
                reason: format!("register block dimensions must be non-zero, got {m}x{n}"),
            });
        }
        Ok(RegisterBlock { m, n })
    }

    /// The paper's Algorithm-1 block: 2 A tiles × 2 B tiles.
    #[must_use]
    pub const fn algorithm_one() -> Self {
        RegisterBlock { m: 2, n: 2 }
    }

    /// Tile registers the block occupies: `m·n` accumulators plus `n` weight
    /// tiles plus `m` activation tiles.
    #[must_use]
    pub const fn tile_regs_needed(&self) -> usize {
        self.m * self.n + self.m + self.n
    }

    /// Number of blocks along M for a grid of `m_tiles` register tiles.
    #[must_use]
    pub const fn m_blocks(&self, m_tiles: usize) -> usize {
        m_tiles.div_ceil(self.m)
    }

    /// Number of blocks along N for a grid of `n_tiles` register tiles.
    #[must_use]
    pub const fn n_blocks(&self, n_tiles: usize) -> usize {
        n_tiles.div_ceil(self.n)
    }
}

impl Default for RegisterBlock {
    fn default() -> Self {
        RegisterBlock::algorithm_one()
    }
}

impl fmt::Display for RegisterBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.m, self.n)
    }
}

/// The coordinates of one register tile inside the tiled GEMM iteration
/// space, together with its actual (possibly clipped) extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileCoord {
    /// Tile index along M.
    pub mi: usize,
    /// Tile index along K.
    pub ki: usize,
    /// Tile index along N.
    pub ni: usize,
    /// Rows covered by this tile (≤ TM; smaller at the bottom edge).
    pub rows: usize,
    /// Reduction extent covered by this tile (≤ TK; smaller at the right
    /// edge of A).
    pub depth: usize,
    /// Columns covered by this tile (≤ TN; smaller at the right edge of C).
    pub cols: usize,
}

impl TileCoord {
    /// Starting row of the tile in the full GEMM.
    #[must_use]
    pub const fn row0(&self, tiling: &TilingConfig) -> usize {
        self.mi * tiling.tm
    }

    /// Starting reduction index of the tile in the full GEMM.
    #[must_use]
    pub const fn k0(&self, tiling: &TilingConfig) -> usize {
        self.ki * tiling.tk
    }

    /// Starting column of the tile in the full GEMM.
    #[must_use]
    pub const fn col0(&self, tiling: &TilingConfig) -> usize {
        self.ni * tiling.tn
    }

    /// Whether the tile is full-sized (not clipped by a matrix edge).
    #[must_use]
    pub const fn is_full(&self, tiling: &TilingConfig) -> bool {
        self.rows == tiling.tm && self.depth == tiling.tk && self.cols == tiling.tn
    }
}

/// The grid of register tiles covering a GEMM.
///
/// The grid enumerates tile coordinates; the *order* of traversal (loop
/// nest) is chosen by the kernel generator in `rasa-trace`, because loop
/// order determines tile-register reuse and therefore WLBP effectiveness.
///
/// ```
/// use rasa_numeric::{GemmShape, TileGrid, TilingConfig};
/// let grid = TileGrid::new(GemmShape::new(100, 70, 40), TilingConfig::amx())?;
/// assert_eq!(grid.m_tiles(), 7);
/// assert_eq!(grid.k_tiles(), 3);
/// assert_eq!(grid.n_tiles(), 3);
/// assert_eq!(grid.total_tiles(), 63);
/// # Ok::<(), rasa_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    shape: GemmShape,
    tiling: TilingConfig,
    m_tiles: usize,
    k_tiles: usize,
    n_tiles: usize,
}

impl TileGrid {
    /// Creates a tile grid for `shape` partitioned by `tiling`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidTiling`] if the GEMM shape is empty.
    pub fn new(shape: GemmShape, tiling: TilingConfig) -> Result<Self, NumericError> {
        if shape.is_empty() {
            return Err(NumericError::InvalidTiling {
                reason: format!("cannot tile an empty GEMM ({shape})"),
            });
        }
        let (m_tiles, k_tiles, n_tiles) = shape.tile_counts(tiling.tm, tiling.tk, tiling.tn);
        Ok(TileGrid {
            shape,
            tiling,
            m_tiles,
            k_tiles,
            n_tiles,
        })
    }

    /// The GEMM shape being tiled.
    #[must_use]
    pub const fn shape(&self) -> &GemmShape {
        &self.shape
    }

    /// The tiling configuration.
    #[must_use]
    pub const fn tiling(&self) -> &TilingConfig {
        &self.tiling
    }

    /// Number of tiles along M.
    #[must_use]
    pub const fn m_tiles(&self) -> usize {
        self.m_tiles
    }

    /// Number of tiles along K.
    #[must_use]
    pub const fn k_tiles(&self) -> usize {
        self.k_tiles
    }

    /// Number of tiles along N.
    #[must_use]
    pub const fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Total number of (mi, ki, ni) tiles — one `rasa_mm` each.
    #[must_use]
    pub const fn total_tiles(&self) -> usize {
        self.m_tiles * self.k_tiles * self.n_tiles
    }

    /// The tile at the given indices, with clipped extents at the edges.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::OutOfBounds`] when an index exceeds the grid.
    pub fn tile(&self, mi: usize, ki: usize, ni: usize) -> Result<TileCoord, NumericError> {
        if mi >= self.m_tiles || ki >= self.k_tiles || ni >= self.n_tiles {
            return Err(NumericError::OutOfBounds {
                detail: format!(
                    "tile ({mi},{ki},{ni}) in a {}x{}x{} grid",
                    self.m_tiles, self.k_tiles, self.n_tiles
                ),
            });
        }
        let rows = (self.shape.m - mi * self.tiling.tm).min(self.tiling.tm);
        let depth = (self.shape.k - ki * self.tiling.tk).min(self.tiling.tk);
        let cols = (self.shape.n - ni * self.tiling.tn).min(self.tiling.tn);
        Ok(TileCoord {
            mi,
            ki,
            ni,
            rows,
            depth,
            cols,
        })
    }

    /// Iterates over all tiles in `(ni, mi, ki)` nesting order — the
    /// "weights outermost, reduction innermost" order that keeps the B tile
    /// resident across the K loop of a register block.
    pub fn iter(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let (mt, kt, nt) = (self.m_tiles, self.k_tiles, self.n_tiles);
        (0..nt).flat_map(move |ni| {
            (0..mt).flat_map(move |mi| {
                (0..kt).map(move |ki| {
                    self.tile(mi, ki, ni)
                        .expect("indices produced by the grid are in range")
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_block_defaults_and_footprint() {
        let b = RegisterBlock::default();
        assert_eq!(b, RegisterBlock::algorithm_one());
        assert_eq!(b.tile_regs_needed(), 8);
        assert_eq!(b.to_string(), "2x2");
        assert_eq!(b.m_blocks(5), 3);
        assert_eq!(b.n_blocks(4), 2);
        let tall = RegisterBlock::new(3, 1).unwrap();
        assert_eq!(tall.tile_regs_needed(), 7);
        assert!(RegisterBlock::new(0, 2).is_err());
        assert!(RegisterBlock::new(2, 0).is_err());
    }

    #[test]
    fn amx_tiling_defaults() {
        let t = TilingConfig::amx();
        assert_eq!((t.tm, t.tk, t.tn), (16, 32, 16));
        assert_eq!(TilingConfig::default(), t);
        assert_eq!(t.to_string(), "TM=16 TK=32 TN=16");
    }

    #[test]
    fn zero_tiling_rejected() {
        assert!(TilingConfig::new(0, 32, 16).is_err());
        assert!(TilingConfig::new(16, 0, 16).is_err());
        assert!(TilingConfig::new(16, 32, 0).is_err());
        assert!(TilingConfig::new(1, 1, 1).is_ok());
    }

    #[test]
    fn grid_counts_round_up() {
        let grid = TileGrid::new(GemmShape::new(100, 70, 40), TilingConfig::amx()).unwrap();
        assert_eq!(grid.m_tiles(), 7);
        assert_eq!(grid.k_tiles(), 3);
        assert_eq!(grid.n_tiles(), 3);
        assert_eq!(grid.total_tiles(), 63);
    }

    #[test]
    fn exact_division_has_no_partial_tiles() {
        let grid = TileGrid::new(GemmShape::new(64, 64, 64), TilingConfig::amx()).unwrap();
        assert!(grid.iter().all(|t| t.is_full(grid.tiling())));
        assert_eq!(grid.iter().count(), grid.total_tiles());
    }

    #[test]
    fn edge_tiles_are_clipped() {
        let grid = TileGrid::new(GemmShape::new(20, 40, 18), TilingConfig::amx()).unwrap();
        let corner = grid.tile(1, 1, 1).unwrap();
        assert_eq!(corner.rows, 4);
        assert_eq!(corner.depth, 8);
        assert_eq!(corner.cols, 2);
        assert!(!corner.is_full(grid.tiling()));
        let origin = grid.tile(0, 0, 0).unwrap();
        assert!(origin.is_full(grid.tiling()));
        assert_eq!(origin.row0(grid.tiling()), 0);
        assert_eq!(corner.row0(grid.tiling()), 16);
        assert_eq!(corner.k0(grid.tiling()), 32);
        assert_eq!(corner.col0(grid.tiling()), 16);
    }

    #[test]
    fn out_of_range_tile_rejected() {
        let grid = TileGrid::new(GemmShape::new(16, 32, 16), TilingConfig::amx()).unwrap();
        assert!(grid.tile(1, 0, 0).is_err());
        assert!(grid.tile(0, 1, 0).is_err());
        assert!(grid.tile(0, 0, 1).is_err());
    }

    #[test]
    fn empty_gemm_rejected() {
        assert!(TileGrid::new(GemmShape::new(0, 32, 16), TilingConfig::amx()).is_err());
    }

    #[test]
    fn iteration_covers_every_tile_once() {
        let grid = TileGrid::new(GemmShape::new(50, 50, 50), TilingConfig::amx()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for t in grid.iter() {
            assert!(seen.insert((t.mi, t.ki, t.ni)), "tile visited twice");
        }
        assert_eq!(seen.len(), grid.total_tiles());
    }

    #[test]
    fn iteration_keeps_weights_outermost() {
        // In (ni, mi, ki) order the ni coordinate is non-decreasing.
        let grid = TileGrid::new(GemmShape::new(64, 64, 64), TilingConfig::amx()).unwrap();
        let coords: Vec<_> = grid.iter().collect();
        for pair in coords.windows(2) {
            assert!(pair[0].ni <= pair[1].ni);
        }
    }
}
