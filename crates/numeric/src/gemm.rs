use crate::{Bf16, Matrix, NumericError};
use std::fmt;

/// The dimensions of a GEMM: `C(M×N) += A(M×K) × B(K×N)`.
///
/// The same notation as the paper (§II-C): M indexes output rows, N output
/// columns and K the reduction dimension.
///
/// ```
/// use rasa_numeric::GemmShape;
/// let g = GemmShape::new(128, 256, 64);
/// assert_eq!(g.flops(), 2 * 128 * 256 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: usize,
    /// Reduction dimension (columns of A, rows of B).
    pub k: usize,
    /// Columns of B and C.
    pub n: usize,
}

impl GemmShape {
    /// Creates a GEMM shape.
    #[must_use]
    pub const fn new(m: usize, k: usize, n: usize) -> Self {
        GemmShape { m, k, n }
    }

    /// Number of floating-point operations (multiply + add counted
    /// separately, the usual 2·M·N·K convention).
    #[must_use]
    pub const fn flops(&self) -> usize {
        2 * self.m * self.n * self.k
    }

    /// Number of multiply-accumulate operations (M·N·K).
    #[must_use]
    pub const fn macs(&self) -> usize {
        self.m * self.n * self.k
    }

    /// Whether any dimension is zero.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.m == 0 || self.n == 0 || self.k == 0
    }

    /// The number of (TM, TK, TN) register tiles needed to cover this GEMM,
    /// rounding each dimension up.
    #[must_use]
    pub const fn tile_counts(&self, tm: usize, tk: usize, tn: usize) -> (usize, usize, usize) {
        (
            self.m.div_ceil(tm),
            self.k.div_ceil(tk),
            self.n.div_ceil(tn),
        )
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M={} K={} N={}", self.m, self.k, self.n)
    }
}

/// Reference single-precision GEMM: `c += a × b`.
///
/// # Panics
///
/// Panics if the matrix dimensions are inconsistent; use
/// [`try_gemm_f32`](gemm_f32) semantics by checking shapes beforehand when
/// the shapes come from untrusted input.
pub fn gemm_f32(a: &Matrix<f32>, b: &Matrix<f32>, c: &mut Matrix<f32>) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must match");
    assert_eq!(a.rows(), c.rows(), "output rows must match a");
    assert_eq!(b.cols(), c.cols(), "output cols must match b");
    for i in 0..a.rows() {
        for kk in 0..a.cols() {
            let aik = a[(i, kk)];
            if aik == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                c[(i, j)] += aik * b[(kk, j)];
            }
        }
    }
}

/// Mixed-precision reference GEMM matching the RASA PE datapath: BF16
/// operands are multiplied exactly (every product of two BF16 values is
/// representable in f32) and accumulated in FP32.
///
/// This is the golden model the functional systolic array is validated
/// against, for every PE variant.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if the operand shapes are
/// inconsistent.
pub fn gemm_bf16_fp32(
    a: &Matrix<Bf16>,
    b: &Matrix<Bf16>,
    c: &mut Matrix<f32>,
) -> Result<(), NumericError> {
    if a.cols() != b.rows() || a.rows() != c.rows() || b.cols() != c.cols() {
        return Err(NumericError::DimensionMismatch {
            operation: "gemm_bf16_fp32",
            detail: format!(
                "a is {}x{}, b is {}x{}, c is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols(),
                c.rows(),
                c.cols()
            ),
        });
    }
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = c[(i, j)];
            for kk in 0..a.cols() {
                acc += a[(i, kk)].to_f32() * b[(kk, j)].to_f32();
            }
            c[(i, j)] = acc;
        }
    }
    Ok(())
}

/// Maximum absolute element-wise difference between two matrices of the same
/// shape — the comparison metric used by the functional-correctness tests.
///
/// # Panics
///
/// Panics if the shapes differ.
#[must_use]
pub fn max_abs_diff(x: &Matrix<f32>, y: &Matrix<f32>) -> f32 {
    assert_eq!(x.rows(), y.rows(), "row count must match");
    assert_eq!(x.cols(), y.cols(), "column count must match");
    let mut max = 0.0f32;
    for ((_, _, a), (_, _, b)) in x.iter().zip(y.iter()) {
        max = max.max((a - b).abs());
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shape_helpers() {
        let g = GemmShape::new(100, 30, 50);
        assert_eq!(g.macs(), 150_000);
        assert_eq!(g.flops(), 300_000);
        assert!(!g.is_empty());
        assert!(GemmShape::new(0, 3, 4).is_empty());
        assert_eq!(g.tile_counts(16, 32, 16), (7, 1, 4));
        assert_eq!(g.to_string(), "M=100 K=30 N=50");
    }

    #[test]
    fn identity_multiplication() {
        let a = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
        let mut c = Matrix::zeros(3, 3);
        gemm_f32(&a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn known_small_product() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let mut c = Matrix::zeros(2, 2);
        gemm_f32(&a, &b, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulation_adds_to_existing_c() {
        let a = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
        let b = Matrix::from_vec(1, 1, vec![3.0]).unwrap();
        let mut c = Matrix::from_vec(1, 1, vec![10.0]).unwrap();
        gemm_f32(&a, &b, &mut c);
        assert_eq!(c[(0, 0)], 16.0);
    }

    #[test]
    fn mixed_precision_matches_f32_for_exact_values() {
        // Small integers are exactly representable in BF16, so the mixed
        // precision result must equal the full-precision result exactly.
        let mut rng = StdRng::seed_from_u64(42);
        let a32 = Matrix::from_fn(8, 12, |_, _| rng.gen_range(-8i32..8) as f32);
        let b32 = Matrix::from_fn(12, 6, |_, _| rng.gen_range(-8i32..8) as f32);
        let mut c_ref = Matrix::zeros(8, 6);
        gemm_f32(&a32, &b32, &mut c_ref);

        let a16 = a32.map(Bf16::from_f32);
        let b16 = b32.map(Bf16::from_f32);
        let mut c_mixed = Matrix::zeros(8, 6);
        gemm_bf16_fp32(&a16, &b16, &mut c_mixed).unwrap();
        assert_eq!(max_abs_diff(&c_ref, &c_mixed), 0.0);
    }

    #[test]
    fn mixed_precision_error_is_bounded_for_random_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let a32 = crate::matrix::random_matrix(16, 32, &mut rng);
        let b32 = crate::matrix::random_matrix(32, 16, &mut rng);
        let mut c_ref = Matrix::zeros(16, 16);
        gemm_f32(&a32, &b32, &mut c_ref);

        let a16 = a32.map(Bf16::from_f32);
        let b16 = b32.map(Bf16::from_f32);
        let mut c_mixed = Matrix::zeros(16, 16);
        gemm_bf16_fp32(&a16, &b16, &mut c_mixed).unwrap();
        // Each operand has relative error <= 2^-8; with K=32 terms of
        // magnitude <= 1 the absolute error stays well below 32 * 2^-7.
        assert!(max_abs_diff(&c_ref, &c_mixed) < 32.0 * Bf16::epsilon());
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::<Bf16>::zeros(2, 3);
        let b = Matrix::<Bf16>::zeros(4, 2);
        let mut c = Matrix::<f32>::zeros(2, 2);
        assert!(gemm_bf16_fp32(&a, &b, &mut c).is_err());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_f32_panics_on_mismatch() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(4, 2);
        let mut c = Matrix::<f32>::zeros(2, 2);
        gemm_f32(&a, &b, &mut c);
    }

    #[test]
    fn max_abs_diff_finds_largest_deviation() {
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let y = Matrix::from_vec(1, 3, vec![1.5, 2.0, 0.0]).unwrap();
        assert_eq!(max_abs_diff(&x, &y), 3.0);
    }
}
