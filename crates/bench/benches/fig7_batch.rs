//! Criterion bench: the Fig. 7 batch-size sweep at a reduced cap and batch
//! ceiling.

use criterion::{criterion_group, criterion_main, Criterion};
use rasa_sim::ExperimentSuite;

fn bench_fig7(c: &mut Criterion) {
    let suite = ExperimentSuite::new()
        .with_matmul_cap(Some(192))
        .with_fig7_max_batch(64);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("batch_sweep_to_64", |b| {
        b.iter(|| {
            let fig7 = suite.fig7_batch().expect("fig7 runs");
            assert!(!fig7.rows.is_empty());
            fig7
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
