//! Criterion bench: regenerating the Fig. 5 runtime comparison (9 layers ×
//! 8 designs) at a reduced per-run matmul cap.

use criterion::{criterion_group, criterion_main, Criterion};
use rasa_sim::ExperimentSuite;

fn bench_fig5(c: &mut Criterion) {
    let suite = ExperimentSuite::new().with_matmul_cap(Some(256));
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("runtime_9layers_x_8designs_cap256", |b| {
        b.iter(|| {
            let fig5 = suite.fig5_runtime().expect("fig5 runs");
            assert_eq!(fig5.rows.len(), 9);
            fig5
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
