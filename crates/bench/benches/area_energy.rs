//! Criterion bench: the area/energy model evaluation across all design
//! points (pure analytical model).

use criterion::{criterion_group, criterion_main, Criterion};
use rasa_power::{AreaModel, EnergyModel, EngineActivitySummary};
use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};

fn bench_area_energy(c: &mut Criterion) {
    let area = AreaModel::new();
    let energy = EnergyModel::new();
    let activity = EngineActivitySummary {
        macs: 4096 * 8192,
        weight_loads: 2048,
        busy_engine_cycles: 4096 * 24,
        tile_io_bytes: 4096 * 4096,
    };
    let configs: Vec<SystolicConfig> = vec![
        SystolicConfig::paper_baseline(),
        SystolicConfig::paper(PeVariant::Db, ControlScheme::Wls).unwrap(),
        SystolicConfig::paper(PeVariant::Dm, ControlScheme::Wlbp).unwrap(),
        SystolicConfig::paper(PeVariant::Dmdb, ControlScheme::Wls).unwrap(),
    ];
    c.bench_function("area_energy_all_variants", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for cfg in &configs {
                total += area.array_area_mm2(cfg);
                total += energy.energy(cfg, &activity).total();
            }
            total
        })
    });
}

criterion_group!(benches, bench_area_energy);
criterion_main!(benches);
