//! Criterion bench: deriving Fig. 6 (performance per area) from a Fig. 5
//! run; the derivation itself is measured separately from the simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use rasa_sim::ExperimentSuite;

fn bench_fig6(c: &mut Criterion) {
    let suite = ExperimentSuite::new().with_matmul_cap(Some(192));
    let fig5 = suite.fig5_runtime().expect("fig5 runs");
    c.bench_function("fig6_ppa_derivation", |b| {
        b.iter(|| {
            let fig6 = suite.fig6_from(&fig5);
            assert_eq!(fig6.rows.len(), 3);
            fig6
        })
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
