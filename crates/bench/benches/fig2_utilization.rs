//! Criterion bench: regenerating the Fig. 2 utilization sweep (pure
//! closed-form model, so this also serves as a fast smoke benchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use rasa_sim::ExperimentSuite;

fn bench_fig2(c: &mut Criterion) {
    let suite = ExperimentSuite::new();
    c.bench_function("fig2_utilization_sweep", |b| {
        b.iter(|| {
            let result = suite.fig2_utilization();
            assert!(!result.curves.is_empty());
            result
        })
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
