//! Criterion micro-benchmarks of the core simulation components: the matrix
//! engine scheduler, the functional array and the end-to-end CPU run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rasa_isa::TileReg;
use rasa_numeric::{Bf16, GemmShape, Matrix};
use rasa_sim::{DesignPoint, Simulator};
use rasa_systolic::{
    ControlScheme, FunctionalArray, MatrixEngine, MmRequest, PeVariant, SystolicConfig, TileDims,
};

fn bench_engine_scheduler(c: &mut Criterion) {
    let tile = TileDims::new(16, 32, 16);
    let mut group = c.benchmark_group("engine_scheduler");
    for (label, pe, scheme) in [
        ("baseline", PeVariant::Baseline, ControlScheme::Base),
        ("wlbp", PeVariant::Baseline, ControlScheme::Wlbp),
        ("dmdb_wls", PeVariant::Dmdb, ControlScheme::Wls),
    ] {
        group.bench_with_input(
            BenchmarkId::new("submit_1000_matmuls", label),
            &(pe, scheme),
            |b, &(pe, scheme)| {
                b.iter(|| {
                    let mut engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
                    let regs = [TileReg::new(4).unwrap(), TileReg::new(5).unwrap()];
                    for i in 0..1000u64 {
                        let reg = regs[(i as usize / 2) % 2];
                        engine
                            .submit(MmRequest::ready_at(reg, tile, 0))
                            .expect("full tile fits");
                    }
                    engine.busy_horizon()
                })
            },
        );
    }
    group.finish();
}

fn bench_functional_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_array");
    group.sample_size(20);
    for pe in [PeVariant::Baseline, PeVariant::Dmdb] {
        let scheme = if pe.has_double_buffering() {
            ControlScheme::Wls
        } else {
            ControlScheme::Base
        };
        let cfg = SystolicConfig::paper(pe, scheme).unwrap();
        let a = Matrix::from_fn(16, 32, |i, j| Bf16::from_f32(((i + j) % 7) as f32 - 3.0));
        let b_op = Matrix::from_fn(32, 16, |i, j| Bf16::from_f32(((i * j) % 5) as f32 - 2.0));
        let c_in = Matrix::<f32>::zeros(16, 16);
        group.bench_with_input(
            BenchmarkId::new("full_tile_matmul", cfg.label()),
            &cfg,
            |bench, cfg| {
                bench.iter(|| {
                    let mut array = FunctionalArray::new(*cfg);
                    let (out, activity) = array.matmul(&a, &b_op, &c_in).expect("valid tile");
                    assert_eq!(activity.total_macs(), 16 * 32 * 16);
                    out
                })
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let shape = GemmShape::new(256, 256, 256);
    for design in [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()] {
        group.bench_with_input(
            BenchmarkId::new("gemm_256cubed", design.name().to_string()),
            &design,
            |b, design| {
                let sim = Simulator::new(design.clone()).expect("design builds");
                b.iter(|| sim.run_gemm(shape).expect("gemm runs").core_cycles)
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_scheduler,
    bench_functional_array,
    bench_end_to_end
);
criterion_main!(benches);
