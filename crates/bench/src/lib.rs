//! # rasa-bench — benchmark harness regenerating every paper table and figure
//!
//! The crate has two faces:
//!
//! * **Experiment binaries** (`src/bin/*.rs`) — one per figure/table of the
//!   paper's evaluation. Each runs the corresponding
//!   [`rasa_sim::ExperimentSuite`] experiment and prints a paper-style table
//!   together with the values the paper reports, so the reproduction gap is
//!   visible at a glance. Run them with, e.g.
//!   `cargo run --release -p rasa-bench --bin fig5_runtime`.
//! * **Criterion benches** (`benches/*.rs`) — wall-clock benchmarks of the
//!   simulator itself (how long it takes to regenerate each experiment and
//!   how fast the matrix-engine scheduler is), run via `cargo bench`.
//!
//! The shared helpers here parse the tiny command-line interface of the
//! binaries and hold the paper's reference numbers.

#![deny(missing_docs)]

use rasa_sim::ExperimentSuite;

/// The paper's reported average runtime reductions (Fig. 5), as fractions.
pub const PAPER_FIG5_REDUCTIONS: [(&str, f64); 5] = [
    ("RASA-PIPE", 0.157),
    ("RASA-WLBP", 0.309),
    ("RASA-DM-WLBP", 0.555),
    ("RASA-DB-WLS", 0.781),
    ("RASA-DMDB-WLS", 0.792),
];

/// The paper's reported area overheads over the baseline array.
pub const PAPER_AREA_OVERHEADS: [(&str, f64); 3] = [
    ("RASA-DB-WLS", 0.031),
    ("RASA-DM-WLBP", 0.026),
    ("RASA-DMDB-WLS", 0.055),
];

/// The paper's reported energy-efficiency improvements over the baseline.
pub const PAPER_ENERGY_EFFICIENCY: [(&str, f64); 3] = [
    ("RASA-DB-WLS", 4.38),
    ("RASA-DM-WLBP", 2.19),
    ("RASA-DMDB-WLS", 4.59),
];

/// The batch-size asymptote of Fig. 7 (16 / 95).
pub const PAPER_FIG7_ASYMPTOTE: f64 = 16.0 / 95.0;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinOptions {
    /// Cap on simulated `rasa_mm` instructions per workload/design pair
    /// (`None` = simulate every tile).
    pub matmul_cap: Option<usize>,
    /// Largest batch size for the Fig. 7 sweep.
    pub fig7_max_batch: usize,
    /// Run the experiment matrix on all cores (default) or serially.
    pub parallel: bool,
    /// For `run_all`: skip the serial re-run that cross-checks the parallel
    /// results and measures the speedup.
    pub skip_serial_check: bool,
}

impl Default for BinOptions {
    fn default() -> Self {
        BinOptions {
            matmul_cap: Some(4096),
            fig7_max_batch: 1024,
            parallel: true,
            skip_serial_check: false,
        }
    }
}

impl BinOptions {
    /// Parses the binaries' tiny CLI: `--cap N`, `--full` (no cap),
    /// `--max-batch N`, `--serial` (single-threaded execution) and
    /// `--no-serial-check` (skip `run_all`'s serial cross-check). Unknown
    /// arguments are ignored so the binaries can be run under criterion or
    /// other wrappers.
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut options = BinOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--cap" => {
                    if let Some(value) = args.next().and_then(|v| v.parse().ok()) {
                        options.matmul_cap = Some(value);
                    }
                }
                "--full" => options.matmul_cap = None,
                "--max-batch" => {
                    if let Some(value) = args.next().and_then(|v| v.parse().ok()) {
                        options.fig7_max_batch = value;
                    }
                }
                "--serial" => options.parallel = false,
                "--no-serial-check" => options.skip_serial_check = true,
                _ => {}
            }
        }
        options
    }

    /// Parses the current process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        BinOptions::parse(std::env::args().skip(1))
    }

    /// Builds the experiment suite these options describe.
    ///
    /// # Errors
    ///
    /// Returns [`rasa_sim::SimError::InvalidExperiment`] for unusable
    /// options (e.g. `--cap 0`), so the binaries report a clean error
    /// instead of panicking.
    pub fn suite(&self) -> Result<ExperimentSuite, rasa_sim::SimError> {
        ExperimentSuite::builder()
            .with_matmul_cap(self.matmul_cap)
            .with_fig7_max_batch(self.fig7_max_batch)
            .with_parallel(self.parallel)
            .build()
    }
}

/// Formats a `measured vs paper` comparison line used by the binaries.
#[must_use]
pub fn compare_line(label: &str, measured: f64, paper: f64, unit: &str) -> String {
    format!(
        "  {label:<16} measured {measured:>8.3}{unit}   paper {paper:>8.3}{unit}   ratio {:.2}",
        if paper.abs() > f64::EPSILON {
            measured / paper
        } else {
            f64::NAN
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = BinOptions::default();
        assert_eq!(o.matmul_cap, Some(4096));
        assert_eq!(o.fig7_max_batch, 1024);
        assert!(o.parallel);
        assert!(!o.skip_serial_check);
    }

    #[test]
    fn parse_cap_and_full() {
        let o = BinOptions::parse(["--cap".to_string(), "512".to_string()]);
        assert_eq!(o.matmul_cap, Some(512));
        let o = BinOptions::parse(["--full".to_string()]);
        assert_eq!(o.matmul_cap, None);
        let o = BinOptions::parse([
            "--max-batch".to_string(),
            "64".to_string(),
            "--junk".to_string(),
        ]);
        assert_eq!(o.fig7_max_batch, 64);
        // Malformed values fall back to the default.
        let o = BinOptions::parse(["--cap".to_string(), "notanumber".to_string()]);
        assert_eq!(o.matmul_cap, Some(4096));
    }

    #[test]
    fn parse_execution_flags() {
        let o = BinOptions::parse(["--serial".to_string()]);
        assert!(!o.parallel);
        let o = BinOptions::parse(["--no-serial-check".to_string()]);
        assert!(o.skip_serial_check);
        assert!(o.parallel);
    }

    #[test]
    fn suite_reflects_options() {
        let o = BinOptions {
            matmul_cap: Some(64),
            fig7_max_batch: 32,
            parallel: false,
            skip_serial_check: false,
        };
        let s = o.suite().unwrap();
        assert_eq!(s.matmul_cap(), Some(64));
        assert_eq!(s.fig7_max_batch(), 32);
        assert!(!s.runner().is_parallel());
    }

    #[test]
    fn paper_constants_are_sane() {
        assert_eq!(PAPER_FIG5_REDUCTIONS.len(), 5);
        assert!(PAPER_FIG5_REDUCTIONS
            .iter()
            .all(|(_, r)| *r > 0.0 && *r < 1.0));
        assert!(PAPER_ENERGY_EFFICIENCY.iter().all(|(_, e)| *e > 1.0));
        assert!((PAPER_FIG7_ASYMPTOTE - 0.168).abs() < 1e-3);
    }

    #[test]
    fn compare_line_formats() {
        let line = compare_line("RASA-WLBP", 0.35, 0.309, "");
        assert!(line.contains("RASA-WLBP"));
        assert!(line.contains("paper"));
    }
}
