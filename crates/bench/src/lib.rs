//! # rasa-bench — benchmark harness regenerating every paper table and figure
//!
//! The crate has two faces:
//!
//! * **Experiment binaries** (`src/bin/*.rs`) — one per figure/table of the
//!   paper's evaluation. Each runs the corresponding
//!   [`rasa_sim::ExperimentSuite`] experiment and prints a paper-style table
//!   together with the values the paper reports, so the reproduction gap is
//!   visible at a glance. Run them with, e.g.
//!   `cargo run --release -p rasa-bench --bin fig5_runtime`.
//! * **Criterion benches** (`benches/*.rs`) — wall-clock benchmarks of the
//!   simulator itself (how long it takes to regenerate each experiment and
//!   how fast the matrix-engine scheduler is), run via `cargo bench`.
//!
//! The shared helpers here parse the tiny command-line interface of the
//! binaries and hold the paper's reference numbers.

#![deny(missing_docs)]

pub mod prof;

use rasa_sim::search::{Evolutionary, ExhaustiveGrid, RandomSampling, SearchStrategy};
use rasa_sim::serve::AdmissionControl;
use rasa_sim::ExperimentSuite;

/// The paper's reported average runtime reductions (Fig. 5), as fractions.
pub const PAPER_FIG5_REDUCTIONS: [(&str, f64); 5] = [
    ("RASA-PIPE", 0.157),
    ("RASA-WLBP", 0.309),
    ("RASA-DM-WLBP", 0.555),
    ("RASA-DB-WLS", 0.781),
    ("RASA-DMDB-WLS", 0.792),
];

/// The paper's reported area overheads over the baseline array.
pub const PAPER_AREA_OVERHEADS: [(&str, f64); 3] = [
    ("RASA-DB-WLS", 0.031),
    ("RASA-DM-WLBP", 0.026),
    ("RASA-DMDB-WLS", 0.055),
];

/// The paper's reported energy-efficiency improvements over the baseline.
pub const PAPER_ENERGY_EFFICIENCY: [(&str, f64); 3] = [
    ("RASA-DB-WLS", 4.38),
    ("RASA-DM-WLBP", 2.19),
    ("RASA-DMDB-WLS", 4.59),
];

/// The batch-size asymptote of Fig. 7 (16 / 95).
pub const PAPER_FIG7_ASYMPTOTE: f64 = 16.0 / 95.0;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinOptions {
    /// Cap on simulated `rasa_mm` instructions per workload/design pair
    /// (`None` = simulate every tile).
    pub matmul_cap: Option<usize>,
    /// Largest batch size for the Fig. 7 sweep.
    pub fig7_max_batch: usize,
    /// Run the experiment matrix on all cores (default) or serially.
    pub parallel: bool,
    /// For `run_all`: skip the serial re-run that cross-checks the parallel
    /// results and measures the speedup.
    pub skip_serial_check: bool,
    /// For `run_all` / `serve_soak`: write the JSON results document here.
    pub json_path: Option<String>,
    /// For `serve_soak`: number of concurrent closed-loop clients.
    pub clients: usize,
    /// For `serve_soak`: requests each client submits.
    pub requests_per_client: usize,
    /// For `serve_soak`: worker threads per design pool.
    pub workers_per_design: usize,
    /// For `serve_soak`: maximum requests coalesced into one batch.
    pub serve_max_batch: usize,
    /// For `serve_soak`: LRU bound on the shared memoization cache.
    pub cache_capacity: usize,
    /// For `serve_soak`: base seed of the deterministic traffic mix.
    pub seed: u64,
    /// For `serve_soak`: bound on queued requests per design pool.
    pub queue_capacity: usize,
    /// For `serve_soak`: what a full queue does to new submissions.
    pub admission: AdmissionControl,
    /// For `run_all`: warm-start the runner's cell cache from a previous
    /// `--json` results document before evaluating.
    pub warm_start_path: Option<String>,
    /// For `run_all`: the Table I layer used for the full-fidelity
    /// event-driven vs reference core timing comparison.
    pub timing_layer: String,
    /// For `run_all`: skip the evaluation and run only the timing
    /// comparison (the CI `--full` smoke step).
    pub timing_only: bool,
    /// For `run_all`: skip the timing comparison (repeat sweeps that do
    /// not need the full-fidelity reference re-run).
    pub no_timing: bool,
    /// Run cells through the streaming trace→simulate pipeline (default) or
    /// the materialized path (`--no-stream`, the A/B escape hatch).
    pub stream: bool,
    /// Target streamed-segment size in instructions (`--segment-size`).
    pub segment_size: usize,
    /// Run streamed cells through the speculative fork/join segment
    /// scheduler (`--speculation on`, the default) or sequentially
    /// (`--speculation off`). Simulated statistics are bit-identical
    /// either way.
    pub speculation: bool,
    /// Speculative workers per fork/join wave (`--spec-depth`).
    pub spec_depth: usize,
    /// For `run_all` / `design_search` / `serve_soak`: write the
    /// machine-readable perf document (throughputs, speculation rates,
    /// serve latencies) here (`--bench PATH`).
    pub bench_path: Option<String>,
    /// For `run_all`: restrict the evaluation to the Table I layers
    /// matching this filter (comma-separated substrings or 1-based
    /// indices).
    pub layers: Option<String>,
    /// For `design_search`: the strategy to run (`grid`, `random` or
    /// `evolve`).
    pub strategy: String,
    /// For `design_search --strategy evolve`: individuals per generation.
    pub population: usize,
    /// For `design_search --strategy evolve`: breeding generations after
    /// the initial draw.
    pub generations: usize,
    /// For `design_search --strategy random`: number of seeded draws.
    pub samples: usize,
    /// For `design_search`: the Table I layer candidates are evaluated on.
    pub workload: String,
    /// For `design_search`: cross the hardware axes with the kernel axes
    /// (register-block shape, matmul order, loop order, unroll) and search
    /// the joint space (`--kernel-axes`).
    pub kernel_axes: bool,
    /// For `serve_soak`: drive a spawned router + worker-process tier over
    /// TCP instead of the in-process server (`--distributed`).
    pub distributed: bool,
    /// For `serve_soak --distributed`: number of worker processes.
    pub shards: usize,
    /// For `serve_soak --distributed`: kill one worker mid-run and prove
    /// zero lost requests (`--kill-worker`).
    pub kill_worker: bool,
    /// For `rasa-shardd` / `rasa-router`: the address to bind
    /// (`--listen`; port 0 picks an ephemeral port, the resolved address
    /// is printed on stdout).
    pub listen: String,
    /// For `rasa-router`: shard backend addresses in shard-id order
    /// (`--shard ADDR`, repeatable).
    pub shard_addrs: Vec<String>,
    /// For `rasa-router` / `serve_soak --distributed`: per-shard bound on
    /// in-flight requests (`--inflight`).
    pub inflight: usize,
    /// For `rasa-router` / `serve_soak --distributed`: virtual nodes per
    /// shard on the consistent-hash ring (`--vnodes`).
    pub vnodes: usize,
    /// For `rasa-router` / `serve_soak`: bound on the router's own result
    /// cache, probed before any shard is contacted (`--router-cache`;
    /// 0 disables it).
    pub router_cache: usize,
    /// For `serve_soak`: percentage of each run's requests treated as
    /// cache/pool warmup and excluded from the steady-state throughput
    /// metric (`--warmup PCT`).
    pub warmup_percent: usize,
    /// For `rasa-shardd`: this worker's shard id (`--shard-id`).
    pub shard_id: u32,
    /// `--help` / `-h` was given: print the binary's flag table and exit.
    pub help: bool,
}

impl Default for BinOptions {
    fn default() -> Self {
        BinOptions {
            matmul_cap: Some(4096),
            fig7_max_batch: 1024,
            parallel: true,
            skip_serial_check: false,
            json_path: None,
            clients: 8,
            requests_per_client: 32,
            workers_per_design: 2,
            serve_max_batch: 8,
            cache_capacity: 1024,
            seed: 42,
            queue_capacity: rasa_sim::DEFAULT_QUEUE_CAPACITY,
            admission: AdmissionControl::default(),
            warm_start_path: None,
            timing_layer: "ResNet50-2".to_string(),
            timing_only: false,
            no_timing: false,
            stream: true,
            segment_size: rasa_sim::DEFAULT_SEGMENT_SIZE,
            speculation: true,
            spec_depth: rasa_sim::DEFAULT_SPEC_DEPTH,
            bench_path: None,
            layers: None,
            strategy: "grid".to_string(),
            population: 16,
            generations: 8,
            samples: 48,
            workload: "DLRM-2".to_string(),
            kernel_axes: false,
            distributed: false,
            shards: 4,
            kill_worker: false,
            listen: "127.0.0.1:0".to_string(),
            shard_addrs: Vec::new(),
            inflight: 32,
            vnodes: 64,
            router_cache: rasa_sim::net::DEFAULT_RESULT_CACHE_CAPACITY,
            warmup_percent: 20,
            shard_id: 0,
            help: false,
        }
    }
}

impl BinOptions {
    /// Parses the binaries' tiny CLI: `--cap N`, `--full` (no cap),
    /// `--max-batch N`, `--serial` (single-threaded execution),
    /// `--no-serial-check` (skip `run_all`'s serial cross-check),
    /// `--json PATH` (write the JSON results document), the streaming
    /// pipeline knobs `--no-stream` (materialized A/B path),
    /// `--segment-size N`, `--speculation on|off`, `--spec-depth N` and
    /// `--layers FILTER` (comma-separated
    /// substrings or 1-based Table I indices), `--bench PATH` (write the
    /// machine-readable perf document), the `run_all` knobs
    /// `--warm-start PATH`, `--timing-layer NAME` and `--timing-only`, and
    /// the `serve_soak` knobs `--clients N`, `--requests N`, `--workers N`,
    /// `--batch N`, `--cache-capacity N`, `--queue-capacity N`,
    /// `--admission block|reject` and `--seed N`, and the `design_search`
    /// knobs `--strategy grid|random|evolve`, `--population N`,
    /// `--generations N`, `--samples N`, `--workload NAME` and
    /// `--kernel-axes` (joint hardware × kernel search), the
    /// distributed-serving knobs `--distributed`, `--shards N`,
    /// `--kill-worker`, `--inflight N`, `--vnodes N`, `--router-cache N`
    /// and `--warmup PCT`, and the
    /// `rasa-shardd` / `rasa-router` knobs `--listen ADDR`,
    /// `--shard ADDR` (repeatable) and `--shard-id N`. `--help` / `-h`
    /// sets [`BinOptions::help`] so a binary can print its flag table (see
    /// [`usage`]). Unknown arguments are ignored so the binaries can be
    /// run under criterion or other wrappers.
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        fn numeric<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> Option<T> {
            args.next().and_then(|v| v.parse().ok())
        }
        let mut options = BinOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--cap" => {
                    if let Some(value) = numeric(&mut args) {
                        options.matmul_cap = Some(value);
                    }
                }
                "--full" => options.matmul_cap = None,
                "--max-batch" => {
                    if let Some(value) = numeric(&mut args) {
                        options.fig7_max_batch = value;
                    }
                }
                "--serial" => options.parallel = false,
                "--no-serial-check" => options.skip_serial_check = true,
                "--json" => options.json_path = args.next(),
                "--clients" => {
                    if let Some(value) = numeric(&mut args) {
                        options.clients = value;
                    }
                }
                "--requests" => {
                    if let Some(value) = numeric(&mut args) {
                        options.requests_per_client = value;
                    }
                }
                "--workers" => {
                    if let Some(value) = numeric(&mut args) {
                        options.workers_per_design = value;
                    }
                }
                "--batch" => {
                    if let Some(value) = numeric(&mut args) {
                        options.serve_max_batch = value;
                    }
                }
                "--cache-capacity" => {
                    if let Some(value) = numeric(&mut args) {
                        options.cache_capacity = value;
                    }
                }
                "--seed" => {
                    if let Some(value) = numeric(&mut args) {
                        options.seed = value;
                    }
                }
                "--queue-capacity" => {
                    if let Some(value) = numeric(&mut args) {
                        options.queue_capacity = value;
                    }
                }
                "--admission" => match args.next().as_deref() {
                    Some("reject") => options.admission = AdmissionControl::Reject,
                    Some("block") => options.admission = AdmissionControl::Block,
                    _ => {}
                },
                "--warm-start" => options.warm_start_path = args.next(),
                "--no-stream" => options.stream = false,
                "--segment-size" => {
                    if let Some(value) = numeric(&mut args) {
                        options.segment_size = value;
                    }
                }
                "--speculation" => match args.next().as_deref() {
                    Some("on") => options.speculation = true,
                    Some("off") => options.speculation = false,
                    _ => {}
                },
                "--spec-depth" => {
                    if let Some(value) = numeric(&mut args) {
                        options.spec_depth = value;
                    }
                }
                "--bench" => options.bench_path = args.next(),
                "--layers" => options.layers = args.next(),
                "--timing-layer" => {
                    if let Some(value) = args.next() {
                        options.timing_layer = value;
                    }
                }
                "--timing-only" => options.timing_only = true,
                "--no-timing" => options.no_timing = true,
                "--strategy" => {
                    if let Some(value) = args.next() {
                        options.strategy = value;
                    }
                }
                "--population" => {
                    if let Some(value) = numeric(&mut args) {
                        options.population = value;
                    }
                }
                "--generations" => {
                    if let Some(value) = numeric(&mut args) {
                        options.generations = value;
                    }
                }
                "--samples" => {
                    if let Some(value) = numeric(&mut args) {
                        options.samples = value;
                    }
                }
                "--workload" => {
                    if let Some(value) = args.next() {
                        options.workload = value;
                    }
                }
                "--kernel-axes" => options.kernel_axes = true,
                "--distributed" => options.distributed = true,
                "--shards" => {
                    if let Some(value) = numeric(&mut args) {
                        options.shards = value;
                    }
                }
                "--kill-worker" => options.kill_worker = true,
                "--listen" => {
                    if let Some(value) = args.next() {
                        options.listen = value;
                    }
                }
                "--shard" => {
                    if let Some(value) = args.next() {
                        options.shard_addrs.push(value);
                    }
                }
                "--inflight" => {
                    if let Some(value) = numeric(&mut args) {
                        options.inflight = value;
                    }
                }
                "--vnodes" => {
                    if let Some(value) = numeric(&mut args) {
                        options.vnodes = value;
                    }
                }
                "--router-cache" => {
                    if let Some(value) = numeric(&mut args) {
                        options.router_cache = value;
                    }
                }
                "--warmup" => {
                    if let Some(value) = numeric(&mut args) {
                        options.warmup_percent = value;
                    }
                }
                "--shard-id" => {
                    if let Some(value) = numeric(&mut args) {
                        options.shard_id = value;
                    }
                }
                "--help" | "-h" => options.help = true,
                _ => {}
            }
        }
        options
    }

    /// Parses the current process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        BinOptions::parse(std::env::args().skip(1))
    }

    /// Parses the current process arguments and, when `--help` / `-h` was
    /// given, prints `binary`'s flag table (see [`usage`]) to stdout and
    /// exits with status 0. Every experiment binary starts with this.
    #[must_use]
    pub fn from_env_or_usage(binary: &str) -> Self {
        let options = BinOptions::from_env();
        if options.help {
            print!("{}", usage(binary));
            std::process::exit(0);
        }
        options
    }

    /// Builds the boxed [`SearchStrategy`] these options select for the
    /// `design_search` binary: `--strategy grid` (the default), `random`
    /// (`--samples`, `--seed`) or `evolve` (`--population`,
    /// `--generations`, `--seed`).
    ///
    /// # Errors
    ///
    /// Returns [`rasa_sim::SimError::InvalidExperiment`] for an unknown
    /// strategy name.
    pub fn search_strategy(&self) -> Result<Box<dyn SearchStrategy>, rasa_sim::SimError> {
        match self.strategy.as_str() {
            "grid" => Ok(Box::new(ExhaustiveGrid)),
            "random" => Ok(Box::new(RandomSampling::new(self.samples, self.seed))),
            "evolve" => Ok(Box::new(Evolutionary::new(
                self.population,
                self.generations,
                self.seed,
            ))),
            other => Err(rasa_sim::SimError::InvalidExperiment {
                reason: format!("unknown search strategy '{other}' (grid|random|evolve)"),
            }),
        }
    }

    /// Builds the experiment suite these options describe.
    ///
    /// # Errors
    ///
    /// Returns [`rasa_sim::SimError::InvalidExperiment`] for unusable
    /// options (e.g. `--cap 0`), so the binaries report a clean error
    /// instead of panicking.
    pub fn suite(&self) -> Result<ExperimentSuite, rasa_sim::SimError> {
        ExperimentSuite::builder()
            .with_matmul_cap(self.matmul_cap)
            .with_fig7_max_batch(self.fig7_max_batch)
            .with_parallel(self.parallel)
            .with_streaming(self.stream)
            .with_segment_size(self.segment_size)
            .with_speculation(self.speculation)
            .with_spec_depth(self.spec_depth)
            .with_layer_filter(self.layers.clone())
            .build()
    }
}

/// One command-line flag of the experiment binaries: its spelling, value
/// placeholder, one-line description and the binaries that honour it.
/// [`usage`] renders the per-binary `--help` table from this registry, and
/// the README's flag table is regenerated from the same output, so the
/// three can never drift apart independently.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The flag itself, e.g. `--cap`.
    pub flag: &'static str,
    /// The value placeholder (`"N"`, `"PATH"`, …); empty for bare flags.
    pub value: &'static str,
    /// One-line description shown in `--help`.
    pub description: &'static str,
    /// Names of the binaries that honour the flag.
    pub binaries: &'static [&'static str],
}

/// The binaries that run an [`ExperimentSuite`] and therefore honour the
/// shared simulation flags (`--cap`, `--serial`, the streaming knobs…).
pub const SUITE_BINARIES: &[&str] = &[
    "fig1_toy",
    "fig2_utilization",
    "fig5_runtime",
    "fig6_ppa",
    "fig7_batch",
    "table_area_energy",
    "ablation_blocking",
    "ablation_cpu",
    "run_all",
    "design_search",
];

/// Every flag of every experiment binary (except `bench_check`, which has
/// its own three-flag CLI documented in its `--help`).
pub const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        flag: "--cap",
        value: "N",
        description: "cap simulated rasa_mm instructions per cell (default 4096)",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--full",
        value: "",
        description: "remove the matmul cap (simulate every tile)",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--serial",
        value: "",
        description: "run the experiment matrix single-threaded",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--no-stream",
        value: "",
        description: "use the materialized trace path instead of streaming",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--segment-size",
        value: "N",
        description: "target streamed-segment size in instructions",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--speculation",
        value: "on|off",
        description: "speculative fork/join segment scheduling (default on)",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--spec-depth",
        value: "N",
        description: "speculative workers per fork/join wave",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--layers",
        value: "FILTER",
        description: "restrict Table I layers (comma-separated substrings or 1-based indices)",
        binaries: SUITE_BINARIES,
    },
    FlagSpec {
        flag: "--max-batch",
        value: "N",
        description: "largest batch size of the Fig. 7 sweep",
        binaries: &["fig7_batch", "run_all"],
    },
    FlagSpec {
        flag: "--no-serial-check",
        value: "",
        description: "skip the serial re-run that cross-checks the parallel results",
        binaries: &["run_all"],
    },
    FlagSpec {
        flag: "--warm-start",
        value: "PATH",
        description: "pre-load the cell cache from a previous --json document",
        binaries: &["run_all"],
    },
    FlagSpec {
        flag: "--timing-layer",
        value: "NAME",
        description: "Table I layer for the event-driven vs reference timing comparison",
        binaries: &["run_all"],
    },
    FlagSpec {
        flag: "--timing-only",
        value: "",
        description: "run only the timing comparison, skip the evaluation",
        binaries: &["run_all"],
    },
    FlagSpec {
        flag: "--no-timing",
        value: "",
        description: "skip the timing comparison",
        binaries: &["run_all"],
    },
    FlagSpec {
        flag: "--json",
        value: "PATH",
        description: "write the machine-readable results document",
        binaries: &["run_all", "design_search", "serve_soak"],
    },
    FlagSpec {
        flag: "--bench",
        value: "PATH",
        description: "write/update the machine-readable perf document",
        binaries: &["run_all", "design_search", "serve_soak"],
    },
    FlagSpec {
        flag: "--seed",
        value: "N",
        description: "base seed of the deterministic traffic / sampling",
        binaries: &["design_search", "serve_soak"],
    },
    FlagSpec {
        flag: "--strategy",
        value: "grid|random|evolve",
        description: "design-space search strategy",
        binaries: &["design_search"],
    },
    FlagSpec {
        flag: "--population",
        value: "N",
        description: "individuals per generation (--strategy evolve)",
        binaries: &["design_search"],
    },
    FlagSpec {
        flag: "--generations",
        value: "N",
        description: "breeding generations (--strategy evolve)",
        binaries: &["design_search"],
    },
    FlagSpec {
        flag: "--samples",
        value: "N",
        description: "seeded draws (--strategy random)",
        binaries: &["design_search"],
    },
    FlagSpec {
        flag: "--workload",
        value: "NAME",
        description: "Table I layer candidates are evaluated on",
        binaries: &["design_search"],
    },
    FlagSpec {
        flag: "--kernel-axes",
        value: "",
        description: "search the joint hardware x kernel space",
        binaries: &["design_search"],
    },
    FlagSpec {
        flag: "--clients",
        value: "N",
        description: "concurrent closed-loop clients",
        binaries: &["serve_soak"],
    },
    FlagSpec {
        flag: "--requests",
        value: "N",
        description: "requests each client submits",
        binaries: &["serve_soak"],
    },
    FlagSpec {
        flag: "--workers",
        value: "N",
        description: "worker threads per design pool",
        binaries: &["serve_soak", "rasa-shardd"],
    },
    FlagSpec {
        flag: "--batch",
        value: "N",
        description: "maximum requests coalesced into one batch",
        binaries: &["serve_soak", "rasa-shardd"],
    },
    FlagSpec {
        flag: "--cache-capacity",
        value: "N",
        description: "LRU bound on the memoization cell cache",
        binaries: &["serve_soak", "rasa-shardd"],
    },
    FlagSpec {
        flag: "--queue-capacity",
        value: "N",
        description: "bound on queued requests per design pool",
        binaries: &["serve_soak", "rasa-shardd"],
    },
    FlagSpec {
        flag: "--admission",
        value: "block|reject",
        description: "behaviour when a queue or in-flight window is full",
        binaries: &["serve_soak", "rasa-shardd", "rasa-router"],
    },
    FlagSpec {
        flag: "--cap",
        value: "N",
        description: "matmul cap per cell — must match across router and shards",
        binaries: &["serve_soak", "rasa-shardd", "rasa-router"],
    },
    FlagSpec {
        flag: "--full",
        value: "",
        description: "remove the matmul cap — must match across router and shards",
        binaries: &["rasa-shardd", "rasa-router"],
    },
    FlagSpec {
        flag: "--distributed",
        value: "",
        description: "spawn a router + worker-process tier and drive it over TCP",
        binaries: &["serve_soak"],
    },
    FlagSpec {
        flag: "--shards",
        value: "N",
        description: "worker processes in --distributed mode (default 4)",
        binaries: &["serve_soak"],
    },
    FlagSpec {
        flag: "--kill-worker",
        value: "",
        description: "kill one worker mid-run and prove zero lost requests",
        binaries: &["serve_soak"],
    },
    FlagSpec {
        flag: "--inflight",
        value: "N",
        description: "per-shard bound on in-flight requests at the router",
        binaries: &["serve_soak", "rasa-router"],
    },
    FlagSpec {
        flag: "--vnodes",
        value: "N",
        description: "virtual nodes per shard on the consistent-hash ring",
        binaries: &["serve_soak", "rasa-router"],
    },
    FlagSpec {
        flag: "--router-cache",
        value: "N",
        description: "LRU bound on the router-side result cache (0 disables it)",
        binaries: &["serve_soak", "rasa-router"],
    },
    FlagSpec {
        flag: "--warmup",
        value: "PCT",
        description: "percent of requests excluded from steady-state throughput (default 20)",
        binaries: &["serve_soak"],
    },
    FlagSpec {
        flag: "--listen",
        value: "ADDR",
        description: "bind address (port 0 = ephemeral; resolved address printed on stdout)",
        binaries: &["rasa-shardd", "rasa-router"],
    },
    FlagSpec {
        flag: "--shard",
        value: "ADDR",
        description: "shard backend address in shard-id order (repeatable)",
        binaries: &["rasa-router"],
    },
    FlagSpec {
        flag: "--shard-id",
        value: "N",
        description: "this worker's shard id, echoed in responses and health frames",
        binaries: &["rasa-shardd"],
    },
];

/// Renders `binary`'s `--help` text from the [`FLAGS`] registry.
#[must_use]
pub fn usage(binary: &str) -> String {
    let mut out = format!("Usage: {binary} [FLAGS]\n\nFlags (unknown arguments are ignored):\n");
    for spec in FLAGS {
        if !spec.binaries.contains(&binary) {
            continue;
        }
        let mut left = spec.flag.to_string();
        if !spec.value.is_empty() {
            left.push(' ');
            left.push_str(spec.value);
        }
        out.push_str(&format!("  {left:<26} {}\n", spec.description));
    }
    out.push_str("  --help, -h                 print this flag table and exit\n");
    out
}

/// Serializes `document` (pretty, trailing newline), proves the bytes
/// reload to the identical file (parse + re-serialize must be
/// byte-identical — the CI regression harness depends on this), and writes
/// them to `path`.
///
/// # Errors
///
/// Returns parse errors from the self-check and I/O errors from the write.
pub fn write_verified_json(
    path: &str,
    document: &rasa_sim::JsonValue,
) -> Result<(), Box<dyn std::error::Error>> {
    let text = document.to_string_pretty();
    let reloaded = rasa_sim::JsonValue::parse(&text)?;
    let round_tripped = reloaded.to_string_pretty();
    if round_tripped != text {
        return Err(format!(
            "JSON round-trip drifted for {path}: {} bytes reserialized to {} bytes",
            text.len(),
            round_tripped.len()
        )
        .into());
    }
    std::fs::write(path, &text)?;
    Ok(())
}

/// Reads a results file back into a document.
///
/// # Errors
///
/// Returns I/O errors and JSON parse errors.
pub fn read_json(path: &str) -> Result<rasa_sim::JsonValue, Box<dyn std::error::Error>> {
    Ok(rasa_sim::JsonValue::parse(&std::fs::read_to_string(path)?)?)
}

/// Replaces (or inserts) the `section` member of the machine-readable perf
/// document at `path` and writes it back, creating the document if absent.
///
/// Each binary owns one section (`"run_all"`, `"design_search"`,
/// `"serve_soak"`), so a perf-trajectory point like `BENCH_6.json` is
/// assembled by running the binaries in sequence with the same `--bench`
/// path. Unlike the golden results documents, the perf document records
/// wall-clock observations: it is machine-dependent by design and compared
/// only within a noise band (see the `bench_check` binary).
///
/// # Errors
///
/// Returns I/O errors, JSON parse errors, and an error when the existing
/// file is not a JSON object.
pub fn update_bench_section(
    path: &str,
    section: &str,
    value: rasa_sim::JsonValue,
) -> Result<(), Box<dyn std::error::Error>> {
    use rasa_sim::JsonValue;
    let mut members = match std::fs::read_to_string(path) {
        Ok(text) => match JsonValue::parse(&text)? {
            JsonValue::Object(members) => members,
            _ => return Err(format!("perf document {path} is not a JSON object").into()),
        },
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
            vec![("schema".into(), JsonValue::string("rasa-bench/1"))]
        }
        Err(error) => return Err(error.into()),
    };
    match members.iter_mut().find(|(name, _)| name == section) {
        Some((_, existing)) => *existing = value,
        None => members.push((section.to_string(), value)),
    }
    write_verified_json(path, &JsonValue::Object(members))
}

/// Formats a `measured vs paper` comparison line used by the binaries.
#[must_use]
pub fn compare_line(label: &str, measured: f64, paper: f64, unit: &str) -> String {
    format!(
        "  {label:<16} measured {measured:>8.3}{unit}   paper {paper:>8.3}{unit}   ratio {:.2}",
        if paper.abs() > f64::EPSILON {
            measured / paper
        } else {
            f64::NAN
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = BinOptions::default();
        assert_eq!(o.matmul_cap, Some(4096));
        assert_eq!(o.fig7_max_batch, 1024);
        assert!(o.parallel);
        assert!(!o.skip_serial_check);
    }

    #[test]
    fn parse_cap_and_full() {
        let o = BinOptions::parse(["--cap".to_string(), "512".to_string()]);
        assert_eq!(o.matmul_cap, Some(512));
        let o = BinOptions::parse(["--full".to_string()]);
        assert_eq!(o.matmul_cap, None);
        let o = BinOptions::parse([
            "--max-batch".to_string(),
            "64".to_string(),
            "--junk".to_string(),
        ]);
        assert_eq!(o.fig7_max_batch, 64);
        // Malformed values fall back to the default.
        let o = BinOptions::parse(["--cap".to_string(), "notanumber".to_string()]);
        assert_eq!(o.matmul_cap, Some(4096));
    }

    #[test]
    fn parse_execution_flags() {
        let o = BinOptions::parse(["--serial".to_string()]);
        assert!(!o.parallel);
        let o = BinOptions::parse(["--no-serial-check".to_string()]);
        assert!(o.skip_serial_check);
        assert!(o.parallel);
    }

    #[test]
    fn parse_serving_flags() {
        let args = [
            "--json",
            "out.json",
            "--clients",
            "3",
            "--requests",
            "7",
            "--workers",
            "2",
            "--batch",
            "16",
            "--cache-capacity",
            "9",
            "--seed",
            "123",
        ];
        let o = BinOptions::parse(args.iter().map(ToString::to_string));
        assert_eq!(o.json_path.as_deref(), Some("out.json"));
        assert_eq!(o.clients, 3);
        assert_eq!(o.requests_per_client, 7);
        assert_eq!(o.workers_per_design, 2);
        assert_eq!(o.serve_max_batch, 16);
        assert_eq!(o.cache_capacity, 9);
        assert_eq!(o.seed, 123);
        // Defaults when absent.
        let o = BinOptions::parse(std::iter::empty());
        assert_eq!(o.json_path, None);
        assert_eq!(o.clients, 8);
        assert_eq!(o.requests_per_client, 32);
        assert_eq!(o.workers_per_design, 2);
        assert_eq!(o.serve_max_batch, 8);
        assert_eq!(o.cache_capacity, 1024);
        assert_eq!(o.seed, 42);
        assert_eq!(o.queue_capacity, rasa_sim::DEFAULT_QUEUE_CAPACITY);
        assert_eq!(o.admission, AdmissionControl::Block);
        assert_eq!(o.warm_start_path, None);
        assert_eq!(o.timing_layer, "ResNet50-2");
        assert!(!o.timing_only);
    }

    #[test]
    fn parse_backpressure_and_timing_flags() {
        let args = [
            "--queue-capacity",
            "5",
            "--admission",
            "reject",
            "--warm-start",
            "prev.json",
            "--timing-layer",
            "DLRM-2",
            "--timing-only",
        ];
        let o = BinOptions::parse(args.iter().map(ToString::to_string));
        assert_eq!(o.queue_capacity, 5);
        assert_eq!(o.admission, AdmissionControl::Reject);
        assert_eq!(o.warm_start_path.as_deref(), Some("prev.json"));
        assert_eq!(o.timing_layer, "DLRM-2");
        assert!(o.timing_only);
        assert!(!o.no_timing);
        assert!(BinOptions::parse(["--no-timing".to_string()]).no_timing);
        // Unknown admission values keep the default.
        let o = BinOptions::parse(["--admission".to_string(), "banana".to_string()]);
        assert_eq!(o.admission, AdmissionControl::Block);
    }

    #[test]
    fn parse_streaming_flags() {
        let o = BinOptions::parse(std::iter::empty());
        assert!(o.stream, "streaming is the default");
        assert_eq!(o.segment_size, rasa_sim::DEFAULT_SEGMENT_SIZE);
        assert_eq!(o.layers, None);
        let args = [
            "--no-stream",
            "--segment-size",
            "4096",
            "--layers",
            "DLRM,9",
        ];
        let o = BinOptions::parse(args.iter().map(ToString::to_string));
        assert!(!o.stream);
        assert_eq!(o.segment_size, 4096);
        assert_eq!(o.layers.as_deref(), Some("DLRM,9"));
        let s = o.suite().unwrap();
        assert!(!s.runner().is_streaming());
        assert_eq!(s.runner().segment_size(), 4096);
        assert_eq!(s.layers().len(), 4);
    }

    #[test]
    fn parse_speculation_flags() {
        let o = BinOptions::parse(std::iter::empty());
        assert!(o.speculation, "speculation is the default");
        assert_eq!(o.spec_depth, rasa_sim::DEFAULT_SPEC_DEPTH);
        assert_eq!(o.bench_path, None);
        let args = [
            "--speculation",
            "off",
            "--spec-depth",
            "3",
            "--bench",
            "b.json",
        ];
        let o = BinOptions::parse(args.iter().map(ToString::to_string));
        assert!(!o.speculation);
        assert_eq!(o.spec_depth, 3);
        assert_eq!(o.bench_path.as_deref(), Some("b.json"));
        let s = o.suite().unwrap();
        assert!(!s.runner().is_speculative());
        assert_eq!(s.runner().spec_depth(), 3);
        // Unknown values keep the default.
        let o = BinOptions::parse(["--speculation".to_string(), "banana".to_string()]);
        assert!(o.speculation);
    }

    #[test]
    fn parse_search_flags_and_build_strategies() {
        let o = BinOptions::parse(std::iter::empty());
        assert_eq!(o.strategy, "grid");
        assert_eq!(o.population, 16);
        assert_eq!(o.generations, 8);
        assert_eq!(o.samples, 48);
        assert_eq!(o.workload, "DLRM-2");
        assert!(!o.kernel_axes, "hardware-only search is the default");
        assert_eq!(o.search_strategy().unwrap().name(), "grid");

        let args = [
            "--strategy",
            "evolve",
            "--population",
            "12",
            "--generations",
            "4",
            "--samples",
            "20",
            "--workload",
            "BERT-1",
            "--seed",
            "7",
            "--kernel-axes",
        ];
        let o = BinOptions::parse(args.iter().map(ToString::to_string));
        assert_eq!(o.strategy, "evolve");
        assert_eq!(o.population, 12);
        assert_eq!(o.generations, 4);
        assert_eq!(o.samples, 20);
        assert_eq!(o.workload, "BERT-1");
        assert!(o.kernel_axes);
        assert_eq!(o.search_strategy().unwrap().name(), "evolve");

        let o = BinOptions::parse(["--strategy".to_string(), "random".to_string()]);
        assert_eq!(o.search_strategy().unwrap().name(), "random");
        let o = BinOptions::parse(["--strategy".to_string(), "banana".to_string()]);
        assert!(matches!(
            o.search_strategy(),
            Err(rasa_sim::SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn parse_distributed_flags() {
        let o = BinOptions::parse(std::iter::empty());
        assert!(!o.distributed);
        assert_eq!(o.shards, 4);
        assert!(!o.kill_worker);
        assert_eq!(o.listen, "127.0.0.1:0");
        assert!(o.shard_addrs.is_empty());
        assert_eq!(o.inflight, 32);
        assert_eq!(o.vnodes, 64);
        assert_eq!(o.shard_id, 0);
        assert!(!o.help);

        let args = [
            "--distributed",
            "--shards",
            "6",
            "--kill-worker",
            "--listen",
            "127.0.0.1:9000",
            "--shard",
            "127.0.0.1:9001",
            "--shard",
            "127.0.0.1:9002",
            "--inflight",
            "8",
            "--vnodes",
            "16",
            "--shard-id",
            "3",
        ];
        let o = BinOptions::parse(args.iter().map(ToString::to_string));
        assert!(o.distributed);
        assert_eq!(o.shards, 6);
        assert!(o.kill_worker);
        assert_eq!(o.listen, "127.0.0.1:9000");
        assert_eq!(o.shard_addrs, vec!["127.0.0.1:9001", "127.0.0.1:9002"]);
        assert_eq!(o.inflight, 8);
        assert_eq!(o.vnodes, 16);
        assert_eq!(o.shard_id, 3);
        assert!(BinOptions::parse(["--help".to_string()]).help);
        assert!(BinOptions::parse(["-h".to_string()]).help);
    }

    #[test]
    fn usage_lists_only_the_binarys_flags() {
        let soak = usage("serve_soak");
        assert!(soak.contains("--distributed"));
        assert!(soak.contains("--kill-worker"));
        assert!(soak.contains("--clients"));
        assert!(!soak.contains("--listen"), "--listen is a daemon flag");
        assert!(soak.contains("--cap"), "the soak honours the matmul cap");

        let shardd = usage("rasa-shardd");
        assert!(shardd.contains("--listen"));
        assert!(shardd.contains("--shard-id"));
        assert!(!shardd.contains("--distributed"));

        let router = usage("rasa-router");
        assert!(router.contains("--shard ADDR"));
        assert!(router.contains("--vnodes"));
        assert!(!router.contains("--shard-id"));

        let fig5 = usage("fig5_runtime");
        assert!(fig5.contains("--cap"));
        assert!(fig5.contains("--speculation"));
        assert!(!fig5.contains("--clients"));
        // Every usage ends with the --help line itself.
        for text in [&soak, &shardd, &router, &fig5] {
            assert!(text.contains("--help, -h"));
        }
    }

    #[test]
    fn every_flag_spec_names_a_real_binary() {
        let known: Vec<&str> = SUITE_BINARIES
            .iter()
            .copied()
            .chain(["serve_soak", "rasa-shardd", "rasa-router"])
            .collect();
        for spec in FLAGS {
            assert!(!spec.binaries.is_empty(), "{} has no binaries", spec.flag);
            for binary in spec.binaries {
                assert!(known.contains(binary), "{}: unknown {binary}", spec.flag);
            }
            assert!(spec.flag.starts_with("--"));
            assert!(!spec.description.is_empty());
        }
    }

    #[test]
    fn verified_json_write_and_read() {
        use rasa_sim::JsonValue;
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::string("smoke")),
            ("value".into(), JsonValue::number_from_f64(0.25)),
        ]);
        let path = std::env::temp_dir().join("rasa_bench_verified_json_test.json");
        let path = path.to_str().unwrap();
        write_verified_json(path, &doc).unwrap();
        let reloaded = read_json(path).unwrap();
        assert_eq!(reloaded, doc);
        // The on-disk bytes re-serialize identically.
        let bytes = std::fs::read_to_string(path).unwrap();
        assert_eq!(reloaded.to_string_pretty(), bytes);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bench_sections_accumulate_and_replace() {
        use rasa_sim::JsonValue;
        let path = std::env::temp_dir().join("rasa_bench_sections_test.json");
        let path = path.to_str().unwrap();
        std::fs::remove_file(path).ok();
        update_bench_section(path, "run_all", JsonValue::number_from_u64(1)).unwrap();
        update_bench_section(path, "serve_soak", JsonValue::number_from_u64(2)).unwrap();
        update_bench_section(path, "run_all", JsonValue::number_from_u64(3)).unwrap();
        let doc = read_json(path).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("rasa-bench/1")
        );
        assert_eq!(doc.get("run_all").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(doc.get("serve_soak").and_then(JsonValue::as_u64), Some(2));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn suite_reflects_options() {
        let o = BinOptions {
            matmul_cap: Some(64),
            fig7_max_batch: 32,
            parallel: false,
            skip_serial_check: false,
            ..BinOptions::default()
        };
        let s = o.suite().unwrap();
        assert_eq!(s.matmul_cap(), Some(64));
        assert_eq!(s.fig7_max_batch(), 32);
        assert!(!s.runner().is_parallel());
    }

    #[test]
    fn paper_constants_are_sane() {
        assert_eq!(PAPER_FIG5_REDUCTIONS.len(), 5);
        assert!(PAPER_FIG5_REDUCTIONS
            .iter()
            .all(|(_, r)| *r > 0.0 && *r < 1.0));
        assert!(PAPER_ENERGY_EFFICIENCY.iter().all(|(_, e)| *e > 1.0));
        assert!((PAPER_FIG7_ASYMPTOTE - 0.168).abs() < 1e-3);
    }

    #[test]
    fn compare_line_formats() {
        let line = compare_line("RASA-WLBP", 0.35, 0.309, "");
        assert!(line.contains("RASA-WLBP"));
        assert!(line.contains("paper"));
    }
}
