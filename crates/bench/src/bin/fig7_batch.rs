//! Regenerates Fig. 7: batch-size sensitivity of RASA-DMDB-WLS.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env().suite();
    let result = suite.fig7_batch()?;
    println!("{result}");
    println!(
        "{}",
        rasa_bench::compare_line(
            "asymptote",
            result.asymptote,
            rasa_bench::PAPER_FIG7_ASYMPTOTE,
            ""
        )
    );
    Ok(())
}
