//! Regenerates Fig. 7: batch-size sensitivity of RASA-DMDB-WLS.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env_or_usage("fig7_batch").suite()?;
    let start = std::time::Instant::now();
    let result = suite.fig7_batch()?;
    let elapsed = start.elapsed();
    println!("{result}");
    println!(
        "{}",
        rasa_bench::compare_line(
            "asymptote",
            result.asymptote,
            rasa_bench::PAPER_FIG7_ASYMPTOTE,
            ""
        )
    );
    let stats = suite.runner().cache_stats();
    println!(
        "({} cells in {:.2} s, {})",
        stats.misses,
        elapsed.as_secs_f64(),
        if suite.runner().is_parallel() {
            "parallel"
        } else {
            "serial"
        }
    );
    Ok(())
}
