//! Compares a freshly generated perf document against a checked-in
//! baseline (`BENCH_<pr>.json`) and flags metric regressions beyond a
//! noise band.
//!
//! ```sh
//! cargo run --release -p rasa-bench --bin bench_check -- \
//!     --baseline BENCH_6.json --candidate bench.json --noise 0.35
//! ```
//!
//! The documents hold wall-clock observations, so exact comparison is
//! meaningless across machines; instead every tracked metric must stay
//! within `--noise` (default 0.35 = 35%) of the baseline in its *bad*
//! direction — throughputs and speedups may not drop below
//! `baseline · (1 - noise)`, latencies may not rise above
//! `baseline · (1 + noise)`. Improvements of any size pass. Metrics absent
//! from either document are reported and skipped (a smoke-sized rerun does
//! not populate every section). Exit status: 0 when every present metric
//! is within band, 2 when at least one regressed — CI runs this step
//! warn-only (`continue-on-error`), so a red check is a signal, not a
//! gate.

use rasa_sim::JsonValue;

/// The direction in which a metric can regress.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Better {
    /// Larger values are better (throughputs, speedups, rates).
    Higher,
    /// Smaller values are better (latencies).
    Lower,
}

/// Dotted paths of every tracked metric in the perf document.
const METRICS: &[(&str, Better)] = &[
    ("run_all.cells_per_second", Better::Higher),
    ("run_all.instructions_per_second", Better::Higher),
    ("run_all.visited_cycle_skip_rate", Better::Higher),
    ("design_search.cells_per_second", Better::Higher),
    ("design_search_joint.cells_per_second", Better::Higher),
    ("serve_soak.throughput_requests_per_second", Better::Higher),
    (
        "serve_soak.steady_state_requests_per_second",
        Better::Higher,
    ),
    ("serve_soak.p50_seconds", Better::Lower),
    ("serve_soak.p99_seconds", Better::Lower),
    ("serve_soak.p999_seconds", Better::Lower),
    ("allocs_per_request", Better::Lower),
    ("router_cache_hit_rate", Better::Higher),
];

/// Per-design metrics inside every `run_all.timing` row.
const TIMING_METRICS: &[(&str, Better)] = &[
    ("speculative_speedup", Better::Higher),
    ("spec_commit_rate", Better::Higher),
];

/// Looks up a dotted path (`"run_all.cells_per_second"`) in a document.
fn lookup<'a>(document: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    path.split('.')
        .try_fold(document, |value, segment| value.get(segment))
}

/// One metric comparison: prints the verdict line, returns `true` when the
/// metric regressed beyond the band.
fn check(label: &str, baseline: f64, candidate: f64, better: Better, noise: f64) -> bool {
    let (bound, regressed) = match better {
        Better::Higher => {
            let bound = baseline * (1.0 - noise);
            (bound, candidate < bound)
        }
        Better::Lower => {
            let bound = baseline * (1.0 + noise);
            (bound, candidate > bound)
        }
    };
    let verdict = if regressed { "REGRESSED" } else { "ok" };
    println!(
        "  {verdict:<9} {label:<44} baseline {baseline:>12.4}  candidate {candidate:>12.4}  bound {bound:>12.4}"
    );
    regressed
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut baseline_path = String::from("BENCH_6.json");
    let mut candidate_path = String::from("bench.json");
    let mut noise = 0.35f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next().unwrap_or(baseline_path),
            "--candidate" => candidate_path = args.next().unwrap_or(candidate_path),
            "--noise" => {
                if let Some(value) = args.next().and_then(|v| v.parse().ok()) {
                    noise = value;
                }
            }
            "--help" | "-h" => {
                println!("Usage: bench_check [FLAGS]");
                println!();
                println!("Flags (unknown arguments are ignored):");
                println!(
                    "  --baseline PATH            checked-in perf baseline (default BENCH_6.json)"
                );
                println!("  --candidate PATH           freshly generated perf document (default bench.json)");
                println!(
                    "  --noise FRACTION           allowed regression band (default 0.35 = 35%)"
                );
                println!("  --help, -h                 print this flag table and exit");
                return Ok(());
            }
            _ => {}
        }
    }
    let baseline = rasa_bench::read_json(&baseline_path)?;
    let candidate = rasa_bench::read_json(&candidate_path)?;
    println!(
        "bench_check: {candidate_path} vs {baseline_path} (noise band {:.0}%)",
        noise * 100.0
    );

    let mut regressions = 0usize;
    let mut skipped = 0usize;
    let mut compare =
        |label: &str, base: Option<f64>, cand: Option<f64>, better: Better| match (base, cand) {
            (Some(base), Some(cand)) => {
                if check(label, base, cand, better, noise) {
                    regressions += 1;
                }
            }
            _ => {
                println!("  skipped   {label:<44} (absent from baseline or candidate)");
                skipped += 1;
            }
        };

    for (path, better) in METRICS {
        compare(
            path,
            lookup(&baseline, path).and_then(JsonValue::as_f64),
            lookup(&candidate, path).and_then(JsonValue::as_f64),
            *better,
        );
    }
    // Timing rows are matched by design name, so a reordered document
    // still compares like with like.
    let timing_rows = |document: &JsonValue| -> Vec<(String, JsonValue)> {
        match lookup(document, "run_all.timing") {
            Some(JsonValue::Array(rows)) => rows
                .iter()
                .filter_map(|row| {
                    row.get("design")
                        .and_then(JsonValue::as_str)
                        .map(|name| (name.to_string(), row.clone()))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let baseline_rows = timing_rows(&baseline);
    let candidate_rows = timing_rows(&candidate);
    for (design, baseline_row) in &baseline_rows {
        let candidate_row = candidate_rows
            .iter()
            .find(|(name, _)| name == design)
            .map(|(_, row)| row);
        for (member, better) in TIMING_METRICS {
            compare(
                &format!("run_all.timing[{design}].{member}"),
                baseline_row.get(member).and_then(JsonValue::as_f64),
                candidate_row
                    .and_then(|row| row.get(member))
                    .and_then(JsonValue::as_f64),
                *better,
            );
        }
    }

    if regressions > 0 {
        println!("{regressions} metric(s) regressed beyond the noise band ({skipped} skipped)");
        std::process::exit(2);
    }
    println!("all present metrics within the noise band ({skipped} skipped)");
    Ok(())
}
