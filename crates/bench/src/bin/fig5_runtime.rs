//! Regenerates Fig. 5: runtime of every RASA design on the Table I layers,
//! normalized to the baseline. Also prints Table I itself (the workload
//! dimensions) and the measured-vs-paper average reductions.

use rasa_workloads::WorkloadSuite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env_or_usage("fig5_runtime");
    let suite = options.suite()?;

    println!("Table I — layer dimensions (lowered GEMMs)");
    for layer in WorkloadSuite::mlperf().layers() {
        println!("  {layer}  ->  {}", layer.gemm_shape());
    }
    println!();

    let start = std::time::Instant::now();
    let fig5 = suite.fig5_runtime()?;
    let elapsed = start.elapsed();
    println!("{fig5}");
    let stats = suite.runner().cache_stats();
    println!(
        "({} cells in {:.2} s, {})",
        stats.misses,
        elapsed.as_secs_f64(),
        if suite.runner().is_parallel() {
            "parallel"
        } else {
            "serial"
        }
    );

    println!("Average runtime reduction, measured vs paper:");
    for (design, paper) in rasa_bench::PAPER_FIG5_REDUCTIONS {
        if let Some(measured) = fig5.average_reduction(design) {
            println!("{}", rasa_bench::compare_line(design, measured, paper, ""));
        }
    }

    println!();
    println!(
        "CSV ({} rasa_mm cap per run):",
        match options.matmul_cap {
            Some(c) => c.to_string(),
            None => "no".to_string(),
        }
    );
    println!("{}", rasa_sim::SimSummary::csv_header());
    for run in &fig5.runs {
        for report in &run.reports {
            println!("{}", report.summary().to_csv_row());
        }
    }
    Ok(())
}
