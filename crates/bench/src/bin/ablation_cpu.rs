//! Ablation: host-CPU sensitivity (ROB size, engine:core clock ratio) of the
//! RASA-DMDB-WLS runtime reduction.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env_or_usage("ablation_cpu").suite()?;
    let result = suite.ablation_cpu()?;
    println!("{result}");
    Ok(())
}
