//! `rasa-router` — the consistent-hashing front of the distributed
//! serving tier.
//!
//! Binds a frame server (see `docs/WIRE_PROTOCOL.md`) and forwards every
//! request to the shard worker that owns its semantic shape key, with
//! per-shard bounded in-flight windows and dead-shard failover (see
//! [`rasa_sim::net::Router`]). Shard backends are passed as repeated
//! `--shard ADDR` flags in shard-id order; `--cap` must match the value
//! the shards run with, or routing keys stop matching the shards'
//! memoization keys and every shard runs cache-cold.
//!
//! Like `rasa-shardd`, the process prints `LISTENING <addr>` as its first
//! stdout line and runs until stdin reaches EOF.

use rasa_sim::net::{Router, RouterConfig};
use std::io::{Read, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env_or_usage("rasa-router");
    if options.shard_addrs.is_empty() {
        eprintln!("rasa-router: no shard backends; pass --shard ADDR at least once");
        std::process::exit(2);
    }
    let config = RouterConfig {
        vnodes: options.vnodes,
        inflight_per_shard: options.inflight,
        admission: options.admission,
        matmul_cap: options.matmul_cap,
        result_cache_capacity: options.router_cache,
    };
    let router = Router::bind(&options.listen, &options.shard_addrs, config)?;
    let addr = router
        .local_addr()
        .expect("bind always attaches a listener");

    println!("LISTENING {addr}");
    std::io::stdout().flush()?;

    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    let stats = router.stats();
    eprintln!(
        "rasa-router routed={} failovers={} dead_marked={} window_blocked={} window_rejected={} cache_hits={} cache_misses={} per_shard={:?}",
        stats.routed,
        stats.failovers,
        stats.dead_marked,
        stats.window_blocked,
        stats.window_rejected,
        stats.cache_hits,
        stats.cache_misses,
        stats.per_shard,
    );
    router.shutdown();
    Ok(())
}
