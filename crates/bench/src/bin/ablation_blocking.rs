//! Ablation: kernel-blocking (consecutive weight reuse) sensitivity of the
//! RASA-Control schemes.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env_or_usage("ablation_blocking").suite()?;
    let result = suite.ablation_blocking()?;
    println!("{result}");
    println!("The paper's reported WLBP reduction (30.9%) lies between the weight-paired");
    println!("and interleaved extremes, consistent with LIBXSMM kernels exposing partial");
    println!("consecutive weight-register reuse.");
    Ok(())
}
