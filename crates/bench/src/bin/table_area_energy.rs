//! Regenerates the §V area-overhead and energy-efficiency comparison.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env_or_usage("table_area_energy").suite()?;
    let table = suite.area_energy()?;
    println!("{table}");

    println!("Measured vs paper:");
    for (design, paper) in rasa_bench::PAPER_AREA_OVERHEADS {
        if let Some(row) = table.row(design) {
            println!(
                "{}",
                rasa_bench::compare_line(design, row.area_overhead * 100.0, paper * 100.0, "%")
            );
        }
    }
    for (design, paper) in rasa_bench::PAPER_ENERGY_EFFICIENCY {
        if let Some(row) = table.row(design) {
            println!(
                "{}",
                rasa_bench::compare_line(design, row.energy_efficiency, paper, "x")
            );
        }
    }
    Ok(())
}
