//! Automated design-space search over `SystolicConfig` parameters.
//!
//! Explores the [`rasa_sim::search`] explorer space (every PE variant ×
//! control scheme crossed with paper/wide/tall geometries and shallow/deep
//! in-flight windows) on one Table I workload, with one of three seeded
//! strategies:
//!
//! * `--strategy grid` — exhaustive evaluation of every valid candidate;
//! * `--strategy random --samples N --seed S` — seeded uniform sampling;
//! * `--strategy evolve --population N --generations G --seed S` — seeded
//!   evolutionary loop (tournament selection + per-axis mutation).
//!
//! `--kernel-axes` additionally crosses every hardware point with the
//! kernel-scheme axes (register-block shape, matmul order, loop order,
//! unroll) that survive the cost-model pre-filter, searching the joint
//! hardware × kernel space.
//!
//! Candidates are evaluated in parallel through the memoizing
//! `ExperimentRunner`, so revisited genotypes are cell-cache hits. The run
//! is fully deterministic for a fixed seed: `--json PATH` writes a
//! byte-stable document (same seed ⇒ identical bytes — the property the CI
//! golden diff enforces), excluding every scheduling-dependent observation.

use rasa_sim::search::{DesignSearch, SearchSpace};
use rasa_sim::{ExperimentRunner, JsonValue, ToJson};
use rasa_workloads::WorkloadSuite;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env_or_usage("design_search");
    let suite = WorkloadSuite::mlperf();
    let Some(layer) = suite.layer(&options.workload) else {
        return Err(format!(
            "unknown --workload '{}' (expected a Table I layer name)",
            options.workload
        )
        .into());
    };
    let strategy = options.search_strategy()?;
    let runner = ExperimentRunner::builder()
        .with_matmul_cap(options.matmul_cap)
        .with_parallel(options.parallel)
        .with_streaming(options.stream)
        .with_segment_size(options.segment_size)
        .with_speculation(options.speculation)
        .with_spec_depth(options.spec_depth)
        .build()?;
    let space = if options.kernel_axes {
        SearchSpace::explorer_joint()
    } else {
        SearchSpace::explorer()
    };
    println!(
        "searching {space} on {} ({}, cap {:?}, seed {})",
        layer.name(),
        strategy.name(),
        options.matmul_cap,
        options.seed
    );

    let start = Instant::now();
    let search = DesignSearch::new(&runner, space, layer.clone());
    let outcome = search.run(strategy.as_ref())?;
    let elapsed = start.elapsed().as_secs_f64();

    println!("{outcome}");
    let stats = runner.cache_stats();
    println!(
        "search in {elapsed:.2} s ({}); {} cells simulated, {} served from cache ({:.0}% hit rate)",
        if runner.is_parallel() {
            "parallel"
        } else {
            "serial"
        },
        stats.misses,
        stats.hits,
        stats.hit_rate() * 100.0,
    );

    if let Some(path) = &options.json_path {
        // Only configuration-determined data enters the document (the
        // cache counters above vary with thread scheduling and stay out),
        // so a repeated run with the same seed rewrites identical bytes.
        let mut option_members = vec![
            ("strategy".into(), JsonValue::string(&options.strategy)),
            ("workload".into(), JsonValue::string(&options.workload)),
            ("seed".into(), JsonValue::number_from_u64(options.seed)),
            (
                "population".into(),
                JsonValue::number_from_usize(options.population),
            ),
            (
                "generations".into(),
                JsonValue::number_from_usize(options.generations),
            ),
            (
                "samples".into(),
                JsonValue::number_from_usize(options.samples),
            ),
            (
                "matmul_cap".into(),
                options
                    .matmul_cap
                    .map_or(JsonValue::Null, JsonValue::number_from_usize),
            ),
        ];
        if options.kernel_axes {
            // Gated so the default hardware-only document — and the pinned
            // golden/search.json — keeps its exact bytes.
            option_members.push(("kernel_axes".into(), JsonValue::Bool(true)));
        }
        let document = JsonValue::Object(vec![
            ("schema".into(), JsonValue::string("rasa-design-search/1")),
            ("options".into(), JsonValue::Object(option_members)),
            ("search".into(), outcome.to_json()),
        ]);
        rasa_bench::write_verified_json(path, &document)?;
        println!("results written to {path} (round-trip verified)");
    }

    if let Some(path) = &options.bench_path {
        // Wall-clock search throughput for the perf trajectory
        // (machine-dependent; `bench_check` compares within a noise band).
        let section = JsonValue::Object(vec![
            (
                "elapsed_seconds".into(),
                JsonValue::number_from_f64(elapsed),
            ),
            (
                "cells_simulated".into(),
                JsonValue::number_from_u64(stats.misses),
            ),
            (
                "cells_per_second".into(),
                JsonValue::number_from_f64(stats.misses as f64 / elapsed.max(1e-9)),
            ),
            (
                "cache_hit_rate".into(),
                JsonValue::number_from_f64(stats.hit_rate()),
            ),
        ]);
        let section_name = if options.kernel_axes {
            "design_search_joint"
        } else {
            "design_search"
        };
        rasa_bench::update_bench_section(path, section_name, section)?;
        println!("perf document section '{section_name}' written to {path}");
    }
    Ok(())
}
