//! Soak-tests the batched GEMM serving layer: N closed-loop clients drive a
//! deterministic seeded mix of FC-layer shapes through a [`GemmServer`],
//! and the harness reports throughput, p50/p99 latency, cache
//! hit/eviction statistics and batching effectiveness.
//!
//! Run with, e.g.:
//!
//! ```sh
//! cargo run --release -p rasa-bench --bin serve_soak -- \
//!     --clients 8 --requests 32 --workers 2 --cache-capacity 24 \
//!     --cap 256 --json soak.json
//! ```
//!
//! With `--distributed` the soak instead spawns a `rasa-router` and
//! `--shards N` `rasa-shardd` worker processes (the binaries must sit next
//! to `serve_soak`, i.e. build the full suite first) and drives the same
//! Zipf-skewed traffic through the wire protocol. `--kill-worker`
//! additionally kills one worker mid-run to prove the router's failover
//! loses zero requests. Every distinct simulated cell is then re-run on an
//! in-process [`GemmServer`] and its [`SimSummary`] JSON must match the
//! distributed answer byte for byte.
//!
//! The `--json` file is round-trip verified before it is written: the
//! serialized document must reload and re-serialize to byte-identical
//! output (the property the CI regression harness relies on).

use rasa_bench::{prof, BinOptions};
use rasa_sim::net::{
    ClientStats, NetClient, Router, RouterConfig, RouterHealth, ShardConfig, ShardServer,
    WireRequest,
};
use rasa_sim::serve::{AdmissionControl, GemmRequest, GemmServer, LatencySummary, ServeConfig};
use rasa_sim::{DesignPoint, FromJson, JsonValue, SimError, SimSummary, ToJson};
use rasa_workloads::{bert_layers, dlrm_layers, LayerSpec, TrafficGenerator};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One client's view of a completed in-process request.
struct Completion {
    design: String,
    workload: String,
    total_seconds: f64,
    queue_seconds: f64,
    simulate_seconds: f64,
    /// Seconds from soak start to this completion — the steady-state
    /// throughput window is cut on these.
    finished_seconds: f64,
    summary: SimSummary,
}

/// Throughput over the steady-state window: the first `warmup_percent` of
/// completions (cold caches, cold pools) are excluded, and the remainder
/// is divided by the time from the last warmup completion to the end.
/// Falls back to the whole-run rate when the warmup swallows everything.
fn steady_state_throughput(finish_times: &mut [f64], warmup_percent: usize) -> f64 {
    let total = finish_times.len();
    finish_times.sort_by(f64::total_cmp);
    let warm = total * warmup_percent.min(100) / 100;
    let last = *finish_times.last().expect("at least one completion");
    if warm == 0 || warm >= total || last - finish_times[warm - 1] < 1e-9 {
        return total as f64 / last.max(1e-9);
    }
    (total - warm) as f64 / (last - finish_times[warm - 1])
}

/// One client's view of a completed distributed request. The wire carries
/// no queue/simulate breakdown, so only the client-observed total latency
/// is available; the serialized summary is kept for the byte-identity
/// check against in-process serving.
struct DistCompletion {
    design: String,
    workload: String,
    layer: LayerSpec,
    total_seconds: f64,
    /// Seconds from soak start to this completion — the steady-state
    /// throughput window is cut on these, exactly as in-process.
    finished_seconds: f64,
    summary: SimSummary,
    summary_json: String,
}

/// A spawned `rasa-shardd` / `rasa-router` child. The child runs until its
/// stdin pipe closes ([`Daemon::stop`]) or it is killed outright
/// ([`Daemon::kill`], the failover drill); `Drop` kills as a backstop so
/// an error path never leaks worker processes.
struct Daemon {
    name: String,
    child: Child,
    stdin: Option<ChildStdin>,
    addr: String,
}

impl Daemon {
    /// Spawns `exe args...` and scrapes the `LISTENING <addr>` banner the
    /// serving daemons print as their first stdout line.
    fn spawn(
        exe: &Path,
        name: &str,
        args: &[String],
    ) -> Result<Daemon, Box<dyn std::error::Error>> {
        let mut child = Command::new(exe)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|error| format!("{name}: failed to spawn {}: {error}", exe.display()))?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut banner = String::new();
        BufReader::new(stdout).read_line(&mut banner)?;
        let Some(addr) = banner.trim().strip_prefix("LISTENING ") else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(
                format!("{name}: expected 'LISTENING <addr>' banner, got {banner:?}").into(),
            );
        };
        Ok(Daemon {
            name: name.to_string(),
            addr: addr.to_string(),
            child,
            stdin,
        })
    }

    /// Hard-kills the child (the mid-run failover drill).
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful shutdown: closing the stdin pipe is the daemons' stop
    /// signal, so they drain, print their stderr summary and exit.
    fn stop(mut self) {
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Resolves a sibling binary of the running `serve_soak` executable.
fn sibling(name: &str) -> Result<PathBuf, Box<dyn std::error::Error>> {
    let exe = std::env::current_exe()?;
    let dir = exe
        .parent()
        .ok_or("current executable has no parent directory")?;
    let path = dir.join(name);
    if !path.exists() {
        return Err(format!(
            "{} not found next to serve_soak; build the binary suite first: cargo build --release -p rasa-bench --bins",
            path.display()
        )
        .into());
    }
    Ok(path)
}

/// The serving parameters shared by this soak, the spawned daemons and the
/// in-process verification server.
fn serve_config(options: &BinOptions) -> ServeConfig {
    ServeConfig {
        workers_per_design: options.workers_per_design,
        max_batch: options.serve_max_batch,
        cache_capacity: options.cache_capacity,
        matmul_cap: options.matmul_cap,
        queue_capacity: options.queue_capacity,
        admission: options.admission,
    }
}

/// The `(layer, batch)` request universe: FC layers only, because the
/// serving mix re-batches them freely and they are the latency-critical
/// layers of the paper's recommendation/NLP story.
fn traffic_universe() -> (Vec<LayerSpec>, [usize; 3]) {
    let layers: Vec<LayerSpec> = dlrm_layers().into_iter().chain(bert_layers()).collect();
    (layers, [1usize, 8, 64])
}

/// Replays the soak's deterministic traffic through a loopback tier — two
/// in-process TCP shard servers fronted by a [`Router`] with its result
/// cache enabled — and returns the router's counters. This is how the
/// local bench measures an honest `router_cache_hit_rate` (and populates
/// the frame encode/decode profiling stages) without spawning processes.
fn loopback_router_stats(
    options: &BinOptions,
) -> Result<rasa_sim::net::RouterStats, Box<dyn std::error::Error>> {
    let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
    let (layers, batch_sizes) = traffic_universe();
    let mut shards = Vec::new();
    let mut addrs = Vec::new();
    for shard_id in 0..2u32 {
        let shard = ShardServer::bind(
            "127.0.0.1:0",
            ShardConfig {
                shard_id,
                serve: serve_config(options),
            },
            &designs,
        )?;
        addrs.push(shard.local_addr().to_string());
        shards.push(shard);
    }
    let router = Router::new(
        &addrs,
        RouterConfig {
            matmul_cap: options.matmul_cap,
            result_cache_capacity: options.router_cache,
            ..RouterConfig::default()
        },
    )?;
    for client in 0..options.clients {
        let mut traffic =
            TrafficGenerator::new(&layers, &batch_sizes, options.seed + client as u64)
                .expect("non-empty traffic universe");
        for request_index in 0..options.requests_per_client {
            let workload = traffic.next_request();
            let design = designs[(client + request_index) % designs.len()].name();
            let id = ((client as u64) << 32) | request_index as u64;
            router.route(&WireRequest::new(id, design, workload))?;
        }
    }
    let stats = router.stats();
    for shard in shards {
        shard.shutdown();
    }
    Ok(stats)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env_or_usage("serve_soak");
    if options.clients == 0 || options.requests_per_client == 0 {
        return Err("--clients and --requests must both be at least 1".into());
    }
    if options.distributed {
        run_distributed(&options)
    } else {
        run_local(&options)
    }
}

fn run_local(options: &BinOptions) -> Result<(), Box<dyn std::error::Error>> {
    let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
    let server = GemmServer::new(serve_config(options), &designs)?;
    assert!(
        server.worker_count() > 1,
        "soak requires more than one worker"
    );

    let (layers, batch_sizes) = traffic_universe();

    println!(
        "serve_soak: {} clients x {} requests over {} shapes x {} designs; {} workers, max batch {}, cache capacity {}, queue capacity {} ({:?} admission), seed {}",
        options.clients,
        options.requests_per_client,
        layers.len() * batch_sizes.len(),
        designs.len(),
        server.worker_count(),
        options.serve_max_batch,
        options.cache_capacity,
        options.queue_capacity,
        options.admission,
        options.seed,
    );

    // Client-side retries after an admission-control rejection (reject
    // mode only; block mode clients park inside `submit` instead).
    let retries = AtomicU64::new(0);
    prof::reset();
    prof::set_enabled(true);
    let allocs_before = prof::allocations();
    let soak_start = Instant::now();
    let completions: Vec<Completion> = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for client in 0..options.clients {
            let server = &server;
            let layers = &layers;
            let designs = &designs;
            let retries = &retries;
            let soak_start = &soak_start;
            clients.push(
                scope.spawn(move || -> Result<Vec<Completion>, rasa_sim::SimError> {
                    // Each client gets its own deterministic traffic stream.
                    let mut traffic =
                        TrafficGenerator::new(layers, &batch_sizes, options.seed + client as u64)
                            .expect("non-empty traffic universe");
                    let mut completions = Vec::with_capacity(options.requests_per_client);
                    for request_index in 0..options.requests_per_client {
                        let workload = traffic.next_request();
                        let design = designs[(client + request_index) % designs.len()].clone();
                        // A rejected request (queue at capacity under
                        // `--admission reject`) backs off briefly and
                        // retries: the closed loop must still complete
                        // every request.
                        let handle = loop {
                            match server.submit(GemmRequest::new(design.clone(), workload.clone()))
                            {
                                Ok(handle) => break handle,
                                Err(SimError::Overloaded { .. }) => {
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(error) => return Err(error),
                            }
                        };
                        let response = handle.wait()?;
                        completions.push(Completion {
                            design: response.report.design.clone(),
                            workload: response.report.workload.clone(),
                            total_seconds: response.latency.total_seconds,
                            queue_seconds: response.latency.queue_seconds,
                            simulate_seconds: response.latency.simulate_seconds,
                            finished_seconds: soak_start.elapsed().as_secs_f64(),
                            summary: response.report.summary(),
                        });
                    }
                    Ok(completions)
                }),
            );
        }
        clients
            .into_iter()
            .map(|client| client.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, _>>()
            .map(|all| all.into_iter().flatten().collect())
    })?;
    let wall_seconds = soak_start.elapsed().as_secs_f64();
    let soak_allocs = prof::allocations() - allocs_before;

    let serving = server.stats();
    let cache = server.cache_stats();
    server.shutdown();

    let totals: Vec<f64> = completions.iter().map(|c| c.total_seconds).collect();
    let queues: Vec<f64> = completions.iter().map(|c| c.queue_seconds).collect();
    let simulates: Vec<f64> = completions.iter().map(|c| c.simulate_seconds).collect();
    let latency = LatencySummary::from_samples(&totals).expect("at least one completion");
    let queue_latency = LatencySummary::from_samples(&queues).expect("non-empty");
    let simulate_latency = LatencySummary::from_samples(&simulates).expect("non-empty");
    let throughput = completions.len() as f64 / wall_seconds.max(1e-9);
    let mut finish_times: Vec<f64> = completions.iter().map(|c| c.finished_seconds).collect();
    let steady_throughput = steady_state_throughput(&mut finish_times, options.warmup_percent);
    let allocs_per_request = soak_allocs as f64 / completions.len() as f64;

    // Distinct simulated cells in deterministic (design, workload) order —
    // these numbers are seed-reproducible even though latencies are not.
    let cells: BTreeMap<(String, String), SimSummary> = completions
        .into_iter()
        .map(|c| ((c.design, c.workload), c.summary))
        .collect();

    println!(
        "completed {} requests in {:.2} s ({throughput:.0} req/s; steady-state {steady_throughput:.0} req/s past the first {}%; {allocs_per_request:.0} allocs/request)",
        totals.len(),
        wall_seconds,
        options.warmup_percent,
    );
    println!(
        "latency p50 {:.3} ms | p99 {:.3} ms | p99.9 {:.3} ms | max {:.3} ms (queue p99 {:.3} ms, simulate p99 {:.3} ms)",
        latency.p50_seconds * 1e3,
        latency.p99_seconds * 1e3,
        latency.p999_seconds * 1e3,
        latency.max_seconds * 1e3,
        queue_latency.p99_seconds * 1e3,
        simulate_latency.p99_seconds * 1e3,
    );
    println!(
        "cache: {} hits, {} misses ({:.0}% hit rate), {} evictions, {}/{} resident",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.evictions,
        cache.entries,
        cache.capacity,
    );
    println!(
        "batching: {} batches, mean size {:.2}, largest {}, {} requests coalesced",
        serving.batches,
        serving.mean_batch_size(),
        serving.largest_batch,
        serving.coalesced,
    );
    println!(
        "backpressure: {} submissions blocked for space, {} rejected ({} client retries)",
        serving.blocked,
        serving.rejected,
        retries.load(Ordering::Relaxed),
    );
    println!("{} distinct cells simulated", cells.len());

    if let Some(path) = &options.json_path {
        let document = JsonValue::Object(vec![
            ("schema".into(), JsonValue::string("rasa-serve-soak/1")),
            (
                "config".into(),
                JsonValue::Object(vec![
                    (
                        "clients".into(),
                        JsonValue::number_from_usize(options.clients),
                    ),
                    (
                        "requests_per_client".into(),
                        JsonValue::number_from_usize(options.requests_per_client),
                    ),
                    (
                        "workers_per_design".into(),
                        JsonValue::number_from_usize(options.workers_per_design),
                    ),
                    (
                        "max_batch".into(),
                        JsonValue::number_from_usize(options.serve_max_batch),
                    ),
                    (
                        "cache_capacity".into(),
                        JsonValue::number_from_usize(options.cache_capacity),
                    ),
                    (
                        "queue_capacity".into(),
                        JsonValue::number_from_usize(options.queue_capacity),
                    ),
                    (
                        "admission".into(),
                        JsonValue::string(format!("{:?}", options.admission)),
                    ),
                    (
                        "matmul_cap".into(),
                        options
                            .matmul_cap
                            .map_or(JsonValue::Null, JsonValue::number_from_usize),
                    ),
                    ("seed".into(), JsonValue::number_from_u64(options.seed)),
                    (
                        "designs".into(),
                        JsonValue::Array(
                            designs
                                .iter()
                                .map(|d| JsonValue::string(d.name()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "throughput_requests_per_second".into(),
                JsonValue::number_from_f64(throughput),
            ),
            ("latency".into(), latency.to_json()),
            ("queue_latency".into(), queue_latency.to_json()),
            ("simulate_latency".into(), simulate_latency.to_json()),
            ("serving".into(), serving.to_json()),
            (
                "client_retries".into(),
                JsonValue::number_from_u64(retries.load(Ordering::Relaxed)),
            ),
            ("cache".into(), cache.to_json()),
            (
                "cells".into(),
                JsonValue::Array(cells.values().map(ToJson::to_json).collect()),
            ),
        ]);
        rasa_bench::write_verified_json(path, &document)?;
        println!("results written to {path} (round-trip verified)");
    }

    if let Some(path) = &options.bench_path {
        let section = JsonValue::Object(vec![
            (
                "throughput_requests_per_second".into(),
                JsonValue::number_from_f64(throughput),
            ),
            (
                "steady_state_requests_per_second".into(),
                JsonValue::number_from_f64(steady_throughput),
            ),
            (
                "warmup_percent".into(),
                JsonValue::number_from_usize(options.warmup_percent),
            ),
            (
                "p50_seconds".into(),
                JsonValue::number_from_f64(latency.p50_seconds),
            ),
            (
                "p99_seconds".into(),
                JsonValue::number_from_f64(latency.p99_seconds),
            ),
            (
                "p999_seconds".into(),
                JsonValue::number_from_f64(latency.p999_seconds),
            ),
            (
                "max_seconds".into(),
                JsonValue::number_from_f64(latency.max_seconds),
            ),
            (
                "mean_batch_size".into(),
                JsonValue::number_from_f64(serving.mean_batch_size()),
            ),
        ]);
        rasa_bench::update_bench_section(path, "serve_soak", section)?;
        rasa_bench::update_bench_section(
            path,
            "allocs_per_request",
            JsonValue::number_from_f64(allocs_per_request),
        )?;

        // The router-side result cache is measured on a loopback tier
        // (in-process TCP shards behind a real Router) driven by the same
        // deterministic traffic — the hit rate is seed-reproducible.
        let router_stats = loopback_router_stats(options)?;
        println!(
            "loopback router: {} routed, {} cache hits / {} misses ({:.0}% hit rate)",
            router_stats.routed,
            router_stats.cache_hits,
            router_stats.cache_misses,
            router_stats.cache_hit_rate() * 100.0,
        );
        rasa_bench::update_bench_section(
            path,
            "router_cache_hit_rate",
            JsonValue::number_from_f64(router_stats.cache_hit_rate()),
        )?;

        // The prof section is snapshotted last so it attributes the whole
        // process: the soak itself plus the loopback wire phase (the only
        // part of a local run that exercises frame encode/decode).
        let section = JsonValue::Object(
            prof::snapshot()
                .iter()
                .map(|stage| {
                    (
                        stage.stage.name().to_string(),
                        JsonValue::Object(vec![
                            ("count".into(), JsonValue::number_from_u64(stage.count)),
                            (
                                "seconds".into(),
                                JsonValue::number_from_f64(stage.seconds()),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        rasa_bench::update_bench_section(path, "prof", section)?;
        println!(
            "perf document sections 'serve_soak', 'allocs_per_request', 'router_cache_hit_rate' and 'prof' written to {path}"
        );
    }
    Ok(())
}

fn run_distributed(options: &BinOptions) -> Result<(), Box<dyn std::error::Error>> {
    if options.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if options.kill_worker && options.shards < 2 {
        return Err("--kill-worker needs --shards 2 or more (someone must survive)".into());
    }
    let shardd_exe = sibling("rasa-shardd")?;
    let router_exe = sibling("rasa-router")?;

    let admission = match options.admission {
        AdmissionControl::Block => "block",
        AdmissionControl::Reject => "reject",
    };
    let mut serve_flags: Vec<String> = vec![
        "--listen".into(),
        "127.0.0.1:0".into(),
        "--workers".into(),
        options.workers_per_design.to_string(),
        "--batch".into(),
        options.serve_max_batch.to_string(),
        "--cache-capacity".into(),
        options.cache_capacity.to_string(),
        "--queue-capacity".into(),
        options.queue_capacity.to_string(),
        "--admission".into(),
        admission.into(),
    ];
    match options.matmul_cap {
        Some(cap) => serve_flags.extend(["--cap".into(), cap.to_string()]),
        None => serve_flags.push("--full".into()),
    }

    let mut workers = Vec::with_capacity(options.shards);
    for shard in 0..options.shards {
        let mut args = serve_flags.clone();
        args.extend(["--shard-id".into(), shard.to_string()]);
        workers.push(Daemon::spawn(
            &shardd_exe,
            &format!("rasa-shardd[{shard}]"),
            &args,
        )?);
    }
    let mut router_args: Vec<String> = vec![
        "--listen".into(),
        "127.0.0.1:0".into(),
        "--vnodes".into(),
        options.vnodes.to_string(),
        "--inflight".into(),
        options.inflight.to_string(),
        "--router-cache".into(),
        options.router_cache.to_string(),
        "--admission".into(),
        admission.into(),
    ];
    match options.matmul_cap {
        Some(cap) => router_args.extend(["--cap".into(), cap.to_string()]),
        None => router_args.push("--full".into()),
    }
    for worker in &workers {
        router_args.extend(["--shard".into(), worker.addr.clone()]);
    }
    let router = Daemon::spawn(&router_exe, "rasa-router", &router_args)?;
    let router_addr = router.addr.clone();

    let (layers, batch_sizes) = traffic_universe();
    let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
    let total = options.clients * options.requests_per_client;

    println!(
        "serve_soak --distributed: router {router_addr} over {} shards; {} clients x {} requests over {} shapes x {} designs; inflight {} per shard, {} vnodes, seed {}{}",
        options.shards,
        options.clients,
        options.requests_per_client,
        layers.len() * batch_sizes.len(),
        designs.len(),
        options.inflight,
        options.vnodes,
        options.seed,
        if options.kill_worker {
            " (killing one worker mid-run)"
        } else {
            ""
        },
    );

    // The failover drill: the designated victim is pulled from the worker
    // pool up front; a watcher thread hard-kills it once half the total
    // requests have completed. Its address stays registered with the
    // router, which must mark it dead and re-route its keys without
    // losing a single in-flight request.
    let victim = Mutex::new(if options.kill_worker {
        Some(workers.remove(0))
    } else {
        None
    });
    let completed = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let reroutes = AtomicU64::new(0);

    type ClientOutcome = Result<(Vec<DistCompletion>, ClientStats), String>;
    let soak_start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        if options.kill_worker {
            let victim = &victim;
            let completed = &completed;
            let aborted = &aborted;
            scope.spawn(move || loop {
                if aborted.load(Ordering::Relaxed) {
                    return;
                }
                if completed.load(Ordering::Relaxed) * 2 >= total {
                    if let Some(mut daemon) = victim.lock().expect("victim lock").take() {
                        let seen = completed.load(Ordering::Relaxed);
                        daemon.kill();
                        eprintln!(
                            "serve_soak: killed {} at {seen}/{total} completions ({:.2} s in)",
                            daemon.name,
                            soak_start.elapsed().as_secs_f64(),
                        );
                    }
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            });
        }
        let mut clients = Vec::new();
        for client in 0..options.clients {
            let router_addr = &router_addr;
            let layers = &layers;
            let designs = &designs;
            let completed = &completed;
            let aborted = &aborted;
            let reroutes = &reroutes;
            clients.push(scope.spawn(move || -> ClientOutcome {
                let mut net = NetClient::new(vec![router_addr.clone()]);
                let run = |net: &mut NetClient| -> Result<Vec<DistCompletion>, String> {
                    let mut traffic =
                        TrafficGenerator::new(layers, &batch_sizes, options.seed + client as u64)
                            .expect("non-empty traffic universe");
                    let mut completions = Vec::with_capacity(options.requests_per_client);
                    for request_index in 0..options.requests_per_client {
                        let workload = traffic.next_request();
                        let design = designs[(client + request_index) % designs.len()].name();
                        let id = ((client as u64) << 32) | request_index as u64;
                        let request = WireRequest::new(id, design, workload.clone());
                        let start = Instant::now();
                        // The client library already retries retryable
                        // failures with backoff; this outer loop covers
                        // the kill window, where a burst of re-routed
                        // requests can exhaust those retries while the
                        // router is still marking the shard dead. Bounded
                        // so a wedged tier fails loudly instead of
                        // hanging the soak.
                        let mut attempts = 0usize;
                        let response = loop {
                            match net.request(&request) {
                                Ok(response) => break response,
                                Err(error) if error.is_retryable() && attempts < 200 => {
                                    attempts += 1;
                                    reroutes.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_millis(5));
                                }
                                Err(error) => {
                                    return Err(format!(
                                        "client {client} request {request_index}: {error}"
                                    ));
                                }
                            }
                        };
                        if response.id != id {
                            return Err(format!(
                                "client {client}: response id {} for request id {id}",
                                response.id
                            ));
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        let summary = response.report.summary();
                        completions.push(DistCompletion {
                            design: response.report.design.clone(),
                            workload: response.report.workload.clone(),
                            layer: workload,
                            total_seconds: start.elapsed().as_secs_f64(),
                            finished_seconds: soak_start.elapsed().as_secs_f64(),
                            summary_json: summary.to_json().to_string(),
                            summary,
                        });
                    }
                    Ok(completions)
                };
                let result = run(&mut net);
                if result.is_err() {
                    aborted.store(true, Ordering::Relaxed);
                }
                result.map(|completions| (completions, net.stats()))
            }));
        }
        clients
            .into_iter()
            .map(|client| client.join().expect("client thread panicked"))
            .collect()
    });
    let wall_seconds = soak_start.elapsed().as_secs_f64();

    let mut completions: Vec<DistCompletion> = Vec::with_capacity(total);
    let mut client_stats = ClientStats::default();
    for outcome in outcomes {
        let (batch, stats) =
            outcome.map_err(|error| format!("distributed soak failed: {error}"))?;
        completions.extend(batch);
        client_stats.completed += stats.completed;
        client_stats.retries += stats.retries;
        client_stats.connects += stats.connects;
        client_stats.failed += stats.failed;
    }

    // The zero-lost proof: every closed-loop client completed its full
    // request budget despite the mid-run kill.
    if completions.len() != total {
        return Err(format!("lost requests: {} of {total} completed", completions.len()).into());
    }
    println!(
        "zero lost requests: {total}/{total} completed in {wall_seconds:.2} s ({} library retries, {} re-route retries, {} connects)",
        client_stats.retries,
        reroutes.load(Ordering::Relaxed),
        client_stats.connects,
    );

    let totals: Vec<f64> = completions.iter().map(|c| c.total_seconds).collect();
    let latency = LatencySummary::from_samples(&totals).expect("at least one completion");
    let throughput = completions.len() as f64 / wall_seconds.max(1e-9);
    let mut finish_times: Vec<f64> = completions.iter().map(|c| c.finished_seconds).collect();
    let steady_throughput = steady_state_throughput(&mut finish_times, options.warmup_percent);
    println!(
        "steady-state throughput {steady_throughput:.0} req/s over {} concurrent client connections",
        options.clients,
    );
    println!(
        "throughput {throughput:.0} req/s | latency p50 {:.3} ms | p99 {:.3} ms | p99.9 {:.3} ms | max {:.3} ms",
        latency.p50_seconds * 1e3,
        latency.p99_seconds * 1e3,
        latency.p999_seconds * 1e3,
        latency.max_seconds * 1e3,
    );

    // Distinct cells in deterministic order. Cells answered by two shards
    // across the failover must agree byte for byte — shard-to-shard
    // consistency comes for free from deterministic simulation.
    let mut cells: BTreeMap<(String, String), DistCompletion> = BTreeMap::new();
    for completion in completions {
        let key = (completion.design.clone(), completion.workload.clone());
        if let Some(existing) = cells.get(&key) {
            if existing.summary_json != completion.summary_json {
                return Err(format!("shards disagree on cell ({}, {})", key.0, key.1).into());
            }
        } else {
            cells.insert(key, completion);
        }
    }

    // Probe the router once for the aggregate health picture: per-shard
    // cache churn plus the routing counters.
    let mut probe = NetClient::new(vec![router_addr]);
    let health_json = probe
        .health()
        .map_err(|error| format!("router health probe: {error}"))?;
    let health = RouterHealth::from_json(&health_json)?;
    for shard in &health.shards {
        println!(
            "shard {}: served {}, completed {}, {} batches (mean {:.2}), cache {} hits / {} misses / {} evictions, {}/{} resident",
            shard.shard,
            shard.served,
            shard.serve.completed,
            shard.serve.batches,
            shard.serve.mean_batch_size(),
            shard.cache.hits,
            shard.cache.misses,
            shard.cache.evictions,
            shard.cache.entries,
            shard.cache.capacity,
        );
    }
    if !health.dead.is_empty() {
        println!("dead shards: {:?}", health.dead);
    }
    println!(
        "router: {} routed, {} failovers, {} marked dead, {} window-blocked, {} window-rejected, result cache {} hits / {} misses ({:.0}% hit rate), per-shard {:?}",
        health.stats.routed,
        health.stats.failovers,
        health.stats.dead_marked,
        health.stats.window_blocked,
        health.stats.window_rejected,
        health.stats.cache_hits,
        health.stats.cache_misses,
        health.stats.cache_hit_rate() * 100.0,
        health.stats.per_shard,
    );
    if options.kill_worker && health.stats.dead_marked == 0 {
        println!("note: the victim died after the last request; no failover was exercised");
    }

    // Shut the tier down before the in-process verification run so the
    // soak never holds 2x the worker threads alive at once.
    router.stop();
    for worker in workers {
        worker.stop();
    }
    drop(victim);

    // The byte-identity proof: every distinct cell re-simulated on an
    // in-process server must serialize to the identical SimSummary JSON.
    let verify_config = ServeConfig {
        admission: AdmissionControl::Block,
        ..serve_config(options)
    };
    let verifier = GemmServer::new(verify_config, &designs)?;
    let mut verified = 0usize;
    for ((design_name, workload_name), record) in &cells {
        let design = DesignPoint::by_name(design_name)
            .ok_or_else(|| format!("unknown design {design_name} in completed cell"))?;
        let response = verifier
            .submit(GemmRequest::new(design, record.layer.clone()))?
            .wait()?;
        let local_json = response.report.summary().to_json().to_string();
        if local_json != record.summary_json {
            return Err(format!(
                "cell ({design_name}, {workload_name}) differs between distributed and in-process serving:\n  distributed: {}\n  in-process:  {local_json}",
                record.summary_json,
            )
            .into());
        }
        verified += 1;
    }
    verifier.shutdown();
    println!("determinism: all {verified} distinct cells byte-identical to in-process serving");

    if let Some(path) = &options.json_path {
        let document = JsonValue::Object(vec![
            (
                "schema".into(),
                JsonValue::string("rasa-serve-soak-distributed/1"),
            ),
            (
                "config".into(),
                JsonValue::Object(vec![
                    (
                        "clients".into(),
                        JsonValue::number_from_usize(options.clients),
                    ),
                    (
                        "requests_per_client".into(),
                        JsonValue::number_from_usize(options.requests_per_client),
                    ),
                    (
                        "shards".into(),
                        JsonValue::number_from_usize(options.shards),
                    ),
                    (
                        "workers_per_design".into(),
                        JsonValue::number_from_usize(options.workers_per_design),
                    ),
                    (
                        "max_batch".into(),
                        JsonValue::number_from_usize(options.serve_max_batch),
                    ),
                    (
                        "cache_capacity".into(),
                        JsonValue::number_from_usize(options.cache_capacity),
                    ),
                    (
                        "queue_capacity".into(),
                        JsonValue::number_from_usize(options.queue_capacity),
                    ),
                    (
                        "admission".into(),
                        JsonValue::string(format!("{:?}", options.admission)),
                    ),
                    (
                        "matmul_cap".into(),
                        options
                            .matmul_cap
                            .map_or(JsonValue::Null, JsonValue::number_from_usize),
                    ),
                    (
                        "vnodes".into(),
                        JsonValue::number_from_usize(options.vnodes),
                    ),
                    (
                        "inflight_per_shard".into(),
                        JsonValue::number_from_usize(options.inflight),
                    ),
                    ("seed".into(), JsonValue::number_from_u64(options.seed)),
                    ("kill_worker".into(), JsonValue::Bool(options.kill_worker)),
                    (
                        "designs".into(),
                        JsonValue::Array(
                            designs
                                .iter()
                                .map(|d| JsonValue::string(d.name()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "throughput_requests_per_second".into(),
                JsonValue::number_from_f64(throughput),
            ),
            (
                "steady_state_requests_per_second".into(),
                JsonValue::number_from_f64(steady_throughput),
            ),
            (
                "concurrent_client_connections".into(),
                JsonValue::number_from_usize(options.clients),
            ),
            ("latency".into(), latency.to_json()),
            ("completed".into(), JsonValue::number_from_usize(total)),
            (
                "library_retries".into(),
                JsonValue::number_from_u64(client_stats.retries),
            ),
            (
                "reroute_retries".into(),
                JsonValue::number_from_u64(reroutes.load(Ordering::Relaxed)),
            ),
            ("router".into(), health.stats.to_json()),
            (
                "dead_shards".into(),
                JsonValue::Array(
                    health
                        .dead
                        .iter()
                        .map(|&shard| JsonValue::number_from_usize(shard as usize))
                        .collect(),
                ),
            ),
            (
                "shard_health".into(),
                JsonValue::Array(health.shards.iter().map(ToJson::to_json).collect()),
            ),
            (
                "verified_cells".into(),
                JsonValue::number_from_usize(verified),
            ),
            (
                "cells".into(),
                JsonValue::Array(cells.values().map(|c| c.summary.to_json()).collect()),
            ),
        ]);
        rasa_bench::write_verified_json(path, &document)?;
        println!("results written to {path} (round-trip verified)");
    }

    if let Some(path) = &options.bench_path {
        let (batch_total, batch_count) = health
            .shards
            .iter()
            .fold((0u64, 0u64), |(done, batches), shard| {
                (done + shard.serve.completed, batches + shard.serve.batches)
            });
        let mean_batch = if batch_count == 0 {
            0.0
        } else {
            batch_total as f64 / batch_count as f64
        };
        let section = JsonValue::Object(vec![
            (
                "throughput_requests_per_second".into(),
                JsonValue::number_from_f64(throughput),
            ),
            (
                "steady_state_requests_per_second".into(),
                JsonValue::number_from_f64(steady_throughput),
            ),
            (
                "concurrent_client_connections".into(),
                JsonValue::number_from_usize(options.clients),
            ),
            (
                "p50_seconds".into(),
                JsonValue::number_from_f64(latency.p50_seconds),
            ),
            (
                "p99_seconds".into(),
                JsonValue::number_from_f64(latency.p99_seconds),
            ),
            (
                "p999_seconds".into(),
                JsonValue::number_from_f64(latency.p999_seconds),
            ),
            (
                "max_seconds".into(),
                JsonValue::number_from_f64(latency.max_seconds),
            ),
            (
                "mean_batch_size".into(),
                JsonValue::number_from_f64(mean_batch),
            ),
            (
                "router_cache_hit_rate".into(),
                JsonValue::number_from_f64(health.stats.cache_hit_rate()),
            ),
        ]);
        rasa_bench::update_bench_section(path, "serve_soak_distributed", section)?;
        println!("perf document section 'serve_soak_distributed' written to {path}");
    }
    Ok(())
}
