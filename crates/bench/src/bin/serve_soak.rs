//! Soak-tests the batched GEMM serving layer: N closed-loop clients drive a
//! deterministic seeded mix of FC-layer shapes through a [`GemmServer`],
//! and the harness reports throughput, p50/p99 latency, cache
//! hit/eviction statistics and batching effectiveness.
//!
//! Run with, e.g.:
//!
//! ```sh
//! cargo run --release -p rasa-bench --bin serve_soak -- \
//!     --clients 8 --requests 32 --workers 2 --cache-capacity 24 \
//!     --cap 256 --json soak.json
//! ```
//!
//! The `--json` file is round-trip verified before it is written: the
//! serialized document must reload and re-serialize to byte-identical
//! output (the property the CI regression harness relies on).

use rasa_sim::serve::{GemmRequest, GemmServer, LatencySummary, ServeConfig};
use rasa_sim::{DesignPoint, JsonValue, SimError, SimSummary, ToJson};
use rasa_workloads::{bert_layers, dlrm_layers, LayerSpec, TrafficGenerator};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One client's view of a completed request.
struct Completion {
    design: String,
    workload: String,
    total_seconds: f64,
    queue_seconds: f64,
    simulate_seconds: f64,
    summary: SimSummary,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env();
    if options.clients == 0 || options.requests_per_client == 0 {
        return Err("--clients and --requests must both be at least 1".into());
    }
    let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
    let config = ServeConfig {
        workers_per_design: options.workers_per_design,
        max_batch: options.serve_max_batch,
        cache_capacity: options.cache_capacity,
        matmul_cap: options.matmul_cap,
        queue_capacity: options.queue_capacity,
        admission: options.admission,
    };
    let server = GemmServer::new(config, &designs)?;
    assert!(
        server.worker_count() > 1,
        "soak requires more than one worker"
    );

    // FC layers only: the serving mix re-batches them freely, and they are
    // the latency-critical layers of the paper's recommendation/NLP story.
    let layers: Vec<LayerSpec> = dlrm_layers().into_iter().chain(bert_layers()).collect();
    let batch_sizes = [1usize, 8, 64];

    println!(
        "serve_soak: {} clients x {} requests over {} shapes x {} designs; {} workers, max batch {}, cache capacity {}, queue capacity {} ({:?} admission), seed {}",
        options.clients,
        options.requests_per_client,
        layers.len() * batch_sizes.len(),
        designs.len(),
        server.worker_count(),
        options.serve_max_batch,
        options.cache_capacity,
        options.queue_capacity,
        options.admission,
        options.seed,
    );

    // Client-side retries after an admission-control rejection (reject
    // mode only; block mode clients park inside `submit` instead).
    let retries = AtomicU64::new(0);
    let soak_start = Instant::now();
    let completions: Vec<Completion> = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for client in 0..options.clients {
            let server = &server;
            let layers = &layers;
            let designs = &designs;
            let retries = &retries;
            clients.push(
                scope.spawn(move || -> Result<Vec<Completion>, rasa_sim::SimError> {
                    // Each client gets its own deterministic traffic stream.
                    let mut traffic =
                        TrafficGenerator::new(layers, &batch_sizes, options.seed + client as u64)
                            .expect("non-empty traffic universe");
                    let mut completions = Vec::with_capacity(options.requests_per_client);
                    for request_index in 0..options.requests_per_client {
                        let workload = traffic.next_request();
                        let design = designs[(client + request_index) % designs.len()].clone();
                        // A rejected request (queue at capacity under
                        // `--admission reject`) backs off briefly and
                        // retries: the closed loop must still complete
                        // every request.
                        let handle = loop {
                            match server.submit(GemmRequest::new(design.clone(), workload.clone()))
                            {
                                Ok(handle) => break handle,
                                Err(SimError::Overloaded { .. }) => {
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(error) => return Err(error),
                            }
                        };
                        let response = handle.wait()?;
                        completions.push(Completion {
                            design: response.report.design.clone(),
                            workload: response.report.workload.clone(),
                            total_seconds: response.latency.total_seconds,
                            queue_seconds: response.latency.queue_seconds,
                            simulate_seconds: response.latency.simulate_seconds,
                            summary: response.report.summary(),
                        });
                    }
                    Ok(completions)
                }),
            );
        }
        clients
            .into_iter()
            .map(|client| client.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, _>>()
            .map(|all| all.into_iter().flatten().collect())
    })?;
    let wall_seconds = soak_start.elapsed().as_secs_f64();

    let serving = server.stats();
    let cache = server.cache_stats();
    server.shutdown();

    let totals: Vec<f64> = completions.iter().map(|c| c.total_seconds).collect();
    let queues: Vec<f64> = completions.iter().map(|c| c.queue_seconds).collect();
    let simulates: Vec<f64> = completions.iter().map(|c| c.simulate_seconds).collect();
    let latency = LatencySummary::from_samples(&totals).expect("at least one completion");
    let queue_latency = LatencySummary::from_samples(&queues).expect("non-empty");
    let simulate_latency = LatencySummary::from_samples(&simulates).expect("non-empty");
    let throughput = completions.len() as f64 / wall_seconds.max(1e-9);

    // Distinct simulated cells in deterministic (design, workload) order —
    // these numbers are seed-reproducible even though latencies are not.
    let cells: BTreeMap<(String, String), SimSummary> = completions
        .into_iter()
        .map(|c| ((c.design, c.workload), c.summary))
        .collect();

    println!(
        "completed {} requests in {:.2} s ({throughput:.0} req/s)",
        totals.len(),
        wall_seconds
    );
    println!(
        "latency p50 {:.3} ms | p99 {:.3} ms | p99.9 {:.3} ms | max {:.3} ms (queue p99 {:.3} ms, simulate p99 {:.3} ms)",
        latency.p50_seconds * 1e3,
        latency.p99_seconds * 1e3,
        latency.p999_seconds * 1e3,
        latency.max_seconds * 1e3,
        queue_latency.p99_seconds * 1e3,
        simulate_latency.p99_seconds * 1e3,
    );
    println!(
        "cache: {} hits, {} misses ({:.0}% hit rate), {} evictions, {}/{} resident",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.evictions,
        cache.entries,
        cache.capacity,
    );
    println!(
        "batching: {} batches, mean size {:.2}, largest {}, {} requests coalesced",
        serving.batches,
        serving.mean_batch_size(),
        serving.largest_batch,
        serving.coalesced,
    );
    println!(
        "backpressure: {} submissions blocked for space, {} rejected ({} client retries)",
        serving.blocked,
        serving.rejected,
        retries.load(Ordering::Relaxed),
    );
    println!("{} distinct cells simulated", cells.len());

    if let Some(path) = &options.json_path {
        let document = JsonValue::Object(vec![
            ("schema".into(), JsonValue::string("rasa-serve-soak/1")),
            (
                "config".into(),
                JsonValue::Object(vec![
                    (
                        "clients".into(),
                        JsonValue::number_from_usize(options.clients),
                    ),
                    (
                        "requests_per_client".into(),
                        JsonValue::number_from_usize(options.requests_per_client),
                    ),
                    (
                        "workers_per_design".into(),
                        JsonValue::number_from_usize(options.workers_per_design),
                    ),
                    (
                        "max_batch".into(),
                        JsonValue::number_from_usize(options.serve_max_batch),
                    ),
                    (
                        "cache_capacity".into(),
                        JsonValue::number_from_usize(options.cache_capacity),
                    ),
                    (
                        "queue_capacity".into(),
                        JsonValue::number_from_usize(options.queue_capacity),
                    ),
                    (
                        "admission".into(),
                        JsonValue::string(format!("{:?}", options.admission)),
                    ),
                    (
                        "matmul_cap".into(),
                        options
                            .matmul_cap
                            .map_or(JsonValue::Null, JsonValue::number_from_usize),
                    ),
                    ("seed".into(), JsonValue::number_from_u64(options.seed)),
                    (
                        "designs".into(),
                        JsonValue::Array(
                            designs
                                .iter()
                                .map(|d| JsonValue::string(d.name()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "throughput_requests_per_second".into(),
                JsonValue::number_from_f64(throughput),
            ),
            ("latency".into(), latency.to_json()),
            ("queue_latency".into(), queue_latency.to_json()),
            ("simulate_latency".into(), simulate_latency.to_json()),
            ("serving".into(), serving.to_json()),
            (
                "client_retries".into(),
                JsonValue::number_from_u64(retries.load(Ordering::Relaxed)),
            ),
            ("cache".into(), cache.to_json()),
            (
                "cells".into(),
                JsonValue::Array(cells.values().map(ToJson::to_json).collect()),
            ),
        ]);
        rasa_bench::write_verified_json(path, &document)?;
        println!("results written to {path} (round-trip verified)");
    }

    if let Some(path) = &options.bench_path {
        let section = JsonValue::Object(vec![
            (
                "throughput_requests_per_second".into(),
                JsonValue::number_from_f64(throughput),
            ),
            (
                "p50_seconds".into(),
                JsonValue::number_from_f64(latency.p50_seconds),
            ),
            (
                "p99_seconds".into(),
                JsonValue::number_from_f64(latency.p99_seconds),
            ),
            (
                "p999_seconds".into(),
                JsonValue::number_from_f64(latency.p999_seconds),
            ),
            (
                "max_seconds".into(),
                JsonValue::number_from_f64(latency.max_seconds),
            ),
            (
                "mean_batch_size".into(),
                JsonValue::number_from_f64(serving.mean_batch_size()),
            ),
        ]);
        rasa_bench::update_bench_section(path, "serve_soak", section)?;
        println!("perf document section 'serve_soak' written to {path}");
    }
    Ok(())
}
