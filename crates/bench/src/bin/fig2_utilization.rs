//! Regenerates Fig. 2: PE utilization vs TM for several array sizes.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env_or_usage("fig2_utilization").suite()?;
    let result = suite.fig2_utilization();
    println!("{result}");
    Ok(())
}
