//! Runs the full paper evaluation (the EXPERIMENTS.md regeneration) as one
//! cached parallel sweep through the shared `ExperimentRunner`, then
//! cross-checks the results against a fresh serial run and reports the
//! wall-clock speedup. Pass `--no-serial-check` to skip the cross-check,
//! `--serial` to run everything single-threaded in the first place, and
//! `--json PATH` to persist the deterministic result metrics as a JSON
//! document (the file CI diffs against `golden/results.json`). The
//! document embeds the runner's memoized cells under `"cache"`, and
//! `--warm-start PATH` loads a previous document's cells before
//! evaluating, so repeat sweeps skip every unchanged simulation.
//!
//! Every run finishes with a **full-fidelity timing comparison** of the
//! event-driven core scheduler against the retained cycle-stepping
//! reference loop on one Table I layer (`--timing-layer NAME`, default
//! `ResNet50-2`, the largest layer of the evaluation): the two must
//! produce bit-identical statistics, and the measured wall-clock speedup
//! is printed. `--timing-only` skips the evaluation and runs just this
//! comparison — the CI smoke step for the `--full` path.

use rasa_sim::{DesignPoint, ExperimentSuite, JsonValue, Simulator, ToJson};
use rasa_workloads::WorkloadSuite;
use std::time::{Duration, Instant};

struct EvaluationResults {
    fig1: rasa_sim::Fig1Result,
    fig2: rasa_sim::Fig2Result,
    fig5: rasa_sim::Fig5Result,
    fig6: rasa_sim::Fig6Result,
    area_energy: rasa_sim::AreaEnergyResult,
    fig7: rasa_sim::Fig7Result,
}

fn run_evaluation(suite: &ExperimentSuite) -> Result<EvaluationResults, rasa_sim::SimError> {
    let fig5 = suite.fig5_runtime()?;
    Ok(EvaluationResults {
        fig1: suite.fig1_toy()?,
        fig2: suite.fig2_utilization(),
        fig6: suite.fig6_from(&fig5),
        area_energy: suite.area_energy_from(&fig5),
        fig7: suite.fig7_batch()?,
        fig5,
    })
}

fn seconds(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Runs one Table I layer at full fidelity (no matmul cap) four ways —
/// speculative streamed (fork/join segment scheduler), sequential streamed
/// (event-driven core fed by the bounded-channel producer), materialized
/// event-driven, and the cycle-stepping reference — asserts the
/// architectural statistics are bit-identical across all of them (with a
/// byte-identical JSON cross-check for the CI parity step), and reports the
/// measured wall-clock speedups, segment counts, peak resident
/// instructions and speculation commit/replay rates. Returns the per-design
/// timing rows for the machine-readable perf document.
fn timing_comparison(
    layer_name: &str,
    options: &rasa_bench::BinOptions,
) -> Result<Vec<JsonValue>, Box<dyn std::error::Error>> {
    let suite = WorkloadSuite::mlperf();
    let Some(layer) = suite.layer(layer_name) else {
        return Err(format!(
            "unknown --timing-layer '{layer_name}' (expected a Table I layer name)"
        )
        .into());
    };
    let stream = options.stream;
    let speculation = stream && options.speculation;
    let mut rows = Vec::new();
    println!("== Event-driven core timing (full fidelity, {layer_name}) ==");
    for design in [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()] {
        let name = design.name().to_string();
        let sim = Simulator::new(design)?
            .with_matmul_cap(None)?
            .with_segment_size(options.segment_size)?
            .with_spec_depth(options.spec_depth)?;

        let start = Instant::now();
        let materialized = sim.clone().with_streaming(false).run_layer(layer)?;
        let materialized_seconds = seconds(start.elapsed());
        let start = Instant::now();
        let reference = sim.run_layer_reference(layer)?;
        let reference_seconds = seconds(start.elapsed());
        if materialized.cpu != reference.cpu {
            return Err(format!(
                "event-driven core diverged from the reference on {layer_name} / {name}"
            )
            .into());
        }
        println!(
            "  {name:<14} {} rasa_mm, {} cycles: event-driven {:.3} s vs cycle-stepping {:.3} s = {:.2}x speedup",
            materialized.simulated_matmuls,
            materialized.core_cycles,
            materialized_seconds,
            reference_seconds,
            reference_seconds / materialized_seconds.max(1e-9),
        );
        println!(
            "  {:<14} {} completion events, {} cycles visited, {} skipped ({:.1}% of the timeline)",
            "",
            materialized.sched.completion_events,
            materialized.sched.visited_cycles,
            materialized.sched.skipped_cycles,
            materialized.sched.skip_rate() * 100.0,
        );

        let mut row = vec![
            ("design".to_string(), JsonValue::string(&name)),
            (
                "materialized_seconds".to_string(),
                JsonValue::number_from_f64(materialized_seconds),
            ),
            (
                "reference_seconds".to_string(),
                JsonValue::number_from_f64(reference_seconds),
            ),
        ];

        if !stream {
            rows.push(JsonValue::Object(row));
            continue;
        }
        // Streaming parity + overlap measurement: the sequential streamed
        // pipeline must reproduce the materialized run's architectural
        // *and* scheduler statistics bit for bit (byte-identical
        // serialized form), while generating the trace concurrently with —
        // and sharded ahead of — the simulation.
        let start = Instant::now();
        let streamed = sim.clone().with_speculation(false).run_layer(layer)?;
        let streamed_seconds = seconds(start.elapsed());
        if streamed.cpu != materialized.cpu || streamed.sched != materialized.sched {
            return Err(format!(
                "streamed pipeline diverged from the materialized path on {layer_name} / {name}"
            )
            .into());
        }
        let streamed_json = streamed.cpu.to_json().to_string_pretty();
        let materialized_json = materialized.cpu.to_json().to_string_pretty();
        if streamed_json != materialized_json {
            return Err(format!(
                "streamed CpuStats JSON drifted from the materialized document on {layer_name} / {name}"
            )
            .into());
        }
        println!(
            "  {:<14} streamed {:.3} s vs materialized {:.3} s = {:.2}x overlap speedup",
            "",
            streamed_seconds,
            materialized_seconds,
            materialized_seconds / streamed_seconds.max(1e-9),
        );
        println!(
            "  {:<14} {} segments, peak resident {} of {} instructions ({:.2}% of the materialized trace); CpuStats JSON byte-identical",
            "",
            streamed.pipeline.segments,
            streamed.pipeline.peak_resident_instructions,
            streamed.pipeline.fed_instructions,
            streamed.pipeline.residency() * 100.0,
        );
        row.push((
            "streamed_seconds".to_string(),
            JsonValue::number_from_f64(streamed_seconds),
        ));

        if !speculation {
            rows.push(JsonValue::Object(row));
            continue;
        }
        // Speculation leg: the fork/join segment scheduler must reproduce
        // the sequential streamed statistics bit for bit (including the
        // byte-identical CpuStats JSON), and the wall-clock gain over the
        // sequential streamed run is the tentpole's measured speedup.
        let start = Instant::now();
        let speculative = sim.run_layer(layer)?;
        let speculative_seconds = seconds(start.elapsed());
        if speculative.cpu != streamed.cpu || speculative.sched != streamed.sched {
            return Err(format!(
                "speculative scheduler diverged from the sequential streamed path on {layer_name} / {name}"
            )
            .into());
        }
        if speculative.cpu.to_json().to_string_pretty() != streamed_json {
            return Err(format!(
                "speculative CpuStats JSON drifted from the sequential document on {layer_name} / {name}"
            )
            .into());
        }
        let spec_speedup = streamed_seconds / speculative_seconds.max(1e-9);
        println!(
            "  {:<14} speculative {:.3} s vs sequential streamed {:.3} s = {:.2}x fork/join speedup",
            "", speculative_seconds, streamed_seconds, spec_speedup,
        );
        println!(
            "  {:<14} {} speculative segments: {} committed, {} replayed ({:.1}% commit rate)",
            "",
            speculative.pipeline.spec_forks,
            speculative.pipeline.spec_commits,
            speculative.pipeline.spec_replays,
            speculative.pipeline.spec_commit_rate() * 100.0,
        );
        row.extend([
            (
                "speculative_seconds".to_string(),
                JsonValue::number_from_f64(speculative_seconds),
            ),
            (
                "speculative_speedup".to_string(),
                JsonValue::number_from_f64(spec_speedup),
            ),
            (
                "spec_forks".to_string(),
                JsonValue::number_from_u64(speculative.pipeline.spec_forks),
            ),
            (
                "spec_commits".to_string(),
                JsonValue::number_from_u64(speculative.pipeline.spec_commits),
            ),
            (
                "spec_replays".to_string(),
                JsonValue::number_from_u64(speculative.pipeline.spec_replays),
            ),
            (
                "spec_commit_rate".to_string(),
                JsonValue::number_from_f64(speculative.pipeline.spec_commit_rate()),
            ),
        ]);
        rows.push(JsonValue::Object(row));
    }
    if speculation {
        println!(
            "  statistics bit-identical across all cores, pipelines and the fork/join scheduler"
        );
    } else if stream {
        println!("  statistics bit-identical across all cores and pipelines (speculation off)");
    } else {
        println!("  statistics bit-identical across both cores (streamed pipeline not compared: --no-stream)");
    }
    Ok(rows)
}

/// The deterministic slice of the evaluation, as a JSON document: every
/// metric here depends only on the simulated configuration (wall-clock
/// times and cache hit counts — which vary with thread scheduling — are
/// deliberately excluded, so CI can diff this file across commits).
fn results_document(
    options: &rasa_bench::BinOptions,
    results: &EvaluationResults,
    cache_cells: JsonValue,
) -> JsonValue {
    let fig5_rows: Vec<JsonValue> = results
        .fig5
        .rows
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                ("workload".into(), JsonValue::string(&row.workload)),
                (
                    "normalized".into(),
                    JsonValue::Array(
                        row.normalized
                            .iter()
                            .map(|(design, value)| {
                                JsonValue::Array(vec![
                                    JsonValue::string(design),
                                    JsonValue::number_from_f64(*value),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let fig6_rows: Vec<JsonValue> = results
        .fig6
        .rows
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                ("design".into(), JsonValue::string(&row.design)),
                ("speedup".into(), JsonValue::number_from_f64(row.speedup)),
                (
                    "area_ratio".into(),
                    JsonValue::number_from_f64(row.area_ratio),
                ),
                (
                    "performance_per_area".into(),
                    JsonValue::number_from_f64(row.performance_per_area),
                ),
            ])
        })
        .collect();
    let area_energy_rows: Vec<JsonValue> = results
        .area_energy
        .rows
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                ("design".into(), JsonValue::string(&row.design)),
                ("area_mm2".into(), JsonValue::number_from_f64(row.area_mm2)),
                (
                    "area_overhead".into(),
                    JsonValue::number_from_f64(row.area_overhead),
                ),
                (
                    "energy_efficiency".into(),
                    JsonValue::number_from_f64(row.energy_efficiency),
                ),
            ])
        })
        .collect();
    let fig7_rows: Vec<JsonValue> = results
        .fig7
        .rows
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                ("layer".into(), JsonValue::string(&row.layer)),
                ("batch".into(), JsonValue::number_from_usize(row.batch)),
                (
                    "normalized_runtime".into(),
                    JsonValue::number_from_f64(row.normalized_runtime),
                ),
            ])
        })
        .collect();
    // One flat summary row per (workload, design) cell of the Fig. 5 grid:
    // the raw cycle/area/energy numbers behind every derived figure.
    let summaries: Vec<JsonValue> = results
        .fig5
        .runs
        .iter()
        .flat_map(|run| run.reports.iter())
        .map(|report| report.summary().to_json())
        .collect();
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::string("rasa-run-all/1")),
        (
            "options".into(),
            JsonValue::Object(vec![
                (
                    "matmul_cap".into(),
                    options
                        .matmul_cap
                        .map_or(JsonValue::Null, JsonValue::number_from_usize),
                ),
                (
                    "fig7_max_batch".into(),
                    JsonValue::number_from_usize(options.fig7_max_batch),
                ),
                ("stream".into(), JsonValue::Bool(options.stream)),
                (
                    "segment_size".into(),
                    JsonValue::number_from_usize(options.segment_size),
                ),
                ("speculation".into(), JsonValue::Bool(options.speculation)),
                (
                    "spec_depth".into(),
                    JsonValue::number_from_usize(options.spec_depth),
                ),
                (
                    "layers".into(),
                    options
                        .layers
                        .as_deref()
                        .map_or(JsonValue::Null, JsonValue::string),
                ),
            ]),
        ),
        (
            "fig5".into(),
            JsonValue::Object(vec![
                (
                    "designs".into(),
                    JsonValue::Array(results.fig5.designs.iter().map(JsonValue::string).collect()),
                ),
                ("rows".into(), JsonValue::Array(fig5_rows)),
            ]),
        ),
        (
            "fig6".into(),
            JsonValue::Object(vec![("rows".into(), JsonValue::Array(fig6_rows))]),
        ),
        (
            "area_energy".into(),
            JsonValue::Object(vec![
                (
                    "baseline_area_mm2".into(),
                    JsonValue::number_from_f64(results.area_energy.baseline_area_mm2),
                ),
                (
                    "baseline_die_fraction".into(),
                    JsonValue::number_from_f64(results.area_energy.baseline_die_fraction),
                ),
                ("rows".into(), JsonValue::Array(area_energy_rows)),
            ]),
        ),
        (
            "fig7".into(),
            JsonValue::Object(vec![
                (
                    "asymptote".into(),
                    JsonValue::number_from_f64(results.fig7.asymptote),
                ),
                ("rows".into(), JsonValue::Array(fig7_rows)),
            ]),
        ),
        ("summaries".into(), JsonValue::Array(summaries)),
        // Every memoized cell, keyed by its semantic identity: the input
        // of `--warm-start` on a later run.
        (
            "cache".into(),
            JsonValue::Object(vec![("cells".into(), cache_cells)]),
        ),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env_or_usage("run_all");
    if options.timing_only {
        let timing_rows = timing_comparison(&options.timing_layer, &options)?;
        if let Some(path) = &options.bench_path {
            let section = JsonValue::Object(vec![("timing".into(), JsonValue::Array(timing_rows))]);
            rasa_bench::update_bench_section(path, "run_all", section)?;
            println!("perf document section 'run_all' written to {path}");
        }
        return Ok(());
    }
    let suite = options.suite()?;

    if let Some(path) = &options.warm_start_path {
        let document = rasa_bench::read_json(path)?;
        let loaded = suite.runner().warm_start_json(&document)?;
        println!("warm start: {loaded} cells loaded from {path}");
    }

    let start = Instant::now();
    let results = run_evaluation(&suite)?;
    let elapsed = start.elapsed();

    println!("== Fig. 1 ==");
    println!("{}", results.fig1);
    println!("== Fig. 2 ==");
    println!("{}", results.fig2);
    println!("== Fig. 5 ==");
    println!("{}", results.fig5);
    println!("== Fig. 6 ==");
    println!("{}", results.fig6);
    println!("== Area / energy ==");
    println!("{}", results.area_energy);
    println!("== Fig. 7 ==");
    println!("{}", results.fig7);

    let stats = suite.runner().cache_stats();
    let mode = if suite.runner().is_parallel() {
        format!("parallel on {} threads", rayon::current_num_threads())
    } else {
        "serial".to_string()
    };
    println!("== Execution ==");
    println!(
        "full evaluation in {:.2} s ({mode}); {} cells simulated, {} served from cache ({:.0}% hit rate, {} evictions, {}/{} resident)",
        seconds(elapsed),
        stats.misses,
        stats.hits,
        stats.hit_rate() * 100.0,
        stats.evictions,
        stats.entries,
        stats.capacity,
    );
    // Aggregate trace-pipeline footprint across the Fig. 5 grid cells.
    let reports = || results.fig5.runs.iter().flat_map(|run| run.reports.iter());
    let segments: u64 = reports().map(|r| r.pipeline.segments).sum();
    let peak = reports()
        .map(|r| r.pipeline.peak_resident_instructions)
        .max()
        .unwrap_or(0);
    let fed = reports()
        .map(|r| r.pipeline.fed_instructions)
        .max()
        .unwrap_or(0);
    println!(
        "trace pipeline: {} across {} cells ({} segments of ~{} instructions, peak resident {} of a largest trace of {})",
        if suite.runner().is_streaming() {
            "streamed"
        } else {
            "materialized"
        },
        results.fig5.runs.len() * results.fig5.designs.len(),
        segments,
        suite.runner().segment_size(),
        peak,
        fed,
    );

    if let Some(path) = &options.json_path {
        let document = results_document(&options, &results, suite.runner().dump_cache_json());
        rasa_bench::write_verified_json(path, &document)?;
        println!("results written to {path} (round-trip verified)");
    }

    let timing_rows = if options.no_timing {
        Vec::new()
    } else {
        timing_comparison(&options.timing_layer, &options)?
    };

    if let Some(path) = &options.bench_path {
        // Wall-clock throughputs and speculation rates for the perf
        // trajectory. Unlike the results document these numbers are
        // machine-dependent; `bench_check` compares them within a noise
        // band only.
        let visited: u64 = reports().map(|r| r.sched.visited_cycles).sum();
        let skipped: u64 = reports().map(|r| r.sched.skipped_cycles).sum();
        let instructions: u64 = reports().map(|r| r.pipeline.fed_instructions).sum();
        let timeline = visited + skipped;
        let section = JsonValue::Object(vec![
            (
                "elapsed_seconds".into(),
                JsonValue::number_from_f64(seconds(elapsed)),
            ),
            (
                "cells_simulated".into(),
                JsonValue::number_from_u64(stats.misses),
            ),
            (
                "cells_per_second".into(),
                JsonValue::number_from_f64(stats.misses as f64 / seconds(elapsed).max(1e-9)),
            ),
            (
                "instructions_per_second".into(),
                JsonValue::number_from_f64(instructions as f64 / seconds(elapsed).max(1e-9)),
            ),
            (
                "visited_cycle_skip_rate".into(),
                JsonValue::number_from_f64(if timeline == 0 {
                    0.0
                } else {
                    skipped as f64 / timeline as f64
                }),
            ),
            ("timing".into(), JsonValue::Array(timing_rows)),
        ]);
        rasa_bench::update_bench_section(path, "run_all", section)?;
        println!("perf document section 'run_all' written to {path}");
    }

    if options.skip_serial_check || !suite.runner().is_parallel() {
        return Ok(());
    }

    // Fresh serial suite (empty cache): same matrix, one thread. The
    // simulation is deterministic, so the results must be bit-identical.
    let serial_suite = ExperimentSuite::builder()
        .with_matmul_cap(options.matmul_cap)
        .with_fig7_max_batch(options.fig7_max_batch)
        .with_streaming(options.stream)
        .with_segment_size(options.segment_size)
        .with_speculation(options.speculation)
        .with_spec_depth(options.spec_depth)
        .with_layer_filter(options.layers)
        .serial()
        .build()?;
    let serial_start = Instant::now();
    let serial_results = run_evaluation(&serial_suite)?;
    let serial_elapsed = serial_start.elapsed();

    assert_eq!(results.fig5, serial_results.fig5, "fig5 parallel != serial");
    assert_eq!(results.fig6, serial_results.fig6, "fig6 parallel != serial");
    assert_eq!(results.fig7, serial_results.fig7, "fig7 parallel != serial");
    assert_eq!(
        results.area_energy, serial_results.area_energy,
        "area/energy parallel != serial"
    );

    println!(
        "serial cross-check in {:.2} s: results identical; parallel speedup {:.2}x",
        seconds(serial_elapsed),
        seconds(serial_elapsed) / seconds(elapsed).max(1e-9)
    );
    Ok(())
}
