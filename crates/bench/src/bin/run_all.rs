//! Runs the full paper evaluation (the EXPERIMENTS.md regeneration) as one
//! cached parallel sweep through the shared `ExperimentRunner`, then
//! cross-checks the results against a fresh serial run and reports the
//! wall-clock speedup. Pass `--no-serial-check` to skip the cross-check,
//! `--serial` to run everything single-threaded in the first place.

use rasa_sim::ExperimentSuite;
use std::time::{Duration, Instant};

struct EvaluationResults {
    fig1: rasa_sim::Fig1Result,
    fig2: rasa_sim::Fig2Result,
    fig5: rasa_sim::Fig5Result,
    fig6: rasa_sim::Fig6Result,
    area_energy: rasa_sim::AreaEnergyResult,
    fig7: rasa_sim::Fig7Result,
}

fn run_evaluation(suite: &ExperimentSuite) -> Result<EvaluationResults, rasa_sim::SimError> {
    let fig5 = suite.fig5_runtime()?;
    Ok(EvaluationResults {
        fig1: suite.fig1_toy()?,
        fig2: suite.fig2_utilization(),
        fig6: suite.fig6_from(&fig5),
        area_energy: suite.area_energy_from(&fig5),
        fig7: suite.fig7_batch()?,
        fig5,
    })
}

fn seconds(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env();
    let suite = options.suite()?;

    let start = Instant::now();
    let results = run_evaluation(&suite)?;
    let elapsed = start.elapsed();

    println!("== Fig. 1 ==");
    println!("{}", results.fig1);
    println!("== Fig. 2 ==");
    println!("{}", results.fig2);
    println!("== Fig. 5 ==");
    println!("{}", results.fig5);
    println!("== Fig. 6 ==");
    println!("{}", results.fig6);
    println!("== Area / energy ==");
    println!("{}", results.area_energy);
    println!("== Fig. 7 ==");
    println!("{}", results.fig7);

    let stats = suite.runner().cache_stats();
    let mode = if suite.runner().is_parallel() {
        format!("parallel on {} threads", rayon::current_num_threads())
    } else {
        "serial".to_string()
    };
    println!("== Execution ==");
    println!(
        "full evaluation in {:.2} s ({mode}); {} cells simulated, {} served from cache ({:.0}% hit rate)",
        seconds(elapsed),
        stats.misses,
        stats.hits,
        stats.hit_rate() * 100.0
    );

    if options.skip_serial_check || !suite.runner().is_parallel() {
        return Ok(());
    }

    // Fresh serial suite (empty cache): same matrix, one thread. The
    // simulation is deterministic, so the results must be bit-identical.
    let serial_suite = ExperimentSuite::builder()
        .with_matmul_cap(options.matmul_cap)
        .with_fig7_max_batch(options.fig7_max_batch)
        .serial()
        .build()?;
    let serial_start = Instant::now();
    let serial_results = run_evaluation(&serial_suite)?;
    let serial_elapsed = serial_start.elapsed();

    assert_eq!(results.fig5, serial_results.fig5, "fig5 parallel != serial");
    assert_eq!(results.fig6, serial_results.fig6, "fig6 parallel != serial");
    assert_eq!(results.fig7, serial_results.fig7, "fig7 parallel != serial");
    assert_eq!(
        results.area_energy, serial_results.area_energy,
        "area/energy parallel != serial"
    );

    println!(
        "serial cross-check in {:.2} s: results identical; parallel speedup {:.2}x",
        seconds(serial_elapsed),
        seconds(serial_elapsed) / seconds(elapsed).max(1e-9)
    );
    Ok(())
}
