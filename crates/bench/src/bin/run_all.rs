//! Runs every experiment in sequence (the full EXPERIMENTS.md regeneration).

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env();
    let suite = options.suite();

    println!("== Fig. 1 ==");
    println!("{}", suite.fig1_toy()?);
    println!("== Fig. 2 ==");
    println!("{}", suite.fig2_utilization());
    println!("== Fig. 5 ==");
    let fig5 = suite.fig5_runtime()?;
    println!("{fig5}");
    println!("== Fig. 6 ==");
    println!("{}", suite.fig6_from(&fig5));
    println!("== Area / energy ==");
    println!("{}", suite.area_energy_from(&fig5));
    println!("== Fig. 7 ==");
    println!("{}", suite.fig7_batch()?);
    Ok(())
}
