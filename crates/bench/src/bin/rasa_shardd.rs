//! `rasa-shardd` — one TCP shard worker of the distributed serving tier.
//!
//! Wraps a [`rasa_sim::serve::GemmServer`] (all eight paper designs) in a
//! [`rasa_sim::net::ShardServer`] and runs until stdin reaches EOF, so a
//! parent process that spawned it with a piped stdin stops it by closing
//! the pipe (or by dying — the pipe closes either way, so no orphaned
//! worker outlives the harness).
//!
//! The first stdout line is `LISTENING <addr>` with the resolved address
//! (bind with `--listen 127.0.0.1:0` to let the OS pick a port). The
//! `serve_soak --distributed` harness scrapes this line; nothing else is
//! printed to stdout. A closing health summary goes to stderr.
//!
//! Run `rasa-shardd --help` for the flag table; the wire format is
//! specified in `docs/WIRE_PROTOCOL.md`.

use rasa_sim::net::{ShardConfig, ShardServer};
use rasa_sim::serve::ServeConfig;
use rasa_sim::DesignPoint;
use std::io::{Read, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = rasa_bench::BinOptions::from_env_or_usage("rasa-shardd");
    let config = ShardConfig {
        shard_id: options.shard_id,
        serve: ServeConfig {
            workers_per_design: options.workers_per_design,
            max_batch: options.serve_max_batch,
            cache_capacity: options.cache_capacity,
            matmul_cap: options.matmul_cap,
            queue_capacity: options.queue_capacity,
            admission: options.admission,
        },
    };
    let designs = DesignPoint::paper_designs();
    let shard = ShardServer::bind(&options.listen, config, &designs)?;

    println!("LISTENING {}", shard.local_addr());
    std::io::stdout().flush()?;

    // Serve until the parent closes our stdin (or exits, which closes it
    // too). The read blocks without burning CPU.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    let health = shard.health();
    eprintln!(
        "rasa-shardd shard={} served={} completed={} coalesced={} cache hits={} misses={} evictions={}",
        health.shard,
        health.served,
        health.serve.completed,
        health.serve.coalesced,
        health.cache.hits,
        health.cache.misses,
        health.cache.evictions,
    );
    shard.shutdown();
    Ok(())
}
