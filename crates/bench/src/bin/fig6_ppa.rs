//! Regenerates Fig. 6: performance per area of the RASA-Data designs.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env_or_usage("fig6_ppa").suite()?;
    let fig5 = suite.fig5_runtime()?;
    let fig6 = suite.fig6_from(&fig5);
    println!("{fig6}");
    println!("(The paper's observation: because the area overheads are only a few");
    println!(" percent, performance per area follows the same trend as runtime.)");
    Ok(())
}
