//! Regenerates Fig. 1: the 2×2 weight-stationary walkthrough.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rasa_bench::BinOptions::from_env_or_usage("fig1_toy").suite()?;
    let result = suite.fig1_toy()?;
    println!("{result}");
    println!(
        "{}",
        rasa_bench::compare_line(
            "avg utilization",
            result.average_utilization,
            8.0 / 28.0,
            ""
        )
    );
    Ok(())
}
