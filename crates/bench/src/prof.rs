//! Profiling facade for the bench binaries.
//!
//! Re-exports the scoped-timer/counter registry from [`rasa_sim::prof`]
//! (the instrumented hot paths live in `rasa-sim`) and adds the one piece
//! only a binary crate can contribute: a **counting global allocator**.
//! Every bench binary links this crate, so every bench process counts heap
//! allocations for free — [`allocations`] reads the process-wide total and
//! a bench phase reports `allocs_per_request` as a before/after delta
//! divided by the requests served. The counter is a single relaxed atomic
//! increment per allocation, cheap enough to leave on permanently.

pub use rasa_sim::prof::*;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The system allocator wrapped with an allocation counter. Installed as
/// the global allocator of every bench binary (deallocations are not
/// counted: the metric of interest is allocation pressure on the hot
/// path, not live bytes).
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a relaxed atomic and cannot fail or reenter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed by this process so far. Subtract two
/// readings to attribute allocations to a phase (single-threaded phases
/// attribute exactly; concurrent phases attribute the process-wide total,
/// which is the honest number for a serving soak anyway).
#[must_use]
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_counter_advances() {
        let before = allocations();
        let grown: Vec<u64> = (0..1024).collect();
        assert!(grown.len() == 1024);
        let after = allocations();
        assert!(
            after > before,
            "allocating a Vec must advance the counter ({before} -> {after})"
        );
    }
}
