//! # rasa-workloads — MLPerf-derived workloads of the RASA evaluation
//!
//! The paper evaluates nine layers drawn from three MLPerf workloads
//! (Table I): three ResNet50 convolution layers, three DLRM fully-connected
//! layers and three BERT fully-connected layers, all run for inference.
//! This crate encodes those layer dimensions, converts them to the GEMMs the
//! matrix engine actually executes, and provides the batch-size sweeps used
//! by the Fig. 7 sensitivity study.
//!
//! ```
//! use rasa_workloads::{WorkloadSuite, LayerSpec};
//!
//! let suite = WorkloadSuite::mlperf();
//! assert_eq!(suite.layers().len(), 9);
//! let dlrm1 = suite.layer("DLRM-1").expect("Table I layer");
//! assert_eq!(dlrm1.gemm_shape().k, 1024);
//! ```

#![deny(missing_docs)]

mod layer;
mod mlperf;
mod sweep;
mod traffic;

pub use layer::{LayerKind, LayerSpec};
pub use mlperf::{bert_layers, dlrm_layers, resnet50_layers, table1_layers, MlperfWorkload};
pub use sweep::{batch_sweep, fig7_batch_sizes, BatchMatrix};
pub use traffic::TrafficGenerator;

/// The full workload suite used in the paper's evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSuite {
    layers: Vec<LayerSpec>,
}

impl WorkloadSuite {
    /// The nine Table I layers.
    #[must_use]
    pub fn mlperf() -> Self {
        WorkloadSuite {
            layers: table1_layers(),
        }
    }

    /// Builds a suite from an explicit layer list.
    #[must_use]
    pub fn from_layers(layers: Vec<LayerSpec>) -> Self {
        WorkloadSuite { layers }
    }

    /// All layers in evaluation order.
    #[must_use]
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Looks a layer up by its Table I name (e.g. `"BERT-2"`).
    #[must_use]
    pub fn layer(&self, name: &str) -> Option<&LayerSpec> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// Total multiply-accumulate count across the suite.
    #[must_use]
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|l| l.gemm_shape().macs()).sum()
    }
}

impl Default for WorkloadSuite {
    fn default() -> Self {
        WorkloadSuite::mlperf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_all_table1_layers() {
        let suite = WorkloadSuite::mlperf();
        assert_eq!(suite.layers().len(), 9);
        for name in [
            "ResNet50-1",
            "ResNet50-2",
            "ResNet50-3",
            "DLRM-1",
            "DLRM-2",
            "DLRM-3",
            "BERT-1",
            "BERT-2",
            "BERT-3",
        ] {
            assert!(suite.layer(name).is_some(), "missing {name}");
        }
        assert!(suite.layer("VGG-1").is_none());
        assert!(suite.total_macs() > 0);
    }

    #[test]
    fn custom_suite() {
        let suite = WorkloadSuite::from_layers(dlrm_layers());
        assert_eq!(suite.layers().len(), 3);
        assert_eq!(WorkloadSuite::default(), WorkloadSuite::mlperf());
    }
}
