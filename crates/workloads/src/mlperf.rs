//! The MLPerf-derived layer definitions of Table I.

use crate::LayerSpec;
use rasa_numeric::ConvShape;

/// A named group of layers belonging to one MLPerf model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlperfWorkload {
    /// Model name (`"ResNet50"`, `"DLRM"` or `"BERT"`).
    pub name: &'static str,
    /// The task the model represents in MLPerf (as described in §V).
    pub task: &'static str,
    /// The three evaluated layers of the model.
    pub layers: Vec<LayerSpec>,
}

/// The three ResNet50 convolution layers of Table I.
///
/// The 1×1 convolutions use no padding; the 3×3 convolution uses unit
/// padding so the spatial dimensions are preserved (the standard ResNet50
/// configuration, and the one that makes the paper's example lowering of
/// ResNet50's first evaluated layer come out to M = N·X·Y).
#[must_use]
pub fn resnet50_layers() -> Vec<LayerSpec> {
    vec![
        LayerSpec::conv("ResNet50-1", ConvShape::new(32, 64, 56, 56, 64, 1, 1, 1, 0)),
        LayerSpec::conv("ResNet50-2", ConvShape::new(32, 64, 56, 56, 64, 3, 3, 1, 1)),
        LayerSpec::conv(
            "ResNet50-3",
            ConvShape::new(32, 1024, 14, 14, 512, 1, 1, 1, 0),
        ),
    ]
}

/// The three DLRM fully-connected layers of Table I.
#[must_use]
pub fn dlrm_layers() -> Vec<LayerSpec> {
    vec![
        LayerSpec::fc("DLRM-1", 512, 1024, 1024),
        LayerSpec::fc("DLRM-2", 512, 1024, 64),
        LayerSpec::fc("DLRM-3", 512, 2048, 2048),
    ]
}

/// The three BERT fully-connected layers of Table I.
#[must_use]
pub fn bert_layers() -> Vec<LayerSpec> {
    vec![
        LayerSpec::fc("BERT-1", 256, 768, 768),
        LayerSpec::fc("BERT-2", 256, 3072, 768),
        LayerSpec::fc("BERT-3", 256, 768, 3072),
    ]
}

/// All nine Table I layers in evaluation order.
#[must_use]
pub fn table1_layers() -> Vec<LayerSpec> {
    let mut layers = resnet50_layers();
    layers.extend(dlrm_layers());
    layers.extend(bert_layers());
    layers
}

impl MlperfWorkload {
    /// The three MLPerf workloads of the evaluation.
    #[must_use]
    pub fn all() -> Vec<MlperfWorkload> {
        vec![
            MlperfWorkload {
                name: "ResNet50",
                task: "computer vision",
                layers: resnet50_layers(),
            },
            MlperfWorkload {
                name: "DLRM",
                task: "recommendation",
                layers: dlrm_layers(),
            },
            MlperfWorkload {
                name: "BERT",
                task: "natural language processing",
                layers: bert_layers(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_numeric::GemmShape;

    #[test]
    fn table1_dimensions_match_the_paper() {
        let layers = table1_layers();
        assert_eq!(layers.len(), 9);
        // Spot-check the lowered GEMM dimensions.
        assert_eq!(
            layers[0].gemm_shape(),
            GemmShape::new(32 * 56 * 56, 64, 64),
            "ResNet50-1"
        );
        assert_eq!(
            layers[1].gemm_shape(),
            GemmShape::new(32 * 56 * 56, 576, 64),
            "ResNet50-2"
        );
        assert_eq!(
            layers[2].gemm_shape(),
            GemmShape::new(32 * 14 * 14, 1024, 512),
            "ResNet50-3"
        );
        assert_eq!(layers[3].gemm_shape(), GemmShape::new(512, 1024, 1024));
        assert_eq!(layers[4].gemm_shape(), GemmShape::new(512, 1024, 64));
        assert_eq!(layers[5].gemm_shape(), GemmShape::new(512, 2048, 2048));
        assert_eq!(layers[6].gemm_shape(), GemmShape::new(256, 768, 768));
        assert_eq!(layers[7].gemm_shape(), GemmShape::new(256, 3072, 768));
        assert_eq!(layers[8].gemm_shape(), GemmShape::new(256, 768, 3072));
    }

    #[test]
    fn workload_grouping() {
        let all = MlperfWorkload::all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].name, "ResNet50");
        assert_eq!(all[1].task, "recommendation");
        assert!(all.iter().all(|w| w.layers.len() == 3));
    }

    #[test]
    fn every_conv_layer_validates() {
        for layer in resnet50_layers() {
            if let crate::LayerKind::Conv(c) = layer.kind() {
                assert!(c.validate().is_ok(), "{layer}");
            } else {
                panic!("resnet layers must be convolutions");
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let layers = table1_layers();
        let mut names: Vec<_> = layers.iter().map(LayerSpec::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
