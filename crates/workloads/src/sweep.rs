//! Batch-size sweeps for the Fig. 7 sensitivity study.

use crate::LayerSpec;

/// The batch sizes evaluated in Fig. 7: powers of two from 1 to 1024.
#[must_use]
pub fn fig7_batch_sizes() -> Vec<usize> {
    (0..=10).map(|p| 1usize << p).collect()
}

/// Produces one re-batched copy of `layer` per entry of `batch_sizes`.
///
/// ```
/// use rasa_workloads::{batch_sweep, LayerSpec};
/// let layer = LayerSpec::fc("DLRM-1", 512, 1024, 1024);
/// let sweep = batch_sweep(&layer, &[1, 16, 256]);
/// assert_eq!(sweep.len(), 3);
/// assert_eq!(sweep[1].gemm_shape().m, 16);
/// ```
#[must_use]
pub fn batch_sweep(layer: &LayerSpec, batch_sizes: &[usize]) -> Vec<LayerSpec> {
    batch_sizes.iter().map(|&b| layer.with_batch(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_sizes_are_powers_of_two_up_to_1024() {
        let sizes = fig7_batch_sizes();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&1024));
        assert_eq!(sizes.len(), 11);
        for pair in sizes.windows(2) {
            assert_eq!(pair[1], pair[0] * 2);
        }
    }

    #[test]
    fn sweep_preserves_everything_but_batch() {
        let layer = LayerSpec::fc("BERT-1", 256, 768, 768);
        let sweep = batch_sweep(&layer, &fig7_batch_sizes());
        assert_eq!(sweep.len(), 11);
        for (size, l) in fig7_batch_sizes().into_iter().zip(&sweep) {
            assert_eq!(l.gemm_shape().m, size);
            assert_eq!(l.gemm_shape().k, 768);
            assert_eq!(l.gemm_shape().n, 768);
            assert_eq!(l.family(), "BERT");
        }
    }
}
