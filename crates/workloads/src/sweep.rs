//! Batch-size sweeps for the Fig. 7 sensitivity study.

use crate::LayerSpec;

/// The batch sizes evaluated in Fig. 7: powers of two from 1 to 1024.
#[must_use]
pub fn fig7_batch_sizes() -> Vec<usize> {
    (0..=10).map(|p| 1usize << p).collect()
}

/// Produces one re-batched copy of `layer` per entry of `batch_sizes`.
///
/// ```
/// use rasa_workloads::{batch_sweep, LayerSpec};
/// let layer = LayerSpec::fc("DLRM-1", 512, 1024, 1024);
/// let sweep = batch_sweep(&layer, &[1, 16, 256]);
/// assert_eq!(sweep.len(), 3);
/// assert_eq!(sweep[1].gemm_shape().m, 16);
/// ```
#[must_use]
pub fn batch_sweep(layer: &LayerSpec, batch_sizes: &[usize]) -> Vec<LayerSpec> {
    batch_sizes.iter().map(|&b| layer.with_batch(b)).collect()
}

/// A lazy iterator over the (layer × batch size) matrix, layer-major: every
/// batch size of the first layer, then every batch size of the second, …
///
/// This is the workload half of an experiment matrix — an
/// `ExperimentRunner` crosses its output with a design list. Implements
/// [`ExactSizeIterator`], so runners can pre-size job vectors.
///
/// ```
/// use rasa_workloads::{BatchMatrix, LayerSpec};
/// let layers = [
///     LayerSpec::fc("DLRM-1", 512, 1024, 1024),
///     LayerSpec::fc("BERT-1", 256, 768, 768),
/// ];
/// let matrix: Vec<_> = BatchMatrix::new(&layers, &[1, 16]).collect();
/// assert_eq!(matrix.len(), 4);
/// assert_eq!(matrix[0].gemm_shape().m, 1);
/// assert_eq!(matrix[3].base_name(), "BERT-1");
/// assert_eq!(matrix[3].batch(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct BatchMatrix<'a> {
    layers: &'a [LayerSpec],
    batch_sizes: &'a [usize],
    next: usize,
}

impl<'a> BatchMatrix<'a> {
    /// Builds the matrix iterator over `layers × batch_sizes`.
    #[must_use]
    pub fn new(layers: &'a [LayerSpec], batch_sizes: &'a [usize]) -> Self {
        BatchMatrix {
            layers,
            batch_sizes,
            next: 0,
        }
    }
}

impl Iterator for BatchMatrix<'_> {
    type Item = LayerSpec;

    fn next(&mut self) -> Option<LayerSpec> {
        if self.batch_sizes.is_empty() {
            return None;
        }
        let layer = self.layers.get(self.next / self.batch_sizes.len())?;
        let batch = self.batch_sizes[self.next % self.batch_sizes.len()];
        self.next += 1;
        Some(layer.with_batch(batch))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = self.layers.len() * self.batch_sizes.len();
        let remaining = total.saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for BatchMatrix<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_sizes_are_powers_of_two_up_to_1024() {
        let sizes = fig7_batch_sizes();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&1024));
        assert_eq!(sizes.len(), 11);
        for pair in sizes.windows(2) {
            assert_eq!(pair[1], pair[0] * 2);
        }
    }

    #[test]
    fn batch_matrix_iterates_layer_major_and_knows_its_length() {
        let layers = [
            LayerSpec::fc("DLRM-1", 512, 1024, 1024),
            LayerSpec::fc("BERT-1", 256, 768, 768),
        ];
        let sizes = [1usize, 8, 64];
        let matrix = BatchMatrix::new(&layers, &sizes);
        assert_eq!(matrix.len(), 6);
        let items: Vec<_> = matrix.collect();
        assert_eq!(items.len(), 6);
        for (i, item) in items.iter().enumerate() {
            let layer = &layers[i / sizes.len()];
            assert_eq!(item.base_name(), layer.name());
            assert_eq!(item.gemm_shape().m, sizes[i % sizes.len()]);
            assert_eq!(item.gemm_shape().k, layer.gemm_shape().k);
        }

        let empty_sizes = BatchMatrix::new(&layers, &[]);
        assert_eq!(empty_sizes.count(), 0);
        let empty_layers = BatchMatrix::new(&[], &sizes);
        assert_eq!(empty_layers.count(), 0);
    }

    #[test]
    fn sweep_preserves_everything_but_batch() {
        let layer = LayerSpec::fc("BERT-1", 256, 768, 768);
        let sweep = batch_sweep(&layer, &fig7_batch_sizes());
        assert_eq!(sweep.len(), 11);
        for (size, l) in fig7_batch_sizes().into_iter().zip(&sweep) {
            assert_eq!(l.gemm_shape().m, size);
            assert_eq!(l.gemm_shape().k, 768);
            assert_eq!(l.gemm_shape().n, 768);
            assert_eq!(l.family(), "BERT");
        }
    }
}
