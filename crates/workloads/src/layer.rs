use rasa_numeric::{ConvShape, GemmShape};
use std::fmt;

/// The kind of DNN layer, carrying its native dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A 2-D convolution layer (lowered to GEMM via im2col).
    Conv(ConvShape),
    /// A fully-connected layer processing a batch of inputs.
    Fc {
        /// Batch size (N in the paper's FC notation).
        batch: usize,
        /// Input neurons (NIN).
        input_neurons: usize,
        /// Output neurons (NON).
        output_neurons: usize,
    },
}

/// A named DNN layer from the evaluation workloads.
///
/// ```
/// use rasa_workloads::LayerSpec;
/// let fc = LayerSpec::fc("DLRM-1", 512, 1024, 1024);
/// assert_eq!(fc.gemm_shape().m, 512);
/// assert_eq!(fc.with_batch(8).gemm_shape().m, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    name: String,
    kind: LayerKind,
}

impl LayerSpec {
    /// Creates a convolution layer.
    #[must_use]
    pub fn conv(name: impl Into<String>, shape: ConvShape) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv(shape),
        }
    }

    /// Creates a fully-connected layer.
    #[must_use]
    pub fn fc(
        name: impl Into<String>,
        batch: usize,
        input_neurons: usize,
        output_neurons: usize,
    ) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Fc {
                batch,
                input_neurons,
                output_neurons,
            },
        }
    }

    /// The layer's Table I name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer kind and native dimensions.
    #[must_use]
    pub const fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// The GEMM the layer lowers to: im2col dimensions for convolutions,
    /// `M = batch, K = NIN, N = NON` for fully-connected layers.
    #[must_use]
    pub fn gemm_shape(&self) -> GemmShape {
        match &self.kind {
            LayerKind::Conv(c) => c.to_gemm(),
            LayerKind::Fc {
                batch,
                input_neurons,
                output_neurons,
            } => GemmShape::new(*batch, *input_neurons, *output_neurons),
        }
    }

    /// Returns a copy of the layer with a different batch size (used by the
    /// Fig. 7 batch-size sensitivity sweep). For convolutions this replaces
    /// the batch dimension `N`; for FC layers it replaces `batch`.
    #[must_use]
    pub fn with_batch(&self, batch: usize) -> LayerSpec {
        let kind = match self.kind {
            LayerKind::Conv(mut c) => {
                c.n = batch;
                LayerKind::Conv(c)
            }
            LayerKind::Fc {
                input_neurons,
                output_neurons,
                ..
            } => LayerKind::Fc {
                batch,
                input_neurons,
                output_neurons,
            },
        };
        LayerSpec {
            name: format!("{}@b{batch}", self.base_name()),
            kind,
        }
    }

    /// The layer's batch size.
    #[must_use]
    pub const fn batch(&self) -> usize {
        match &self.kind {
            LayerKind::Conv(c) => c.n,
            LayerKind::Fc { batch, .. } => *batch,
        }
    }

    /// The workload family (`"ResNet50"`, `"DLRM"`, `"BERT"`, …) derived
    /// from the layer name.
    #[must_use]
    pub fn family(&self) -> &str {
        self.name.split('-').next().unwrap_or(&self.name)
    }

    /// The layer name without any `@b<batch>` re-batching suffix (the
    /// Table I name a swept layer derives from).
    #[must_use]
    pub fn base_name(&self) -> &str {
        self.name.split('@').next().unwrap_or(&self.name)
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LayerKind::Conv(c) => write!(f, "{} (conv {c} -> {})", self.name, c.to_gemm()),
            LayerKind::Fc {
                batch,
                input_neurons,
                output_neurons,
            } => write!(
                f,
                "{} (fc N={batch} NIN={input_neurons} NON={output_neurons})",
                self.name
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_layer_gemm_mapping() {
        let l = LayerSpec::fc("BERT-2", 256, 3072, 768);
        assert_eq!(l.gemm_shape(), GemmShape::new(256, 3072, 768));
        assert_eq!(l.batch(), 256);
        assert_eq!(l.family(), "BERT");
        assert!(l.to_string().contains("NIN=3072"));
    }

    #[test]
    fn conv_layer_gemm_mapping() {
        let conv = ConvShape::new(32, 64, 56, 56, 64, 3, 3, 1, 1);
        let l = LayerSpec::conv("ResNet50-2", conv);
        assert_eq!(l.gemm_shape(), GemmShape::new(32 * 56 * 56, 64 * 9, 64));
        assert_eq!(l.batch(), 32);
        assert_eq!(l.family(), "ResNet50");
    }

    #[test]
    fn with_batch_rescales_m() {
        let l = LayerSpec::fc("DLRM-1", 512, 1024, 1024);
        let small = l.with_batch(4);
        assert_eq!(small.gemm_shape().m, 4);
        assert_eq!(small.gemm_shape().k, 1024);
        assert_eq!(small.name(), "DLRM-1@b4");
        // Re-batching an already re-batched layer keeps a clean name.
        assert_eq!(small.with_batch(8).name(), "DLRM-1@b8");

        let conv = LayerSpec::conv("ResNet50-1", ConvShape::new(32, 64, 56, 56, 64, 1, 1, 1, 0));
        let conv2 = conv.with_batch(64);
        assert_eq!(conv2.gemm_shape().m, 64 * 56 * 56);
        assert_eq!(conv2.batch(), 64);
    }

    #[test]
    fn kind_accessor() {
        let l = LayerSpec::fc("DLRM-2", 512, 1024, 64);
        assert!(matches!(l.kind(), LayerKind::Fc { .. }));
    }
}
