//! Deterministic synthetic traffic for the serving layer.
//!
//! The serving soak harness needs a request stream that looks like
//! production inference traffic — a fixed universe of (layer × batch size)
//! shapes with a few hot shapes dominating — while staying exactly
//! reproducible across runs and machines. [`TrafficGenerator`] provides
//! that: the shape universe is the [`BatchMatrix`] cross product, the
//! popularity skew is a Zipf-like 1/rank weighting, and the sampler is the
//! workspace's seeded deterministic RNG.

use crate::{BatchMatrix, LayerSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An endless, seeded stream of [`LayerSpec`] requests drawn from a
/// (layer × batch size) universe with Zipf-like popularity skew.
///
/// Shapes are ranked in [`BatchMatrix`] order and weighted `1/(rank+1)`:
/// the first layer at the first batch size is the hottest request, the
/// tail shapes arrive rarely. This gives a serving cache a realistic churn
/// pattern — a resident hot set plus a long tail that forces evictions.
///
/// ```
/// use rasa_workloads::{LayerSpec, TrafficGenerator};
///
/// let layers = [LayerSpec::fc("DLRM-1", 512, 1024, 1024)];
/// let mut a = TrafficGenerator::new(&layers, &[1, 16], 7).unwrap();
/// let mut b = TrafficGenerator::new(&layers, &[1, 16], 7).unwrap();
/// let first: Vec<_> = a.by_ref().take(8).collect();
/// let second: Vec<_> = b.by_ref().take(8).collect();
/// assert_eq!(first, second, "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    shapes: Vec<LayerSpec>,
    /// Cumulative popularity weights, parallel to `shapes`.
    cumulative: Vec<f64>,
    rng: StdRng,
    emitted: u64,
}

impl TrafficGenerator {
    /// Builds a generator over `layers × batch_sizes`, seeded with `seed`.
    ///
    /// Returns `None` when the universe is empty (no layers or no batch
    /// sizes).
    #[must_use]
    pub fn new(layers: &[LayerSpec], batch_sizes: &[usize], seed: u64) -> Option<Self> {
        let shapes: Vec<LayerSpec> = BatchMatrix::new(layers, batch_sizes).collect();
        if shapes.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(shapes.len());
        let mut total = 0.0;
        for rank in 0..shapes.len() {
            total += 1.0 / (rank as f64 + 1.0);
            cumulative.push(total);
        }
        Some(TrafficGenerator {
            shapes,
            cumulative,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
        })
    }

    /// The distinct shapes this generator can emit, hottest first.
    #[must_use]
    pub fn shapes(&self) -> &[LayerSpec] {
        &self.shapes
    }

    /// How many requests have been drawn so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Draws the next request (never exhausts).
    pub fn next_request(&mut self) -> LayerSpec {
        let total = *self.cumulative.last().expect("non-empty universe");
        let draw = self.rng.gen_range(0.0..total);
        let index = self
            .cumulative
            .partition_point(|&bound| bound <= draw)
            .min(self.shapes.len() - 1);
        self.emitted += 1;
        self.shapes[index].clone()
    }
}

impl Iterator for TrafficGenerator {
    type Item = LayerSpec;

    fn next(&mut self) -> Option<LayerSpec> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn fc_layers() -> Vec<LayerSpec> {
        vec![
            LayerSpec::fc("DLRM-1", 512, 1024, 1024),
            LayerSpec::fc("BERT-1", 256, 768, 768),
        ]
    }

    #[test]
    fn empty_universe_yields_no_generator() {
        assert!(TrafficGenerator::new(&[], &[1, 2], 0).is_none());
        assert!(TrafficGenerator::new(&fc_layers(), &[], 0).is_none());
    }

    #[test]
    fn same_seed_same_stream_different_seed_diverges() {
        let layers = fc_layers();
        let sizes = [1usize, 8, 64];
        let a: Vec<_> = TrafficGenerator::new(&layers, &sizes, 42)
            .unwrap()
            .take(64)
            .collect();
        let b: Vec<_> = TrafficGenerator::new(&layers, &sizes, 42)
            .unwrap()
            .take(64)
            .collect();
        assert_eq!(a, b);
        let c: Vec<_> = TrafficGenerator::new(&layers, &sizes, 43)
            .unwrap()
            .take(64)
            .collect();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn samples_stay_inside_the_universe_and_skew_hot() {
        let layers = fc_layers();
        let sizes = [1usize, 8];
        let mut generator = TrafficGenerator::new(&layers, &sizes, 7).unwrap();
        assert_eq!(generator.shapes().len(), 4);
        let universe: Vec<String> = generator
            .shapes()
            .iter()
            .map(|l| l.name().to_string())
            .collect();

        let mut counts: HashMap<String, usize> = HashMap::new();
        for request in generator.by_ref().take(2000) {
            assert!(universe.contains(&request.name().to_string()));
            *counts.entry(request.name().to_string()).or_default() += 1;
        }
        assert_eq!(generator.emitted(), 2000);

        // Zipf-like: the rank-0 shape must be sampled more than the last.
        let hottest = counts[&universe[0]];
        let coldest = counts[&universe[3]];
        assert!(
            hottest > coldest,
            "rank 0 ({hottest}) must beat rank 3 ({coldest})"
        );
        // And every shape appears at least once in 2000 draws.
        assert_eq!(counts.len(), 4);
    }

    #[test]
    fn shapes_rank_in_batch_matrix_order() {
        let layers = fc_layers();
        let generator = TrafficGenerator::new(&layers, &[1, 16], 0).unwrap();
        let names: Vec<&str> = generator.shapes().iter().map(LayerSpec::name).collect();
        assert_eq!(
            names,
            vec!["DLRM-1@b1", "DLRM-1@b16", "BERT-1@b1", "BERT-1@b16"]
        );
    }
}
