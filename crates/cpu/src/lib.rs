//! # rasa-cpu — trace-driven out-of-order CPU model hosting the RASA engine
//!
//! The RASA paper evaluates its matrix engine inside a CPU pipeline using
//! MacSim, a trace-driven cycle-level simulator configured "similar to
//! Intel's Skylake": 2 GHz, 16 pipeline stages, a 97-entry ROB and a
//! 4-wide fetch/issue/retire front end, with the assumption that the core is
//! never stalled by memory. This crate is the from-scratch substitute for
//! that substrate.
//!
//! The model executes a [`rasa_isa::Program`] (produced by `rasa-trace`)
//! through a simplified but faithful out-of-order pipeline:
//!
//! * in-order rename/dispatch bounded by ROB and reservation-station
//!   capacity and the front-end width;
//! * out-of-order issue to ALU, load/store, vector and matrix-engine ports
//!   once register dependencies resolve (full bypass network);
//! * the matrix engine is the [`rasa_systolic::MatrixEngine`] scheduler,
//!   driven in program order and running in its own (slower) clock domain;
//! * idealized memory: tile and scalar loads have a fixed pipelined latency
//!   and never miss, matching the paper's methodology;
//! * in-order retirement.
//!
//! Time advances through an **event-driven scheduler** (see [`SchedStats`]
//! and the `sched` module): completions live in a binary heap, consumers
//! subscribe to their producers at rename, and the core simulates only
//! cycles on which the pipeline can move — which is what makes
//! full-fidelity runs of the large Table I layers cheap. The original
//! cycle-stepping loop is retained as [`CpuCore::run_reference`] and the
//! two are bit-identical on every program (enforced by parity tests).
//!
//! ## Example
//!
//! ```
//! use rasa_cpu::{CpuConfig, CpuCore};
//! use rasa_isa::{IsaConfig, MemRef, ProgramBuilder, TileReg};
//! use rasa_systolic::{ControlScheme, MatrixEngine, PeVariant, SystolicConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new(IsaConfig::amx_like());
//! let (c, a, w) = (TileReg::new(0)?, TileReg::new(6)?, TileReg::new(4)?);
//! b.tile_load(c, MemRef::tile(0x0, 64));
//! b.tile_load(a, MemRef::tile(0x400, 64));
//! b.tile_load(w, MemRef::tile(0x800, 64));
//! b.matmul(c, a, w);
//! b.tile_store(MemRef::tile(0x0, 64), c);
//! let program = b.finish()?;
//!
//! let engine = MatrixEngine::new(SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base)?);
//! let mut core = CpuCore::new(CpuConfig::skylake_like(), engine);
//! let stats = core.run(&program)?;
//! assert_eq!(stats.retired_instructions, 5);
//! assert!(stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod config;
mod core;
mod error;
mod sched;
mod spec;
mod stats;

pub use config::CpuConfig;
pub use core::{CoreRun, CpuCore};
pub use error::CpuError;
pub use sched::SchedStats;
pub use spec::{SpecCheckpoint, SpecDelta, SpeculativeRun, SpeculativeWorker};
pub use stats::{CpuStats, StreamStats};
