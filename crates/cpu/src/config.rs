use crate::CpuError;
use std::fmt;

/// Configuration of the out-of-order core.
///
/// The default ([`CpuConfig::skylake_like`]) matches the paper's MacSim
/// setup: 2 GHz, 16 pipeline stages, a 97-entry ROB and 4-wide
/// fetch/issue/retire, with idealized (never-stalling) memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Instructions renamed/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Front-end depth in cycles (fetch → rename), the "16 pipeline stages"
    /// of the paper's configuration.
    pub frontend_depth: u64,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Reservation-station (scheduler) capacity.
    pub rs_size: usize,
    /// Number of scalar ALU ports.
    pub alu_units: usize,
    /// Scalar ALU latency in cycles.
    pub alu_latency: u64,
    /// Number of load/store ports.
    pub lsu_ports: usize,
    /// Latency of a tile load (`rasa_tl`) in core cycles — idealized L1 hit
    /// streaming 16 rows of 64 B.
    pub tile_load_latency: u64,
    /// Latency of a tile store (`rasa_ts`) in core cycles.
    pub tile_store_latency: u64,
    /// Latency of a scalar load in core cycles.
    pub scalar_load_latency: u64,
    /// Number of SIMD FMA ports (AVX baseline traces).
    pub vector_units: usize,
    /// SIMD FMA latency in cycles.
    pub vector_latency: u64,
    /// Core clock frequency in GHz (used only to convert cycles to seconds
    /// in reports).
    pub clock_ghz: f64,
}

impl CpuConfig {
    /// The paper's MacSim configuration: 2 GHz, 16 pipeline stages, ROB 97,
    /// 4-wide fetch/issue/retire, idealized memory.
    #[must_use]
    pub fn skylake_like() -> Self {
        CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            retire_width: 4,
            frontend_depth: 16,
            rob_size: 97,
            rs_size: 60,
            alu_units: 4,
            alu_latency: 1,
            lsu_ports: 2,
            tile_load_latency: 24,
            tile_store_latency: 12,
            scalar_load_latency: 5,
            vector_units: 2,
            vector_latency: 4,
            clock_ghz: 2.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::InvalidConfig`] when any width, buffer size or
    /// clock is zero.
    pub fn validate(&self) -> Result<(), CpuError> {
        let checks: [(&str, bool); 8] = [
            ("fetch width", self.fetch_width == 0),
            ("issue width", self.issue_width == 0),
            ("retire width", self.retire_width == 0),
            ("rob size", self.rob_size == 0),
            ("rs size", self.rs_size == 0),
            ("alu units", self.alu_units == 0),
            ("lsu ports", self.lsu_ports == 0),
            ("clock", self.clock_ghz <= 0.0),
        ];
        for (name, bad) in checks {
            if bad {
                return Err(CpuError::InvalidConfig {
                    reason: format!("{name} must be non-zero"),
                });
            }
        }
        Ok(())
    }

    /// Converts a cycle count to seconds at the configured clock.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1.0e9)
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::skylake_like()
    }
}

impl fmt::Display for CpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-wide OoO, ROB {}, RS {}, {}-cycle front end @ {} GHz",
            self.issue_width, self.rob_size, self.rs_size, self.frontend_depth, self.clock_ghz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_like_matches_paper() {
        let c = CpuConfig::skylake_like();
        assert_eq!(c.rob_size, 97);
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.retire_width, 4);
        assert_eq!(c.frontend_depth, 16);
        assert!((c.clock_ghz - 2.0).abs() < f64::EPSILON);
        assert!(c.validate().is_ok());
        assert_eq!(CpuConfig::default(), c);
    }

    #[test]
    fn zero_fields_rejected() {
        let mut c = CpuConfig::skylake_like();
        c.rob_size = 0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::skylake_like();
        c.fetch_width = 0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::skylake_like();
        c.clock_ghz = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycle_time_conversion() {
        let c = CpuConfig::skylake_like();
        // 2e9 cycles at 2 GHz is one second.
        assert!((c.cycles_to_seconds(2_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_rob() {
        assert!(CpuConfig::skylake_like().to_string().contains("ROB 97"));
    }
}
