//! Speculative segment-parallel execution of a streaming core run.
//!
//! A [`crate::CoreRun`] is `Clone` and pauses at exact pipeline boundaries,
//! which makes the following scheme sound: checkpoint the authoritative
//! execution at a segment boundary, *predict* the architectural state a
//! fixed amount of further work will reach (see
//! [`CpuCore::shift_boundary`](crate::CpuCore)), fork speculative workers
//! seeded with those predicted states, simulate their segments in parallel,
//! and validate at join — a worker whose predicted entry state matches the
//! authoritative predecessor's exit state **bit for bit** proves (by
//! determinism of the core model) that its execution is exactly what the
//! sequential execution would have produced, so its state and statistics
//! commit; otherwise the segment replays sequentially.
//!
//! The predictor exploits the periodicity of GEMM traces: the interior of a
//! tiled GEMM is a long run of identical instruction blocks, so in steady
//! state the boundary state advances by a constant `(cycles, sequences,
//! matmuls)` increment per block stride ([`SpecDelta`]). Correctness never
//! depends on the prediction being right — only commit/replay rates do.
//!
//! [`SpeculativeRun`] owns the authoritative `(CpuCore, CoreRun)` pair and
//! the fold-in-order statistics accumulators; [`SpeculativeWorker`] is a
//! forked pair plus its frozen entry snapshot. The orchestration policy
//! (stride sizing, wave depth, delta search) lives in the simulator crate;
//! this module provides the mechanism and its accounting.

use crate::core::{CoreRun, CpuCore};
use crate::{CpuError, CpuStats, SchedStats, StreamStats};
use rasa_isa::{Instruction, IsaConfig, ProgramSegment};

/// Retired `(core, run)` pairs kept for reuse, bounded so a pathological
/// wave cannot pin unbounded state. A depth-`d` wave has at most `2d`
/// pairs in flight (worker state + frozen entry each).
const SPARE_POOL_CAP: usize = 16;

/// A cloned boundary state of a speculative execution, usable as a
/// speculation seed. Taking a checkpoint folds the authoritative interval
/// statistics into the run's accumulators, so the checkpoint itself always
/// carries zeroed counters — a worker forked from it accumulates exactly
/// its own segment's statistics.
#[derive(Debug, Clone)]
pub struct SpecCheckpoint {
    core: CpuCore,
    run: CoreRun,
}

impl SpecCheckpoint {
    /// `(core cycle, rename sequence, engine submissions)` position of the
    /// checkpointed boundary.
    fn position(&self) -> (u64, u64, u64) {
        (
            self.run.current_cycle(),
            self.run.next_sequence(),
            self.core.engine().submitted(),
        )
    }

    /// Whether advancing this checkpoint by `delta` reproduces `other`'s
    /// boundary state bit for bit — the periodicity test a probe runs
    /// before trusting a delta.
    ///
    /// When this holds, `other` is an exact translation of `self`; and
    /// because the core model's scheduling is translation-covariant,
    /// feeding both the same uniform work keeps them translated copies —
    /// so every speculative fork predicted with `delta` will validate at
    /// join for as long as the trace stays uniform. A probe that gates on
    /// this check therefore buys a deterministic ~100% commit rate instead
    /// of a heuristic one.
    #[must_use]
    pub fn shifted_matches(&self, delta: &SpecDelta, other: &SpecCheckpoint) -> bool {
        let mut core = self.core.clone();
        let mut run = self.run.clone();
        core.shift_boundary(&mut run, delta.cycles, delta.instructions, delta.matmuls);
        core.boundary_matches(&run, &other.core, &other.run)
    }
}

/// The constant per-stride state increment of a periodic steady-state
/// execution: how far the boundary state advances per fixed chunk of
/// identical work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecDelta {
    /// Core cycles per stride.
    pub cycles: u64,
    /// Rename sequences (instructions) per stride.
    pub instructions: u64,
    /// Engine submissions (`rasa_mm`s) per stride.
    pub matmuls: u64,
}

impl SpecDelta {
    /// The positional increment from `from` to `to`, or `None` when the
    /// pair cannot seed a prediction: `to` must be strictly later in both
    /// time and sequence, and the cycle delta must be a whole number of
    /// engine cycles (otherwise engine-clock state cannot shift exactly).
    #[must_use]
    pub fn between(from: &SpecCheckpoint, to: &SpecCheckpoint) -> Option<SpecDelta> {
        debug_assert_eq!(
            from.run.clock_ratio(),
            to.run.clock_ratio(),
            "checkpoints of the same run share a clock ratio"
        );
        let (from_cycle, from_seq, from_mm) = from.position();
        let (to_cycle, to_seq, to_mm) = to.position();
        if to_cycle <= from_cycle || to_seq <= from_seq || to_mm < from_mm {
            return None;
        }
        let cycles = to_cycle - from_cycle;
        if cycles % from.run.clock_ratio() != 0 {
            return None;
        }
        Some(SpecDelta {
            cycles,
            instructions: to_seq - from_seq,
            matmuls: to_mm - from_mm,
        })
    }
}

/// A forked speculative execution: a `(core, run)` pair seeded with a
/// predicted boundary state, plus the frozen entry snapshot the join step
/// validates against. Workers are independent (`Send`) and are meant to be
/// fed their segment's instructions on worker threads.
#[derive(Debug)]
pub struct SpeculativeWorker {
    entry: SpecCheckpoint,
    core: CpuCore,
    run: CoreRun,
}

impl SpeculativeWorker {
    /// Feeds one validated segment into the speculative execution.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuCore::feed_segment`] errors.
    pub fn feed_segment(&mut self, segment: &ProgramSegment) -> Result<(), CpuError> {
        self.core.feed_segment(&mut self.run, segment)
    }

    /// Feeds raw instructions into the speculative execution.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuCore::feed_instructions`] errors.
    pub fn feed_instructions(&mut self, instructions: &[Instruction]) -> Result<(), CpuError> {
        self.core.feed_instructions(&mut self.run, instructions)
    }
}

/// The authoritative side of a speculative segment-parallel execution.
///
/// Drives a single logical [`CoreRun`] whose architectural statistics are
/// **bit-identical** to feeding the same instruction stream sequentially —
/// however many forked segments commit or replay. See the module docs for
/// the protocol; see the simulator crate for the scheduling policy.
#[derive(Debug)]
pub struct SpeculativeRun {
    core: CpuCore,
    run: CoreRun,
    cpu: CpuStats,
    sched: SchedStats,
    stream: StreamStats,
    force_mispredict: bool,
    /// Scratch arena: `(core, run)` pairs retired by commits, mispredicts
    /// and consumed entry snapshots. Forks and checkpoints `clone_from`
    /// into them, recycling the ROB/reservation-station/event-heap buffers
    /// instead of allocating fresh ones every wave.
    spares: Vec<(CpuCore, CoreRun)>,
}

impl SpeculativeRun {
    /// Opens a speculative streaming run on `core` against `isa`.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuCore::begin_run`] errors.
    pub fn begin(mut core: CpuCore, isa: &IsaConfig) -> Result<Self, CpuError> {
        let run = core.begin_run(isa)?;
        Ok(SpeculativeRun {
            core,
            run,
            cpu: CpuStats::default(),
            sched: SchedStats::default(),
            stream: StreamStats::default(),
            force_mispredict: false,
            spares: Vec::new(),
        })
    }

    /// A `(core, run)` pair cloned from `source`, reusing a retired
    /// pair's buffers when the arena has one.
    fn fresh_pair(&mut self, source_core: &CpuCore, source_run: &CoreRun) -> (CpuCore, CoreRun) {
        match self.spares.pop() {
            Some((mut core, mut run)) => {
                core.clone_from(source_core);
                run.clone_from(source_run);
                (core, run)
            }
            None => (source_core.clone(), source_run.clone()),
        }
    }

    /// Returns a retired `(core, run)` pair to the arena (dropped once the
    /// arena is full).
    fn recycle(&mut self, core: CpuCore, run: CoreRun) {
        if self.spares.len() < SPARE_POOL_CAP {
            self.spares.push((core, run));
        }
    }

    /// Test hook: poison every subsequently forked worker's predicted entry
    /// state (displacing it by one engine cycle) so that validation at join
    /// is guaranteed to fail and every forked segment replays. Used to
    /// prove that the replay path restores bit-identity on its own.
    pub fn set_force_mispredict(&mut self, force: bool) {
        self.force_mispredict = force;
    }

    /// Streaming statistics accumulated so far, including the speculation
    /// counters (forks/commits/replays).
    #[must_use]
    pub const fn stream_stats(&self) -> &StreamStats {
        &self.stream
    }

    /// Feeds one validated segment into the authoritative execution (the
    /// sequential path: warm-up, probes and replays).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuCore::feed_segment`] errors.
    pub fn feed_segment(&mut self, segment: &ProgramSegment) -> Result<(), CpuError> {
        self.core.feed_segment(&mut self.run, segment)
    }

    /// Feeds raw instructions into the authoritative execution.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuCore::feed_instructions`] errors.
    pub fn feed_instructions(&mut self, instructions: &[Instruction]) -> Result<(), CpuError> {
        self.core.feed_instructions(&mut self.run, instructions)
    }

    /// Folds the authoritative interval statistics into the accumulators.
    fn fold_interval(&mut self) {
        let (cpu, sched, stream) = self.core.take_interval_stats(&mut self.run);
        self.cpu.accumulate(&cpu);
        self.sched.accumulate(&sched);
        self.stream.accumulate(&stream);
    }

    /// Captures the current boundary as a speculation seed (folding the
    /// pending interval statistics first, so the seed carries zeroed
    /// counters).
    pub fn checkpoint(&mut self) -> SpecCheckpoint {
        self.fold_interval();
        match self.spares.pop() {
            Some((mut core, mut run)) => {
                core.clone_from(&self.core);
                run.clone_from(&self.run);
                SpecCheckpoint { core, run }
            }
            None => SpecCheckpoint {
                core: self.core.clone(),
                run: self.run.clone(),
            },
        }
    }

    /// Forks a speculative worker predicted to start `strides` strides
    /// after `seed`, where one stride advances the state by `delta`. A
    /// zero-stride fork predicts the seed state itself (the leading worker
    /// of a wave, which validates trivially).
    pub fn fork(
        &mut self,
        seed: &SpecCheckpoint,
        delta: &SpecDelta,
        strides: u64,
    ) -> SpeculativeWorker {
        self.stream.spec_forks += 1;
        let (mut core, mut run) = self.fresh_pair(&seed.core, &seed.run);
        core.shift_boundary(
            &mut run,
            delta.cycles * strides,
            delta.instructions * strides,
            delta.matmuls * strides,
        );
        if self.force_mispredict {
            let ratio = run.clock_ratio();
            core.shift_boundary(&mut run, ratio, 0, 0);
        }
        let (entry_core, entry_run) = self.fresh_pair(&core, &run);
        SpeculativeWorker {
            entry: SpecCheckpoint {
                core: entry_core,
                run: entry_run,
            },
            core,
            run,
        }
    }

    /// Validates a finished worker against the authoritative state and
    /// either commits it (adopting its exit state and folding its interval
    /// statistics) or reports a mispredict, in which case the caller must
    /// replay the worker's segment sequentially through
    /// [`SpeculativeRun::feed_segment`] / `feed_instructions`.
    ///
    /// Commit is sound because the core model is deterministic: identical
    /// boundary dynamics plus identical future feeds yield identical
    /// executions, so a bit-for-bit entry match proves the worker computed
    /// exactly the sequential continuation.
    pub fn try_commit(&mut self, worker: SpeculativeWorker) -> bool {
        let SpeculativeWorker { entry, core, run } = worker;
        let matches = self
            .core
            .boundary_matches(&self.run, &entry.core, &entry.run);
        self.recycle(entry.core, entry.run);
        if matches {
            self.fold_interval();
            let old_core = std::mem::replace(&mut self.core, core);
            let old_run = std::mem::replace(&mut self.run, run);
            self.recycle(old_core, old_run);
            self.stream.spec_commits += 1;
            true
        } else {
            self.recycle(core, run);
            self.stream.spec_replays += 1;
            false
        }
    }

    /// Finalizes the run, drains the pipeline to quiescence and returns the
    /// accumulated `(CpuStats, SchedStats, StreamStats)` — bit-identical to
    /// the sequential streamed execution of the same instruction stream
    /// (architectural and scheduler counters; the stream counters
    /// additionally carry the speculation accounting).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuCore::run_to_quiescence`] errors.
    pub fn finish(mut self) -> Result<(CpuStats, SchedStats, StreamStats), CpuError> {
        let tail = self.core.run_to_quiescence(self.run)?;
        self.cpu.accumulate(&tail);
        self.sched.accumulate(self.core.sched_stats());
        self.stream.accumulate(self.core.stream_stats());
        Ok((self.cpu, self.sched, self.stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuConfig;
    use rasa_isa::{IsaConfig, MemRef, ProgramBuilder, TileReg};
    use rasa_systolic::{ControlScheme, MatrixEngine, PeVariant, SystolicConfig};

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    fn core(pe: PeVariant, scheme: ControlScheme) -> CpuCore {
        let engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
        CpuCore::new(CpuConfig::skylake_like(), engine)
    }

    /// `total` instruction blocks: k-steps of the Algorithm-1 micro-kernel
    /// (4 tile loads + 4 matmuls touching the same registers every
    /// iteration — the periodic steady state speculation relies on). The
    /// first block additionally loads the four accumulators; all later
    /// blocks are identical up to addresses, which carry no timing.
    fn trace_blocks(total: usize) -> Vec<Vec<Instruction>> {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        let mut out = Vec::new();
        for k in 0..total {
            if k == 0 {
                for i in 0..4u8 {
                    b.tile_load(treg(i), MemRef::tile(u64::from(i) * 0x400, 64));
                }
            }
            let base = 0x10_000 + (k as u64) * 0x2000;
            b.tile_load(treg(4), MemRef::tile(base, 64));
            b.tile_load(treg(6), MemRef::tile(base + 0x400, 64));
            b.matmul(treg(0), treg(6), treg(4));
            b.tile_load(treg(7), MemRef::tile(base + 0x800, 64));
            b.matmul(treg(1), treg(7), treg(4));
            b.tile_load(treg(5), MemRef::tile(base + 0xc00, 64));
            b.matmul(treg(2), treg(6), treg(5));
            b.matmul(treg(3), treg(7), treg(5));
            out.push(b.finish_segment().unwrap().instructions().to_vec());
        }
        out
    }

    fn sequential_golden(
        pe: PeVariant,
        scheme: ControlScheme,
        blocks: &[Vec<Instruction>],
    ) -> (CpuStats, SchedStats) {
        let mut c = core(pe, scheme);
        let isa = IsaConfig::amx_like();
        let mut run = c.begin_run(&isa).unwrap();
        for block in blocks {
            c.feed_instructions(&mut run, block).unwrap();
        }
        let stats = c.run_to_quiescence(run).unwrap();
        (stats, *c.sched_stats())
    }

    /// Warm up `warm` blocks, then slide a window over consecutive block
    /// boundaries until one boundary is an exact one-block translation of
    /// its predecessor ([`SpecCheckpoint::shifted_matches`]) — the steady
    /// state has been reached and the delta is trustworthy. Returns the
    /// seed at the confirmed boundary, the per-block delta, the stride (in
    /// blocks) and the next unfed block index.
    fn probe(
        spec: &mut SpeculativeRun,
        blocks: &[Vec<Instruction>],
        warm: usize,
        max_probe: usize,
    ) -> (SpecCheckpoint, SpecDelta, usize, usize) {
        for block in &blocks[..warm] {
            spec.feed_instructions(block).unwrap();
        }
        let mut prev = spec.checkpoint();
        let mut next = warm;
        for _ in 0..max_probe {
            spec.feed_instructions(&blocks[next]).unwrap();
            next += 1;
            let cp = spec.checkpoint();
            if let Some(delta) = SpecDelta::between(&prev, &cp) {
                if prev.shifted_matches(&delta, &cp) {
                    return (cp, delta, 1, next);
                }
            }
            prev = cp;
        }
        panic!("no periodic delta found within {max_probe} probe blocks");
    }

    #[test]
    fn committed_waves_reproduce_sequential_stats_bit_for_bit() {
        for (pe, scheme) in [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ] {
            let total_blocks = 64;
            let blocks = trace_blocks(total_blocks);
            let (golden_cpu, golden_sched) = sequential_golden(pe, scheme, &blocks);

            let mut spec = SpeculativeRun::begin(core(pe, scheme), &IsaConfig::amx_like()).unwrap();
            let (mut seed, delta, stride, mut next) = probe(&mut spec, &blocks, 8, 8);
            let depth = 3usize;
            while next + depth * stride <= total_blocks {
                let mut workers: Vec<(usize, SpeculativeWorker)> = (0..depth)
                    .map(|j| (next + j * stride, spec.fork(&seed, &delta, j as u64)))
                    .collect();
                for (lo, worker) in &mut workers {
                    for block in &blocks[*lo..*lo + stride] {
                        worker.feed_instructions(block).unwrap();
                    }
                }
                for (lo, worker) in workers {
                    if !spec.try_commit(worker) {
                        for block in &blocks[lo..lo + stride] {
                            spec.feed_instructions(block).unwrap();
                        }
                    }
                }
                next += depth * stride;
                seed = spec.checkpoint();
            }
            for block in &blocks[next..] {
                spec.feed_instructions(block).unwrap();
            }
            let (cpu, sched, stream) = spec.finish().unwrap();
            assert_eq!(cpu, golden_cpu, "{pe:?}/{scheme:?}");
            assert_eq!(sched, golden_sched, "{pe:?}/{scheme:?}");
            assert!(stream.spec_forks > 0);
            // The steady state of a uniform block stream is periodic, so
            // the waves must actually commit (worker 0 at minimum).
            assert!(
                stream.spec_commits > stream.spec_replays,
                "commits {} vs replays {} on {pe:?}/{scheme:?}",
                stream.spec_commits,
                stream.spec_replays
            );
            let total_instructions: usize = blocks.iter().map(Vec::len).sum();
            assert_eq!(stream.fed_instructions, total_instructions as u64);
        }
    }

    #[test]
    fn forced_mispredict_replays_and_restores_bit_identity() {
        let (pe, scheme) = (PeVariant::Db, ControlScheme::Wls);
        let total_blocks = 40;
        let blocks = trace_blocks(total_blocks);
        let (golden_cpu, golden_sched) = sequential_golden(pe, scheme, &blocks);

        let mut spec = SpeculativeRun::begin(core(pe, scheme), &IsaConfig::amx_like()).unwrap();
        let (seed, delta, stride, mut next) = probe(&mut spec, &blocks, 8, 8);
        spec.set_force_mispredict(true);
        let depth = 3usize;
        let mut workers: Vec<(usize, SpeculativeWorker)> = (0..depth)
            .map(|j| (next + j * stride, spec.fork(&seed, &delta, j as u64)))
            .collect();
        for (lo, worker) in &mut workers {
            for block in &blocks[*lo..*lo + stride] {
                worker.feed_instructions(block).unwrap();
            }
        }
        for (lo, worker) in workers {
            assert!(!spec.try_commit(worker), "poisoned entry must not match");
            for block in &blocks[lo..lo + stride] {
                spec.feed_instructions(block).unwrap();
            }
        }
        next += depth * stride;
        for block in &blocks[next..] {
            spec.feed_instructions(block).unwrap();
        }
        let (cpu, sched, stream) = spec.finish().unwrap();
        assert_eq!(cpu, golden_cpu, "replay restores the sequential stats");
        assert_eq!(sched, golden_sched);
        assert_eq!(stream.spec_commits, 0);
        assert_eq!(stream.spec_replays, depth as u64);
        assert_eq!(stream.spec_forks, depth as u64);
    }

    #[test]
    fn delta_between_rejects_non_advancing_or_ragged_pairs() {
        let blocks = trace_blocks(2);
        let mut spec = SpeculativeRun::begin(
            core(PeVariant::Baseline, ControlScheme::Base),
            &IsaConfig::amx_like(),
        )
        .unwrap();
        spec.feed_instructions(&blocks[0]).unwrap();
        let a = spec.checkpoint();
        // Same checkpoint twice: no advance, no delta.
        assert!(SpecDelta::between(&a, &a.clone()).is_none());
        spec.feed_instructions(&blocks[1]).unwrap();
        let b = spec.checkpoint();
        // Reversed order is rejected.
        assert!(SpecDelta::between(&b, &a).is_none());
        if let Some(delta) = SpecDelta::between(&a, &b) {
            assert!(delta.cycles > 0 && delta.instructions > 0);
            assert_eq!(delta.cycles % 4, 0, "paper configs run a 4:1 clock ratio");
        }
    }
}
