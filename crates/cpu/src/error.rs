use rasa_systolic::SystolicError;
use std::error::Error;
use std::fmt;

/// Errors produced by the CPU model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CpuError {
    /// The CPU configuration was internally inconsistent.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The matrix engine rejected an instruction (e.g. a tile larger than
    /// the array) — the trace and the engine configuration disagree.
    Engine {
        /// Index of the offending instruction in the program.
        instruction_index: usize,
        /// The underlying engine error.
        source: SystolicError,
    },
    /// A streaming run was driven inconsistently (a segment fed after
    /// finalization, or built against a different ISA than the run).
    Stream {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::InvalidConfig { reason } => {
                write!(f, "invalid cpu configuration: {reason}")
            }
            CpuError::Engine {
                instruction_index,
                source,
            } => write!(
                f,
                "matrix engine rejected instruction {instruction_index}: {source}"
            ),
            CpuError::Stream { reason } => write!(f, "invalid streaming run: {reason}"),
        }
    }
}

impl Error for CpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpuError::Engine { source, .. } => Some(source),
            CpuError::InvalidConfig { .. } | CpuError::Stream { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CpuError::Engine {
            instruction_index: 7,
            source: SystolicError::InvalidConfig {
                reason: "x".to_string(),
            },
        };
        assert!(e.to_string().contains("instruction 7"));
        assert!(Error::source(&e).is_some());
        let c = CpuError::InvalidConfig {
            reason: "zero width".to_string(),
        };
        assert!(c.to_string().contains("zero width"));
        assert!(Error::source(&c).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<CpuError>();
    }
}
