use rasa_systolic::EngineStats;
use std::fmt;

/// Statistics produced by one [`crate::CpuCore::run`] invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuStats {
    /// Total core cycles from the first fetch to the last retirement.
    pub cycles: u64,
    /// Instructions retired.
    pub retired_instructions: u64,
    /// `rasa_mm` instructions retired.
    pub retired_matmuls: u64,
    /// `rasa_tl` / `rasa_ts` instructions retired.
    pub retired_tile_memory_ops: u64,
    /// Cycles in which rename was blocked because the ROB was full.
    pub rob_full_stalls: u64,
    /// Cycles in which rename was blocked because the reservation station
    /// was full.
    pub rs_full_stalls: u64,
    /// Matrix-engine statistics (in engine cycles).
    pub engine: EngineStats,
}

impl CpuStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_instructions as f64 / self.cycles as f64
        }
    }

    /// Average core cycles between retired `rasa_mm` instructions — the
    /// quantity the paper's Fig. 5 runtime comparisons reduce to for
    /// GEMM-dominated workloads.
    #[must_use]
    pub fn cycles_per_matmul(&self) -> f64 {
        if self.retired_matmuls == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired_matmuls as f64
        }
    }

    /// Wall-clock runtime at the given core clock.
    #[must_use]
    pub fn runtime_seconds(&self, clock_ghz: f64) -> f64 {
        if clock_ghz <= 0.0 {
            return 0.0;
        }
        self.cycles as f64 / (clock_ghz * 1.0e9)
    }

    /// Folds the counters of a later execution interval into this one.
    ///
    /// Additive counters add; `cycles` is a timeline position (zero for
    /// intervals harvested mid-run, final for the quiescence interval) and
    /// takes the maximum, as does the engine horizon inside
    /// [`EngineStats::accumulate`]. Folding per-interval statistics in order
    /// reproduces an unsegmented run's counters exactly.
    pub fn accumulate(&mut self, interval: &CpuStats) {
        self.cycles = self.cycles.max(interval.cycles);
        self.retired_instructions += interval.retired_instructions;
        self.retired_matmuls += interval.retired_matmuls;
        self.retired_tile_memory_ops += interval.retired_tile_memory_ops;
        self.rob_full_stalls += interval.rob_full_stalls;
        self.rs_full_stalls += interval.rs_full_stalls;
        self.engine.accumulate(&interval.engine);
    }
}

/// Feed-side statistics of a streaming ([`crate::CoreRun`]) execution.
///
/// Like [`crate::SchedStats`] these describe the *simulator*, not the
/// simulated core: they are deterministic for a given feed pattern but are
/// kept out of [`CpuStats`] so the architectural statistics stay directly
/// comparable across one-shot, streamed and reference executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Segments (non-empty feed calls) delivered to the run.
    pub segments: u64,
    /// Total instructions fed.
    pub fed_instructions: u64,
    /// Peak number of fed-but-not-yet-renamed instructions resident in the
    /// run's fetch buffer. A one-shot [`crate::CpuCore::run`] feeds the
    /// whole program at once, so this equals the program length; a
    /// segment-wise feed keeps it at the largest single segment.
    pub peak_resident: usize,
    /// Times the run paused because the fetch buffer ran dry before
    /// finalization (i.e. rename wanted instructions not yet fed). Every
    /// feed ends in one such pause — including the single feed of a
    /// one-shot run — so this counts at least one per segment.
    pub pauses: u64,
    /// Speculative segment executions forked by a
    /// [`crate::SpeculativeRun`] (zero for purely sequential runs).
    pub spec_forks: u64,
    /// Forked segments whose predicted entry state matched the
    /// authoritative predecessor's exit state bit for bit, letting their
    /// statistics commit without re-execution.
    pub spec_commits: u64,
    /// Forked segments whose prediction missed; their work was discarded
    /// and the segment replayed sequentially on the authoritative state.
    pub spec_replays: u64,
}

impl StreamStats {
    /// Folds the counters of a later execution interval into this one
    /// (`peak_resident` is a high-water mark and takes the maximum; the
    /// rest add).
    pub fn accumulate(&mut self, interval: &StreamStats) {
        self.segments += interval.segments;
        self.fed_instructions += interval.fed_instructions;
        self.peak_resident = self.peak_resident.max(interval.peak_resident);
        self.pauses += interval.pauses;
        self.spec_forks += interval.spec_forks;
        self.spec_commits += interval.spec_commits;
        self.spec_replays += interval.spec_replays;
    }

    /// Fraction of forked speculative segments that committed (0 when no
    /// speculation ran).
    #[must_use]
    pub fn spec_commit_rate(&self) -> f64 {
        if self.spec_forks == 0 {
            0.0
        } else {
            self.spec_commits as f64 / self.spec_forks as f64
        }
    }
}

impl fmt::Display for CpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} instructions (IPC {:.2}), {} rasa_mm ({:.1} cycles/mm)",
            self.cycles,
            self.retired_instructions,
            self.ipc(),
            self.retired_matmuls,
            self.cycles_per_matmul()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CpuStats {
            cycles: 1000,
            retired_instructions: 2500,
            retired_matmuls: 100,
            retired_tile_memory_ops: 300,
            ..CpuStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.cycles_per_matmul() - 10.0).abs() < 1e-12);
        assert!((s.runtime_seconds(2.0) - 0.5e-6).abs() < 1e-15);
        assert!(s.to_string().contains("IPC 2.50"));
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cycles_per_matmul(), 0.0);
        assert_eq!(s.runtime_seconds(0.0), 0.0);
    }
}
