use crate::{CpuConfig, CpuError, CpuStats};
use rasa_isa::{Instruction, InstructionKind, Program, TileReg, NUM_GPR_REGS, NUM_TILE_REGS};
use rasa_systolic::{MatrixEngine, MmRequest, TileDims};
use std::collections::VecDeque;

/// Number of flat vector registers modelled for the AVX baseline traces.
const NUM_VEC_REGS: usize = 32;

/// A reorder-buffer entry.
#[derive(Debug, Clone, Copy)]
struct RobEntry {
    kind: InstructionKind,
    issued: bool,
    complete_cycle: u64,
    retired: bool,
}

/// A reservation-station entry for the non-matrix functional units.
#[derive(Debug, Clone)]
struct RsEntry {
    rob_seq: u64,
    kind: InstructionKind,
    producers: Vec<u64>,
}

/// Events handed to the matrix engine in program order: tile-register
/// writes (for dirty-bit maintenance) and `rasa_mm` submissions.
#[derive(Debug, Clone, Copy)]
enum EngineEvent {
    Write(TileReg),
    Matmul {
        rob_seq: u64,
        weight: TileReg,
        tile: TileDims,
    },
}

/// The trace-driven out-of-order core.
///
/// See the crate-level documentation for the modelled pipeline. A `CpuCore`
/// owns its [`MatrixEngine`]; [`CpuCore::run`] executes one program to
/// completion and returns the [`CpuStats`], leaving the engine statistics
/// accessible through [`CpuCore::engine`].
#[derive(Debug, Clone)]
pub struct CpuCore {
    config: CpuConfig,
    engine: MatrixEngine,
}

impl CpuCore {
    /// Creates a core hosting the given matrix engine.
    #[must_use]
    pub fn new(config: CpuConfig, engine: MatrixEngine) -> Self {
        CpuCore { config, engine }
    }

    /// The core configuration.
    #[must_use]
    pub const fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// The hosted matrix engine (and its statistics).
    #[must_use]
    pub const fn engine(&self) -> &MatrixEngine {
        &self.engine
    }

    /// Executes `program` to completion and returns the run statistics.
    ///
    /// The matrix engine is reset at the start of every run so a single core
    /// can be reused across workloads.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::InvalidConfig`] for an invalid configuration and
    /// [`CpuError::Engine`] when the engine rejects an instruction (tile
    /// larger than the configured array).
    pub fn run(&mut self, program: &Program) -> Result<CpuStats, CpuError> {
        self.config.validate()?;
        self.engine.reset();

        let instructions = program.instructions();
        let total = instructions.len();
        let mut stats = CpuStats::default();
        if total == 0 {
            return Ok(stats);
        }

        let isa = program.isa();
        let full_tile = TileDims::new(isa.tm(), isa.tk(), isa.tn());
        let clock_ratio = u64::from(self.engine.config().clock_ratio());

        // Architectural register → ROB sequence of the last (program-order)
        // writer that has not yet retired. `None` means the value is ready.
        let mut tile_writer: [Option<u64>; NUM_TILE_REGS] = [None; NUM_TILE_REGS];
        let mut gpr_writer: [Option<u64>; NUM_GPR_REGS] = [None; NUM_GPR_REGS];
        let mut vec_writer: [Option<u64>; NUM_VEC_REGS] = [None; NUM_VEC_REGS];

        // The ROB, indexed by sequence number − rob_base.
        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(self.config.rob_size);
        let mut rob_base: u64 = 0;
        let mut next_seq: u64 = 0;

        let mut rs: Vec<RsEntry> = Vec::with_capacity(self.config.rs_size);
        let mut engine_events: VecDeque<EngineEvent> = VecDeque::new();
        // Producers of each pending matmul, looked up when it reaches the
        // head of the engine-event queue.
        let mut matmul_producers: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();

        let mut next_fetch = 0usize; // next program index to rename
        let mut retired = 0usize;
        // The front end delivers the first instructions after the pipeline
        // depth has elapsed.
        let mut cycle: u64 = self.config.frontend_depth;

        let entry_completed = |rob: &VecDeque<RobEntry>, rob_base: u64, seq: u64, now: u64| {
            // Anything older than the ROB window has retired and is complete.
            if seq < rob_base {
                return true;
            }
            let entry = &rob[(seq - rob_base) as usize];
            entry.issued && entry.complete_cycle <= now
        };

        loop {
            let mut progress = false;

            // ---- Retire (in order) -------------------------------------
            let mut retired_this_cycle = 0;
            while retired_this_cycle < self.config.retire_width {
                let Some(front) = rob.front() else { break };
                if !(front.issued && front.complete_cycle <= cycle && !front.retired) {
                    break;
                }
                let entry = rob.pop_front().expect("front exists");
                rob_base += 1;
                retired += 1;
                retired_this_cycle += 1;
                progress = true;
                stats.retired_instructions += 1;
                match entry.kind {
                    InstructionKind::MatMul => stats.retired_matmuls += 1,
                    InstructionKind::TileLoad | InstructionKind::TileStore => {
                        stats.retired_tile_memory_ops += 1;
                    }
                    _ => {}
                }
            }
            if retired == total {
                stats.cycles = cycle;
                break;
            }

            // ---- Issue to functional units ------------------------------
            let mut issued_this_cycle = 0;
            let mut alu_used = 0;
            let mut lsu_used = 0;
            let mut vec_used = 0;

            // Matrix-engine events are processed in program order.
            while issued_this_cycle < self.config.issue_width {
                match engine_events.front() {
                    Some(EngineEvent::Write(reg)) => {
                        self.engine.note_tile_write(*reg);
                        engine_events.pop_front();
                    }
                    Some(EngineEvent::Matmul {
                        rob_seq,
                        weight,
                        tile,
                    }) => {
                        let seq = *rob_seq;
                        let producers = matmul_producers
                            .get(&seq)
                            .expect("producers recorded at rename");
                        let ready = producers
                            .iter()
                            .all(|&p| entry_completed(&rob, rob_base, p, cycle));
                        if !ready {
                            break;
                        }
                        let engine_ready = cycle.div_ceil(clock_ratio);
                        let request = MmRequest::ready_at(*weight, *tile, engine_ready);
                        let completion =
                            self.engine
                                .submit(request)
                                .map_err(|source| CpuError::Engine {
                                    instruction_index: (seq) as usize,
                                    source,
                                })?;
                        let idx = (seq - rob_base) as usize;
                        rob[idx].issued = true;
                        rob[idx].complete_cycle = completion.complete_cycle * clock_ratio;
                        matmul_producers.remove(&seq);
                        engine_events.pop_front();
                        issued_this_cycle += 1;
                        progress = true;
                    }
                    None => break,
                }
            }

            // Ordinary reservation-station issue, oldest first.
            if issued_this_cycle < self.config.issue_width && !rs.is_empty() {
                rs.sort_unstable_by_key(|e| e.rob_seq);
                let mut i = 0;
                while i < rs.len() && issued_this_cycle < self.config.issue_width {
                    let entry = &rs[i];
                    let port_free = match entry.kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => alu_used < self.config.alu_units,
                        InstructionKind::TileLoad
                        | InstructionKind::TileStore
                        | InstructionKind::ScalarLoad => lsu_used < self.config.lsu_ports,
                        InstructionKind::VectorFma => vec_used < self.config.vector_units,
                        InstructionKind::MatMul => false,
                    };
                    if !port_free {
                        i += 1;
                        continue;
                    }
                    let ready = entry
                        .producers
                        .iter()
                        .all(|&p| entry_completed(&rob, rob_base, p, cycle));
                    if !ready {
                        i += 1;
                        continue;
                    }
                    let latency = match entry.kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => {
                            alu_used += 1;
                            self.config.alu_latency
                        }
                        InstructionKind::TileLoad => {
                            lsu_used += 1;
                            self.config.tile_load_latency
                        }
                        InstructionKind::TileStore => {
                            lsu_used += 1;
                            self.config.tile_store_latency
                        }
                        InstructionKind::ScalarLoad => {
                            lsu_used += 1;
                            self.config.scalar_load_latency
                        }
                        InstructionKind::VectorFma => {
                            vec_used += 1;
                            self.config.vector_latency
                        }
                        InstructionKind::MatMul => unreachable!("handled via engine events"),
                    };
                    let seq = entry.rob_seq;
                    let idx = (seq - rob_base) as usize;
                    rob[idx].issued = true;
                    rob[idx].complete_cycle = cycle + latency;
                    rs.swap_remove(i);
                    issued_this_cycle += 1;
                    progress = true;
                    // Do not advance `i`: swap_remove moved a new entry here.
                }
            }

            // ---- Rename / dispatch --------------------------------------
            let mut renamed_this_cycle = 0;
            while renamed_this_cycle < self.config.fetch_width && next_fetch < total {
                if rob.len() >= self.config.rob_size {
                    stats.rob_full_stalls += 1;
                    break;
                }
                let inst = &instructions[next_fetch];
                let kind = inst.kind();
                let needs_rs = !matches!(kind, InstructionKind::MatMul);
                if needs_rs && rs.len() >= self.config.rs_size {
                    stats.rs_full_stalls += 1;
                    break;
                }
                let seq = next_seq;

                // Collect producers from the current renaming map.
                let mut producers = Vec::new();
                for r in inst.tile_reads().iter() {
                    if let Some(p) = tile_writer[r.index()] {
                        producers.push(p);
                    }
                }
                for r in inst.gpr_reads().iter() {
                    if let Some(p) = gpr_writer[r.index()] {
                        producers.push(p);
                    }
                }
                if let Instruction::VectorFma { dst, src1, src2 } = inst {
                    for r in [dst, src1, src2] {
                        if let Some(p) = vec_writer[*r as usize % NUM_VEC_REGS] {
                            producers.push(p);
                        }
                    }
                }

                // Dispatch either to the matrix-engine event queue or the RS.
                match inst {
                    Instruction::MatMul { acc, a: _, b } => {
                        engine_events.push_back(EngineEvent::Matmul {
                            rob_seq: seq,
                            weight: *b,
                            tile: full_tile,
                        });
                        matmul_producers.insert(seq, producers);
                        // The destination write is visible to the engine's
                        // dirty-bit logic after the instruction itself.
                        engine_events.push_back(EngineEvent::Write(*acc));
                    }
                    _ => {
                        for w in inst.tile_writes().iter() {
                            engine_events.push_back(EngineEvent::Write(w));
                        }
                        rs.push(RsEntry {
                            rob_seq: seq,
                            kind,
                            producers,
                        });
                    }
                }

                // Update the renaming map with this instruction's writes.
                for w in inst.tile_writes().iter() {
                    tile_writer[w.index()] = Some(seq);
                }
                for w in inst.gpr_writes().iter() {
                    gpr_writer[w.index()] = Some(seq);
                }
                if let Instruction::VectorFma { dst, .. } = inst {
                    vec_writer[*dst as usize % NUM_VEC_REGS] = Some(seq);
                }

                rob.push_back(RobEntry {
                    kind,
                    issued: false,
                    complete_cycle: u64::MAX,
                    retired: false,
                });
                next_seq += 1;
                next_fetch += 1;
                renamed_this_cycle += 1;
                progress = true;
            }

            // ---- Advance time -------------------------------------------
            if progress {
                cycle += 1;
            } else {
                // Nothing moved: jump to the next completion event instead
                // of spinning cycle by cycle.
                let next_completion = rob
                    .iter()
                    .filter(|e| e.issued && e.complete_cycle > cycle)
                    .map(|e| e.complete_cycle)
                    .min();
                match next_completion {
                    Some(c) => cycle = c,
                    None => {
                        // No instruction in flight can unblock us; this only
                        // happens if the program deadlocks, which a validated
                        // program cannot do — but guard against it anyway.
                        return Err(CpuError::InvalidConfig {
                            reason: "pipeline deadlock: no in-flight completion can unblock"
                                .to_string(),
                        });
                    }
                }
            }
        }

        stats.engine = *self.engine.stats();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_isa::{GprReg, IsaConfig, MemRef, ProgramBuilder};
    use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    fn core(pe: PeVariant, scheme: ControlScheme) -> CpuCore {
        let engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
        CpuCore::new(CpuConfig::skylake_like(), engine)
    }

    /// Emits `k_steps` iterations of the Algorithm-1 micro-kernel (2 A × 2 B
    /// register blocking, 4 accumulators).
    fn microkernel_program(k_steps: usize) -> Program {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        b.set_name("microkernel");
        for i in 0..4u8 {
            b.tile_load(treg(i), MemRef::tile(u64::from(i) * 0x400, 64));
        }
        for k in 0..k_steps {
            let base = 0x10_000 + (k as u64) * 0x2000;
            b.tile_load(treg(4), MemRef::tile(base, 64));
            b.tile_load(treg(6), MemRef::tile(base + 0x400, 64));
            b.matmul(treg(0), treg(6), treg(4));
            b.tile_load(treg(7), MemRef::tile(base + 0x800, 64));
            b.matmul(treg(1), treg(7), treg(4));
            b.tile_load(treg(5), MemRef::tile(base + 0xc00, 64));
            b.matmul(treg(2), treg(6), treg(5));
            b.matmul(treg(3), treg(7), treg(5));
        }
        for i in 0..4u8 {
            b.tile_store(MemRef::tile(u64::from(i) * 0x400, 64), treg(i));
        }
        b.finish().unwrap()
    }

    #[test]
    fn empty_program_runs_instantly() {
        let p = ProgramBuilder::new(IsaConfig::amx_like()).finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.retired_instructions, 0);
    }

    #[test]
    fn single_matmul_latency_includes_engine_and_frontend() {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();

        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 4);
        assert_eq!(stats.retired_matmuls, 1);
        // The run must at least cover the front end, the tile loads and the
        // 95-engine-cycle (380-core-cycle) matmul.
        assert!(stats.cycles >= 380);
        // …but not be absurdly long either.
        assert!(stats.cycles < 600);
    }

    #[test]
    fn all_instructions_retire_exactly_once() {
        let p = microkernel_program(8);
        let mut c = core(PeVariant::Baseline, ControlScheme::Wlbp);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions as usize, p.len());
        assert_eq!(stats.retired_matmuls as usize, p.count_matmuls());
        assert_eq!(stats.engine.matmuls as usize, p.count_matmuls());
    }

    #[test]
    fn pipelining_schemes_preserve_runtime_ordering() {
        let p = microkernel_program(32);
        let designs = [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Baseline, ControlScheme::Pipe),
            (PeVariant::Baseline, ControlScheme::Wlbp),
            (PeVariant::Dm, ControlScheme::Wlbp),
            (PeVariant::Db, ControlScheme::Wls),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ];
        let mut cycles = Vec::new();
        for (pe, scheme) in designs {
            let mut c = core(pe, scheme);
            cycles.push(c.run(&p).unwrap().cycles);
        }
        for pair in cycles.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "runtimes should improve monotonically: {cycles:?}"
            );
        }
        // The most aggressive design is far faster than the baseline.
        assert!(cycles[0] as f64 / *cycles.last().unwrap() as f64 > 2.5);
    }

    #[test]
    fn wlbp_bypasses_half_the_matmuls_on_algorithm1_blocking() {
        let p = microkernel_program(64);
        let mut c = core(PeVariant::Baseline, ControlScheme::Wlbp);
        let stats = c.run(&p).unwrap();
        // Each k-step has 4 matmuls of which 2 reuse the weight register.
        let rate = stats.engine.bypass_rate();
        assert!(rate > 0.40 && rate <= 0.55, "bypass rate {rate}");
    }

    #[test]
    fn scalar_dependencies_are_respected() {
        // A chain of dependent ALU instructions retires in bounded time and
        // the chain length is reflected in the cycle count.
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        let r0 = GprReg::new(0).unwrap();
        for _ in 0..64 {
            b.scalar_alu(r0, &[r0]);
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 64);
        // A fully serial 64-deep chain needs at least 64 execute cycles.
        assert!(stats.cycles >= 64);
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        for i in 0u16..256 {
            b.scalar_alu(GprReg::new((i % 16) as u8).unwrap(), &[]);
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        // 4-wide core on independent single-cycle ops: IPC well above 2.
        assert!(stats.ipc() > 2.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn rob_pressure_is_reported_for_long_latency_chains() {
        // With the serialized BASE engine, matmuls back up and fill the ROB.
        let p = microkernel_program(64);
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert!(stats.rob_full_stalls > 0);
    }

    #[test]
    fn engine_rejection_is_reported() {
        // An ISA with a larger tile geometry produces tiles the paper-sized
        // array cannot hold.
        let isa = rasa_isa::IsaConfig::new(
            rasa_isa::TileGeometry::new(16, 128).unwrap(),
            8,
            rasa_isa::DataType::Bf16,
            rasa_isa::DataType::Fp32,
        )
        .unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let err = c.run(&p).unwrap_err();
        assert!(matches!(err, CpuError::Engine { .. }));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let engine = MatrixEngine::new(SystolicConfig::paper_baseline());
        let mut cfg = CpuConfig::skylake_like();
        cfg.rob_size = 0;
        let mut c = CpuCore::new(cfg, engine);
        let p = microkernel_program(1);
        assert!(matches!(c.run(&p), Err(CpuError::InvalidConfig { .. })));
    }

    #[test]
    fn core_is_reusable_across_runs() {
        let p = microkernel_program(4);
        let mut c = core(PeVariant::Dmdb, ControlScheme::Wls);
        let first = c.run(&p).unwrap();
        let second = c.run(&p).unwrap();
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.retired_instructions, second.retired_instructions);
    }

    #[test]
    fn vector_trace_executes() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        for i in 0..64u8 {
            b.vector_fma(i % 8, 8 + (i % 8), 16 + (i % 8));
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 64);
        assert!(stats.cycles >= 64 / 2);
    }
}
