use crate::sched::EventHeap;
use crate::{CpuConfig, CpuError, CpuStats, SchedStats};
use rasa_isa::{Instruction, InstructionKind, Program, TileReg, NUM_GPR_REGS, NUM_TILE_REGS};
use rasa_systolic::{MatrixEngine, MmRequest, TileDims};
use std::collections::{HashMap, VecDeque};

/// Number of flat vector registers modelled for the AVX baseline traces.
const NUM_VEC_REGS: usize = 32;

/// A reorder-buffer entry.
#[derive(Debug, Clone)]
struct RobEntry {
    kind: InstructionKind,
    issued: bool,
    complete_cycle: u64,
    retired: bool,
    /// Producer references (with multiplicity) that have not completed yet
    /// (event-driven path only). The instruction is ready to issue once
    /// this reaches zero.
    pending: u32,
    /// Sequences of younger instructions waiting on this entry's
    /// completion (event-driven path only; drained by the completion
    /// event, so always empty by the time the entry retires).
    waiters: Vec<u64>,
}

impl RobEntry {
    fn new(kind: InstructionKind) -> Self {
        RobEntry {
            kind,
            issued: false,
            complete_cycle: u64::MAX,
            retired: false,
            pending: 0,
            waiters: Vec::new(),
        }
    }
}

/// A reservation-station entry for the non-matrix functional units
/// (cycle-stepping reference loop only).
#[derive(Debug, Clone)]
struct RsEntry {
    rob_seq: u64,
    kind: InstructionKind,
    producers: Vec<u64>,
}

/// Events handed to the matrix engine in program order: tile-register
/// writes (for dirty-bit maintenance) and `rasa_mm` submissions.
#[derive(Debug, Clone, Copy)]
enum EngineEvent {
    Write(TileReg),
    Matmul {
        rob_seq: u64,
        weight: TileReg,
        tile: TileDims,
    },
}

/// The trace-driven out-of-order core.
///
/// See the crate-level documentation for the modelled pipeline. A `CpuCore`
/// owns its [`MatrixEngine`]; [`CpuCore::run`] executes one program to
/// completion and returns the [`CpuStats`], leaving the engine statistics
/// accessible through [`CpuCore::engine`].
///
/// [`CpuCore::run`] advances time with an event-driven scheduler (see
/// [`SchedStats`] and the `sched` module docs): it steps a cycle only when
/// that cycle can make progress and otherwise jumps straight to the next
/// completion event from its event heap. The original cycle-stepping loop
/// is retained as [`CpuCore::run_reference`]; both produce bit-identical
/// [`CpuStats`] for every program.
#[derive(Debug, Clone)]
pub struct CpuCore {
    config: CpuConfig,
    engine: MatrixEngine,
    sched: SchedStats,
}

impl CpuCore {
    /// Creates a core hosting the given matrix engine.
    #[must_use]
    pub fn new(config: CpuConfig, engine: MatrixEngine) -> Self {
        CpuCore {
            config,
            engine,
            sched: SchedStats::default(),
        }
    }

    /// The core configuration.
    #[must_use]
    pub const fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// The hosted matrix engine (and its statistics).
    #[must_use]
    pub const fn engine(&self) -> &MatrixEngine {
        &self.engine
    }

    /// Scheduler counters of the most recent [`CpuCore::run`] (zeroed by
    /// [`CpuCore::run_reference`], which does not use the event scheduler).
    #[must_use]
    pub const fn sched_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// Executes `program` to completion and returns the run statistics.
    ///
    /// The matrix engine is reset at the start of every run so a single core
    /// can be reused across workloads.
    ///
    /// Time advances event-driven: completion timestamps (functional-unit
    /// latencies, matrix-engine completions converted at the clock ratio)
    /// live in a binary heap, instructions subscribe to their producers'
    /// completions at rename, and the core simulates only cycles on which
    /// the pipeline can move, jumping over idle gaps in one step. The
    /// resulting [`CpuStats`] are bit-identical to
    /// [`CpuCore::run_reference`].
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::InvalidConfig`] for an invalid configuration and
    /// [`CpuError::Engine`] when the engine rejects an instruction (tile
    /// larger than the configured array).
    pub fn run(&mut self, program: &Program) -> Result<CpuStats, CpuError> {
        self.config.validate()?;
        self.engine.reset();
        self.sched = SchedStats::default();

        let instructions = program.instructions();
        let total = instructions.len();
        let mut stats = CpuStats::default();
        if total == 0 {
            return Ok(stats);
        }

        let isa = program.isa();
        let full_tile = TileDims::new(isa.tm(), isa.tk(), isa.tn());
        let clock_ratio = u64::from(self.engine.config().clock_ratio());

        // Architectural register → ROB sequence of the last (program-order)
        // writer that has not yet retired. `None` means the value is ready.
        let mut tile_writer: [Option<u64>; NUM_TILE_REGS] = [None; NUM_TILE_REGS];
        let mut gpr_writer: [Option<u64>; NUM_GPR_REGS] = [None; NUM_GPR_REGS];
        let mut vec_writer: [Option<u64>; NUM_VEC_REGS] = [None; NUM_VEC_REGS];

        // The ROB, indexed by sequence number − rob_base.
        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(self.config.rob_size);
        let mut rob_base: u64 = 0;
        let mut next_seq: u64 = 0;

        // The reservation station: `(rob_seq, kind)` slots scanned exactly
        // like the reference loop's entry vector (ascending sequence at scan
        // start, `swap_remove` on issue), plus incremental readiness — the
        // outstanding-producer count lives in each ROB entry (`pending`)
        // and `rs_ready` counts the station entries whose producers have
        // all completed, so cycles that cannot issue skip the scan
        // entirely.
        let mut rs_slots: Vec<(u64, InstructionKind)> = Vec::with_capacity(self.config.rs_size);
        let mut rs_unsorted = false;
        let mut rs_ready: usize = 0;

        let mut engine_events: VecDeque<EngineEvent> = VecDeque::new();

        let mut events = EventHeap::default();

        let mut next_fetch = 0usize; // next program index to rename
        let mut retired = 0usize;
        // The front end delivers the first instructions after the pipeline
        // depth has elapsed.
        let mut cycle: u64 = self.config.frontend_depth;

        // Delivers every completion event due by `now`: each popped event
        // wakes the instructions subscribed to that producer, moving
        // fully-resolved reservation-station entries into the ready pool.
        let drain_due = |now: u64,
                         events: &mut EventHeap,
                         rob: &mut VecDeque<RobEntry>,
                         rob_base: u64,
                         rs_ready: &mut usize,
                         sched: &mut SchedStats| {
            while let Some((_, seq)) = events.pop_due(now) {
                sched.completion_events += 1;
                debug_assert!(seq >= rob_base, "completion for retired entry");
                let waiters = std::mem::take(&mut rob[(seq - rob_base) as usize].waiters);
                for consumer in waiters {
                    sched.wakeups += 1;
                    let entry = &mut rob[(consumer - rob_base) as usize];
                    entry.pending -= 1;
                    if entry.pending == 0 && !matches!(entry.kind, InstructionKind::MatMul) {
                        *rs_ready += 1;
                    }
                }
            }
        };

        loop {
            self.sched.visited_cycles += 1;
            drain_due(
                cycle,
                &mut events,
                &mut rob,
                rob_base,
                &mut rs_ready,
                &mut self.sched,
            );

            let mut progress = false;

            // ---- Retire (in order) -------------------------------------
            let mut retired_this_cycle = 0;
            while retired_this_cycle < self.config.retire_width {
                let Some(front) = rob.front() else { break };
                if !(front.issued && front.complete_cycle <= cycle && !front.retired) {
                    break;
                }
                let entry = rob.pop_front().expect("front exists");
                debug_assert!(entry.waiters.is_empty(), "waiters outlive completion");
                rob_base += 1;
                retired += 1;
                retired_this_cycle += 1;
                progress = true;
                stats.retired_instructions += 1;
                match entry.kind {
                    InstructionKind::MatMul => stats.retired_matmuls += 1,
                    InstructionKind::TileLoad | InstructionKind::TileStore => {
                        stats.retired_tile_memory_ops += 1;
                    }
                    _ => {}
                }
            }
            if retired == total {
                stats.cycles = cycle;
                break;
            }

            // ---- Issue to functional units ------------------------------
            let mut issued_this_cycle = 0;
            let mut alu_used = 0;
            let mut lsu_used = 0;
            let mut vec_used = 0;

            // Matrix-engine events are processed in program order.
            while issued_this_cycle < self.config.issue_width {
                match engine_events.front() {
                    Some(EngineEvent::Write(reg)) => {
                        self.engine.note_tile_write(*reg);
                        engine_events.pop_front();
                    }
                    Some(EngineEvent::Matmul {
                        rob_seq,
                        weight,
                        tile,
                    }) => {
                        let seq = *rob_seq;
                        if rob[(seq - rob_base) as usize].pending > 0 {
                            break;
                        }
                        let engine_ready = cycle.div_ceil(clock_ratio);
                        let request = MmRequest::ready_at(*weight, *tile, engine_ready);
                        self.engine
                            .submit(request)
                            .map_err(|source| CpuError::Engine {
                                instruction_index: (seq) as usize,
                                source,
                            })?;
                        // The engine reports the completion as a timestamped
                        // event; convert it to core cycles and schedule it.
                        for completion in self.engine.take_completions() {
                            let complete = completion.complete_cycle * clock_ratio;
                            let idx = (seq - rob_base) as usize;
                            rob[idx].issued = true;
                            rob[idx].complete_cycle = complete;
                            events.push(complete, seq);
                        }
                        engine_events.pop_front();
                        issued_this_cycle += 1;
                        progress = true;
                        drain_due(
                            cycle,
                            &mut events,
                            &mut rob,
                            rob_base,
                            &mut rs_ready,
                            &mut self.sched,
                        );
                    }
                    None => break,
                }
            }

            // Ordinary reservation-station issue. The scan replicates the
            // reference loop exactly — ascending-sequence order at scan
            // start, `swap_remove` on issue (which perturbs the in-scan
            // order), port-first checks — but runs only when at least one
            // entry is actually ready.
            if issued_this_cycle < self.config.issue_width && rs_ready > 0 {
                if rs_unsorted {
                    rs_slots.sort_unstable_by_key(|(seq, _)| *seq);
                    rs_unsorted = false;
                }
                let mut i = 0;
                while i < rs_slots.len() && issued_this_cycle < self.config.issue_width {
                    let (seq, kind) = rs_slots[i];
                    let port_free = match kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => alu_used < self.config.alu_units,
                        InstructionKind::TileLoad
                        | InstructionKind::TileStore
                        | InstructionKind::ScalarLoad => lsu_used < self.config.lsu_ports,
                        InstructionKind::VectorFma => vec_used < self.config.vector_units,
                        InstructionKind::MatMul => false,
                    };
                    if !port_free {
                        i += 1;
                        continue;
                    }
                    if rob[(seq - rob_base) as usize].pending > 0 {
                        i += 1;
                        continue;
                    }
                    let latency = match kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => {
                            alu_used += 1;
                            self.config.alu_latency
                        }
                        InstructionKind::TileLoad => {
                            lsu_used += 1;
                            self.config.tile_load_latency
                        }
                        InstructionKind::TileStore => {
                            lsu_used += 1;
                            self.config.tile_store_latency
                        }
                        InstructionKind::ScalarLoad => {
                            lsu_used += 1;
                            self.config.scalar_load_latency
                        }
                        InstructionKind::VectorFma => {
                            vec_used += 1;
                            self.config.vector_latency
                        }
                        InstructionKind::MatMul => unreachable!("handled via engine events"),
                    };
                    let idx = (seq - rob_base) as usize;
                    rob[idx].issued = true;
                    rob[idx].complete_cycle = cycle + latency;
                    events.push(cycle + latency, seq);
                    rs_slots.swap_remove(i);
                    if i < rs_slots.len() {
                        rs_unsorted = true;
                    }
                    rs_ready -= 1;
                    issued_this_cycle += 1;
                    progress = true;
                    // Zero-latency units complete within this very cycle;
                    // wake their consumers so the rest of the scan sees
                    // them, exactly as the reference loop's fresh
                    // completion checks would.
                    drain_due(
                        cycle,
                        &mut events,
                        &mut rob,
                        rob_base,
                        &mut rs_ready,
                        &mut self.sched,
                    );
                    // Do not advance `i`: swap_remove moved a new entry here.
                }
            }

            // ---- Rename / dispatch --------------------------------------
            let mut renamed_this_cycle = 0;
            while renamed_this_cycle < self.config.fetch_width && next_fetch < total {
                if rob.len() >= self.config.rob_size {
                    stats.rob_full_stalls += 1;
                    break;
                }
                let inst = &instructions[next_fetch];
                let kind = inst.kind();
                let needs_rs = !matches!(kind, InstructionKind::MatMul);
                if needs_rs && rs_slots.len() >= self.config.rs_size {
                    stats.rs_full_stalls += 1;
                    break;
                }
                let seq = next_seq;

                // Subscribe to the producers named by the current renaming
                // map: each incomplete producer gets this instruction on
                // its waiter list (with multiplicity — a producer feeding
                // two operands wakes this instruction twice, matching the
                // two pending references counted here).
                let mut pending: u32 = 0;
                let subscribe = |producer: u64, rob: &mut VecDeque<RobEntry>, pending: &mut u32| {
                    if producer < rob_base {
                        return; // retired, hence complete
                    }
                    let idx = (producer - rob_base) as usize;
                    if rob[idx].issued && rob[idx].complete_cycle <= cycle {
                        return; // already complete
                    }
                    rob[idx].waiters.push(seq);
                    *pending += 1;
                };
                for r in inst.tile_reads().iter() {
                    if let Some(p) = tile_writer[r.index()] {
                        subscribe(p, &mut rob, &mut pending);
                    }
                }
                for r in inst.gpr_reads().iter() {
                    if let Some(p) = gpr_writer[r.index()] {
                        subscribe(p, &mut rob, &mut pending);
                    }
                }
                if let Instruction::VectorFma { dst, src1, src2 } = inst {
                    for r in [dst, src1, src2] {
                        if let Some(p) = vec_writer[*r as usize % NUM_VEC_REGS] {
                            subscribe(p, &mut rob, &mut pending);
                        }
                    }
                }

                // Dispatch either to the matrix-engine event queue or the RS.
                match inst {
                    Instruction::MatMul { acc, a: _, b } => {
                        engine_events.push_back(EngineEvent::Matmul {
                            rob_seq: seq,
                            weight: *b,
                            tile: full_tile,
                        });
                        // The destination write is visible to the engine's
                        // dirty-bit logic after the instruction itself.
                        engine_events.push_back(EngineEvent::Write(*acc));
                    }
                    _ => {
                        for w in inst.tile_writes().iter() {
                            engine_events.push_back(EngineEvent::Write(w));
                        }
                        // Sequences grow monotonically, so appending keeps
                        // the slot vector sorted.
                        rs_slots.push((seq, kind));
                        if pending == 0 {
                            rs_ready += 1;
                        }
                    }
                }

                // Update the renaming map with this instruction's writes.
                for w in inst.tile_writes().iter() {
                    tile_writer[w.index()] = Some(seq);
                }
                for w in inst.gpr_writes().iter() {
                    gpr_writer[w.index()] = Some(seq);
                }
                if let Instruction::VectorFma { dst, .. } = inst {
                    vec_writer[*dst as usize % NUM_VEC_REGS] = Some(seq);
                }

                let mut entry = RobEntry::new(kind);
                entry.pending = pending;
                rob.push_back(entry);
                next_seq += 1;
                next_fetch += 1;
                renamed_this_cycle += 1;
                progress = true;
            }

            // ---- Advance time -------------------------------------------
            if progress {
                cycle += 1;
            } else {
                // Nothing moved: jump straight to the next completion
                // event. Every event still in the heap is strictly in the
                // future (due events were drained above), so the heap's
                // minimum is exactly the reference loop's "next completion
                // of an issued, incomplete ROB entry".
                match events.next_time() {
                    Some(wake) => {
                        debug_assert!(wake > cycle, "due events were drained");
                        self.sched.skipped_cycles += wake - cycle - 1;
                        cycle = wake;
                    }
                    None => {
                        // No instruction in flight can unblock us; this only
                        // happens if the program deadlocks, which a validated
                        // program cannot do — but guard against it anyway.
                        return Err(CpuError::InvalidConfig {
                            reason: "pipeline deadlock: no in-flight completion can unblock"
                                .to_string(),
                        });
                    }
                }
            }
        }

        stats.engine = *self.engine.stats();
        Ok(stats)
    }

    /// Executes `program` with the original cycle-stepping pipeline loop.
    ///
    /// This is the pre-event-driven implementation, retained as the golden
    /// reference: it advances cycle by cycle (with the narrow ROB-only
    /// skip-ahead it always had), re-deriving readiness from scratch each
    /// step. [`CpuCore::run`] must produce bit-identical [`CpuStats`];
    /// parity tests and the `run_all` timing comparison rely on this
    /// method. Scheduler counters ([`CpuCore::sched_stats`]) are zeroed.
    ///
    /// # Errors
    ///
    /// Identical to [`CpuCore::run`].
    pub fn run_reference(&mut self, program: &Program) -> Result<CpuStats, CpuError> {
        self.config.validate()?;
        self.engine.reset();
        self.sched = SchedStats::default();

        let instructions = program.instructions();
        let total = instructions.len();
        let mut stats = CpuStats::default();
        if total == 0 {
            return Ok(stats);
        }

        let isa = program.isa();
        let full_tile = TileDims::new(isa.tm(), isa.tk(), isa.tn());
        let clock_ratio = u64::from(self.engine.config().clock_ratio());

        let mut tile_writer: [Option<u64>; NUM_TILE_REGS] = [None; NUM_TILE_REGS];
        let mut gpr_writer: [Option<u64>; NUM_GPR_REGS] = [None; NUM_GPR_REGS];
        let mut vec_writer: [Option<u64>; NUM_VEC_REGS] = [None; NUM_VEC_REGS];

        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(self.config.rob_size);
        let mut rob_base: u64 = 0;
        let mut next_seq: u64 = 0;

        let mut rs: Vec<RsEntry> = Vec::with_capacity(self.config.rs_size);
        let mut engine_events: VecDeque<EngineEvent> = VecDeque::new();
        // Producers of each pending matmul, looked up when it reaches the
        // head of the engine-event queue.
        let mut matmul_producers: HashMap<u64, Vec<u64>> = HashMap::new();

        let mut next_fetch = 0usize;
        let mut retired = 0usize;
        let mut cycle: u64 = self.config.frontend_depth;

        let entry_completed = |rob: &VecDeque<RobEntry>, rob_base: u64, seq: u64, now: u64| {
            // Anything older than the ROB window has retired and is complete.
            if seq < rob_base {
                return true;
            }
            let entry = &rob[(seq - rob_base) as usize];
            entry.issued && entry.complete_cycle <= now
        };

        loop {
            let mut progress = false;

            // ---- Retire (in order) -------------------------------------
            let mut retired_this_cycle = 0;
            while retired_this_cycle < self.config.retire_width {
                let Some(front) = rob.front() else { break };
                if !(front.issued && front.complete_cycle <= cycle && !front.retired) {
                    break;
                }
                let entry = rob.pop_front().expect("front exists");
                rob_base += 1;
                retired += 1;
                retired_this_cycle += 1;
                progress = true;
                stats.retired_instructions += 1;
                match entry.kind {
                    InstructionKind::MatMul => stats.retired_matmuls += 1,
                    InstructionKind::TileLoad | InstructionKind::TileStore => {
                        stats.retired_tile_memory_ops += 1;
                    }
                    _ => {}
                }
            }
            if retired == total {
                stats.cycles = cycle;
                break;
            }

            // ---- Issue to functional units ------------------------------
            let mut issued_this_cycle = 0;
            let mut alu_used = 0;
            let mut lsu_used = 0;
            let mut vec_used = 0;

            // Matrix-engine events are processed in program order.
            while issued_this_cycle < self.config.issue_width {
                match engine_events.front() {
                    Some(EngineEvent::Write(reg)) => {
                        self.engine.note_tile_write(*reg);
                        engine_events.pop_front();
                    }
                    Some(EngineEvent::Matmul {
                        rob_seq,
                        weight,
                        tile,
                    }) => {
                        let seq = *rob_seq;
                        let producers = matmul_producers
                            .get(&seq)
                            .expect("producers recorded at rename");
                        let ready = producers
                            .iter()
                            .all(|&p| entry_completed(&rob, rob_base, p, cycle));
                        if !ready {
                            break;
                        }
                        let engine_ready = cycle.div_ceil(clock_ratio);
                        let request = MmRequest::ready_at(*weight, *tile, engine_ready);
                        let completion =
                            self.engine
                                .submit(request)
                                .map_err(|source| CpuError::Engine {
                                    instruction_index: (seq) as usize,
                                    source,
                                })?;
                        let idx = (seq - rob_base) as usize;
                        rob[idx].issued = true;
                        rob[idx].complete_cycle = completion.complete_cycle * clock_ratio;
                        matmul_producers.remove(&seq);
                        engine_events.pop_front();
                        issued_this_cycle += 1;
                        progress = true;
                    }
                    None => break,
                }
            }

            // Ordinary reservation-station issue, oldest first.
            if issued_this_cycle < self.config.issue_width && !rs.is_empty() {
                rs.sort_unstable_by_key(|e| e.rob_seq);
                let mut i = 0;
                while i < rs.len() && issued_this_cycle < self.config.issue_width {
                    let entry = &rs[i];
                    let port_free = match entry.kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => alu_used < self.config.alu_units,
                        InstructionKind::TileLoad
                        | InstructionKind::TileStore
                        | InstructionKind::ScalarLoad => lsu_used < self.config.lsu_ports,
                        InstructionKind::VectorFma => vec_used < self.config.vector_units,
                        InstructionKind::MatMul => false,
                    };
                    if !port_free {
                        i += 1;
                        continue;
                    }
                    let ready = entry
                        .producers
                        .iter()
                        .all(|&p| entry_completed(&rob, rob_base, p, cycle));
                    if !ready {
                        i += 1;
                        continue;
                    }
                    let latency = match entry.kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => {
                            alu_used += 1;
                            self.config.alu_latency
                        }
                        InstructionKind::TileLoad => {
                            lsu_used += 1;
                            self.config.tile_load_latency
                        }
                        InstructionKind::TileStore => {
                            lsu_used += 1;
                            self.config.tile_store_latency
                        }
                        InstructionKind::ScalarLoad => {
                            lsu_used += 1;
                            self.config.scalar_load_latency
                        }
                        InstructionKind::VectorFma => {
                            vec_used += 1;
                            self.config.vector_latency
                        }
                        InstructionKind::MatMul => unreachable!("handled via engine events"),
                    };
                    let seq = entry.rob_seq;
                    let idx = (seq - rob_base) as usize;
                    rob[idx].issued = true;
                    rob[idx].complete_cycle = cycle + latency;
                    rs.swap_remove(i);
                    issued_this_cycle += 1;
                    progress = true;
                    // Do not advance `i`: swap_remove moved a new entry here.
                }
            }

            // ---- Rename / dispatch --------------------------------------
            let mut renamed_this_cycle = 0;
            while renamed_this_cycle < self.config.fetch_width && next_fetch < total {
                if rob.len() >= self.config.rob_size {
                    stats.rob_full_stalls += 1;
                    break;
                }
                let inst = &instructions[next_fetch];
                let kind = inst.kind();
                let needs_rs = !matches!(kind, InstructionKind::MatMul);
                if needs_rs && rs.len() >= self.config.rs_size {
                    stats.rs_full_stalls += 1;
                    break;
                }
                let seq = next_seq;

                // Collect producers from the current renaming map.
                let mut producers = Vec::new();
                for r in inst.tile_reads().iter() {
                    if let Some(p) = tile_writer[r.index()] {
                        producers.push(p);
                    }
                }
                for r in inst.gpr_reads().iter() {
                    if let Some(p) = gpr_writer[r.index()] {
                        producers.push(p);
                    }
                }
                if let Instruction::VectorFma { dst, src1, src2 } = inst {
                    for r in [dst, src1, src2] {
                        if let Some(p) = vec_writer[*r as usize % NUM_VEC_REGS] {
                            producers.push(p);
                        }
                    }
                }

                // Dispatch either to the matrix-engine event queue or the RS.
                match inst {
                    Instruction::MatMul { acc, a: _, b } => {
                        engine_events.push_back(EngineEvent::Matmul {
                            rob_seq: seq,
                            weight: *b,
                            tile: full_tile,
                        });
                        matmul_producers.insert(seq, producers);
                        // The destination write is visible to the engine's
                        // dirty-bit logic after the instruction itself.
                        engine_events.push_back(EngineEvent::Write(*acc));
                    }
                    _ => {
                        for w in inst.tile_writes().iter() {
                            engine_events.push_back(EngineEvent::Write(w));
                        }
                        rs.push(RsEntry {
                            rob_seq: seq,
                            kind,
                            producers,
                        });
                    }
                }

                // Update the renaming map with this instruction's writes.
                for w in inst.tile_writes().iter() {
                    tile_writer[w.index()] = Some(seq);
                }
                for w in inst.gpr_writes().iter() {
                    gpr_writer[w.index()] = Some(seq);
                }
                if let Instruction::VectorFma { dst, .. } = inst {
                    vec_writer[*dst as usize % NUM_VEC_REGS] = Some(seq);
                }

                rob.push_back(RobEntry::new(kind));
                next_seq += 1;
                next_fetch += 1;
                renamed_this_cycle += 1;
                progress = true;
            }

            // ---- Advance time -------------------------------------------
            if progress {
                cycle += 1;
            } else {
                // Nothing moved: jump to the next completion event instead
                // of spinning cycle by cycle.
                //
                // Skip-ahead audit: deriving the wake cycle only from issued
                // ROB entries is sound for this pipeline. No-progress means
                // rename is blocked by a full ROB/RS (which only drains at
                // retire, i.e. after a completion), every RS entry and the
                // engine-event head are waiting on an incomplete producer,
                // and nothing retired — and by induction the oldest
                // unissued instruction only waits on *issued* producers, so
                // some in-flight completion exists unless the program is
                // truly finished or deadlocked. The minimum such completion
                // is therefore the exact next cycle on which any stage can
                // move; rename/RS-only progress before it is impossible.
                // The event-driven loop's heap jump relies on the same
                // argument, and the `skip_ahead_*` regression tests plus
                // the cross-crate parity proptests pin this behaviour.
                let next_completion = rob
                    .iter()
                    .filter(|e| e.issued && e.complete_cycle > cycle)
                    .map(|e| e.complete_cycle)
                    .min();
                match next_completion {
                    Some(c) => cycle = c,
                    None => {
                        // No instruction in flight can unblock us; this only
                        // happens if the program deadlocks, which a validated
                        // program cannot do — but guard against it anyway.
                        return Err(CpuError::InvalidConfig {
                            reason: "pipeline deadlock: no in-flight completion can unblock"
                                .to_string(),
                        });
                    }
                }
            }
        }

        // The reference loop consumes completions synchronously; drop the
        // event records the engine accumulated for event-driven hosts.
        self.engine.take_completions();

        stats.engine = *self.engine.stats();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_isa::{GprReg, IsaConfig, MemRef, ProgramBuilder};
    use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    fn core(pe: PeVariant, scheme: ControlScheme) -> CpuCore {
        let engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
        CpuCore::new(CpuConfig::skylake_like(), engine)
    }

    /// Emits `k_steps` iterations of the Algorithm-1 micro-kernel (2 A × 2 B
    /// register blocking, 4 accumulators).
    fn microkernel_program(k_steps: usize) -> Program {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        b.set_name("microkernel");
        for i in 0..4u8 {
            b.tile_load(treg(i), MemRef::tile(u64::from(i) * 0x400, 64));
        }
        for k in 0..k_steps {
            let base = 0x10_000 + (k as u64) * 0x2000;
            b.tile_load(treg(4), MemRef::tile(base, 64));
            b.tile_load(treg(6), MemRef::tile(base + 0x400, 64));
            b.matmul(treg(0), treg(6), treg(4));
            b.tile_load(treg(7), MemRef::tile(base + 0x800, 64));
            b.matmul(treg(1), treg(7), treg(4));
            b.tile_load(treg(5), MemRef::tile(base + 0xc00, 64));
            b.matmul(treg(2), treg(6), treg(5));
            b.matmul(treg(3), treg(7), treg(5));
        }
        for i in 0..4u8 {
            b.tile_store(MemRef::tile(u64::from(i) * 0x400, 64), treg(i));
        }
        b.finish().unwrap()
    }

    #[test]
    fn empty_program_runs_instantly() {
        let p = ProgramBuilder::new(IsaConfig::amx_like()).finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.retired_instructions, 0);
    }

    #[test]
    fn single_matmul_latency_includes_engine_and_frontend() {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();

        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 4);
        assert_eq!(stats.retired_matmuls, 1);
        // The run must at least cover the front end, the tile loads and the
        // 95-engine-cycle (380-core-cycle) matmul.
        assert!(stats.cycles >= 380);
        // …but not be absurdly long either.
        assert!(stats.cycles < 600);
    }

    #[test]
    fn all_instructions_retire_exactly_once() {
        let p = microkernel_program(8);
        let mut c = core(PeVariant::Baseline, ControlScheme::Wlbp);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions as usize, p.len());
        assert_eq!(stats.retired_matmuls as usize, p.count_matmuls());
        assert_eq!(stats.engine.matmuls as usize, p.count_matmuls());
    }

    #[test]
    fn pipelining_schemes_preserve_runtime_ordering() {
        let p = microkernel_program(32);
        let designs = [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Baseline, ControlScheme::Pipe),
            (PeVariant::Baseline, ControlScheme::Wlbp),
            (PeVariant::Dm, ControlScheme::Wlbp),
            (PeVariant::Db, ControlScheme::Wls),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ];
        let mut cycles = Vec::new();
        for (pe, scheme) in designs {
            let mut c = core(pe, scheme);
            cycles.push(c.run(&p).unwrap().cycles);
        }
        for pair in cycles.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "runtimes should improve monotonically: {cycles:?}"
            );
        }
        // The most aggressive design is far faster than the baseline.
        assert!(cycles[0] as f64 / *cycles.last().unwrap() as f64 > 2.5);
    }

    #[test]
    fn wlbp_bypasses_half_the_matmuls_on_algorithm1_blocking() {
        let p = microkernel_program(64);
        let mut c = core(PeVariant::Baseline, ControlScheme::Wlbp);
        let stats = c.run(&p).unwrap();
        // Each k-step has 4 matmuls of which 2 reuse the weight register.
        let rate = stats.engine.bypass_rate();
        assert!(rate > 0.40 && rate <= 0.55, "bypass rate {rate}");
    }

    #[test]
    fn scalar_dependencies_are_respected() {
        // A chain of dependent ALU instructions retires in bounded time and
        // the chain length is reflected in the cycle count.
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        let r0 = GprReg::new(0).unwrap();
        for _ in 0..64 {
            b.scalar_alu(r0, &[r0]);
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 64);
        // A fully serial 64-deep chain needs at least 64 execute cycles.
        assert!(stats.cycles >= 64);
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        for i in 0u16..256 {
            b.scalar_alu(GprReg::new((i % 16) as u8).unwrap(), &[]);
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        // 4-wide core on independent single-cycle ops: IPC well above 2.
        assert!(stats.ipc() > 2.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn rob_pressure_is_reported_for_long_latency_chains() {
        // With the serialized BASE engine, matmuls back up and fill the ROB.
        let p = microkernel_program(64);
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert!(stats.rob_full_stalls > 0);
    }

    #[test]
    fn engine_rejection_is_reported() {
        // An ISA with a larger tile geometry produces tiles the paper-sized
        // array cannot hold.
        let isa = rasa_isa::IsaConfig::new(
            rasa_isa::TileGeometry::new(16, 128).unwrap(),
            8,
            rasa_isa::DataType::Bf16,
            rasa_isa::DataType::Fp32,
        )
        .unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let err = c.run(&p).unwrap_err();
        assert!(matches!(err, CpuError::Engine { .. }));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let engine = MatrixEngine::new(SystolicConfig::paper_baseline());
        let mut cfg = CpuConfig::skylake_like();
        cfg.rob_size = 0;
        let mut c = CpuCore::new(cfg, engine);
        let p = microkernel_program(1);
        assert!(matches!(c.run(&p), Err(CpuError::InvalidConfig { .. })));
    }

    #[test]
    fn core_is_reusable_across_runs() {
        let p = microkernel_program(4);
        let mut c = core(PeVariant::Dmdb, ControlScheme::Wls);
        let first = c.run(&p).unwrap();
        let second = c.run(&p).unwrap();
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.retired_instructions, second.retired_instructions);
    }

    #[test]
    fn vector_trace_executes() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        for i in 0..64u8 {
            b.vector_fma(i % 8, 8 + (i % 8), 16 + (i % 8));
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 64);
        assert!(stats.cycles >= 64 / 2);
    }

    // ---- Event-driven scheduler parity and regression tests -------------

    /// Every paper design point, for the parity sweeps below.
    fn all_designs() -> [(PeVariant, ControlScheme); 6] {
        [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Baseline, ControlScheme::Pipe),
            (PeVariant::Baseline, ControlScheme::Wlbp),
            (PeVariant::Dm, ControlScheme::Wlbp),
            (PeVariant::Db, ControlScheme::Wls),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ]
    }

    fn assert_parity(program: &Program, what: &str) {
        for (pe, scheme) in all_designs() {
            let mut c = core(pe, scheme);
            let event = c.run(program).unwrap();
            let reference = c.run_reference(program).unwrap();
            assert_eq!(
                event, reference,
                "{what} on {pe:?}/{scheme:?}: event-driven stats diverge"
            );
        }
    }

    #[test]
    fn event_core_matches_reference_on_microkernels() {
        for k_steps in [1, 2, 7, 32] {
            assert_parity(&microkernel_program(k_steps), "microkernel");
        }
    }

    #[test]
    fn event_core_matches_reference_on_scalar_and_vector_mixes() {
        let isa = IsaConfig::amx_like();

        // Dependent ALU chain interleaved with independent work.
        let mut b = ProgramBuilder::new(isa);
        let r0 = GprReg::new(0).unwrap();
        for i in 0..48u16 {
            b.scalar_alu(r0, &[r0]);
            b.scalar_alu(GprReg::new((1 + i % 15) as u8).unwrap(), &[]);
            b.vector_fma((i % 8) as u8, 8 + (i % 8) as u8, 16 + (i % 8) as u8);
        }
        assert_parity(&b.finish().unwrap(), "scalar/vector mix");

        // Loads feeding stores through tile registers, with scalar loads.
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        for i in 0..32u8 {
            let reg = treg(i % 8);
            b.tile_load(reg, MemRef::tile(u64::from(i) * 0x400, 64));
            if i % 3 == 0 {
                b.push(Instruction::ScalarLoad {
                    dst: GprReg::new(i % 16).unwrap(),
                    base: Some(GprReg::new((i + 1) % 16).unwrap()),
                });
            }
            b.tile_store(MemRef::tile(u64::from(i) * 0x400, 64), reg);
        }
        assert_parity(&b.finish().unwrap(), "load/store mix");
    }

    #[test]
    fn event_core_matches_reference_under_tiny_buffers() {
        // Small ROB/RS force every stall path (rob_full, rs_full) and the
        // skip-ahead, so parity here covers the stall accounting too.
        let p = microkernel_program(12);
        for (rob_size, rs_size) in [(8, 4), (16, 2), (97, 60)] {
            for (pe, scheme) in all_designs() {
                let mut cfg = CpuConfig::skylake_like();
                cfg.rob_size = rob_size;
                cfg.rs_size = rs_size;
                let engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
                let mut c = CpuCore::new(cfg, engine);
                let event = c.run(&p).unwrap();
                let reference = c.run_reference(&p).unwrap();
                assert_eq!(
                    event, reference,
                    "ROB {rob_size} / RS {rs_size} on {pe:?}/{scheme:?}"
                );
                assert!(event.rob_full_stalls > 0 || rob_size == 97);
            }
        }
    }

    #[test]
    fn skip_ahead_wakes_rename_after_long_engine_gaps() {
        // Regression test for the skip-ahead audit (ISSUE 3): with the
        // serialized BASE engine and a tiny ROB, the core repeatedly jumps
        // over multi-hundred-cycle engine gaps while rename is blocked.
        // The jump must land exactly on the completion that unblocks
        // retirement so rename-only progress resumes without spinning or
        // overshooting: every instruction still retires, and the
        // event-driven and reference cores agree bit for bit.
        let p = microkernel_program(16);
        let mut cfg = CpuConfig::skylake_like();
        cfg.rob_size = 6; // smaller than one k-step's instruction count
        let engine = MatrixEngine::new(
            SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base).unwrap(),
        );
        let mut c = CpuCore::new(cfg, engine);
        let event = c.run(&p).unwrap();
        let sched = *c.sched_stats();
        let reference = c.run_reference(&p).unwrap();
        assert_eq!(event, reference);
        assert_eq!(event.retired_instructions as usize, p.len());
        // The engine gaps dominate the run: most of the timeline is jumped
        // over, not stepped.
        assert!(
            sched.skipped_cycles > sched.visited_cycles,
            "expected mostly-skipped timeline, got {sched:?}"
        );
        // Each visited-but-blocked cycle contributes exactly one stall, so
        // the stall count stays far below the total cycle count (the spin
        // failure mode would count thousands).
        assert!(event.rob_full_stalls < sched.visited_cycles);
    }

    #[test]
    fn sched_stats_cover_the_whole_timeline() {
        let p = microkernel_program(8);
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        let sched = *c.sched_stats();
        // Visited + skipped cycles tile the interval from the first fetch
        // to the final cycle exactly.
        assert_eq!(
            sched.visited_cycles + sched.skipped_cycles,
            stats.cycles - CpuConfig::skylake_like().frontend_depth + 1
        );
        // One completion event per issued instruction, one or more wakeups
        // per dependence edge that was in flight.
        assert_eq!(sched.completion_events, stats.retired_instructions);
        assert!(sched.wakeups > 0);
        assert!(sched.skip_rate() > 0.0);
        // The reference loop reports no scheduler activity.
        c.run_reference(&p).unwrap();
        assert_eq!(*c.sched_stats(), SchedStats::default());
    }

    #[test]
    fn deadlock_guard_matches_reference() {
        // A single 0-latency-free program cannot deadlock; instead check
        // that both paths report the identical error for an engine
        // rejection mid-run (the only reachable error class).
        let isa = rasa_isa::IsaConfig::new(
            rasa_isa::TileGeometry::new(16, 128).unwrap(),
            8,
            rasa_isa::DataType::Bf16,
            rasa_isa::DataType::Fp32,
        )
        .unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let event = c.run(&p).unwrap_err();
        let reference = c.run_reference(&p).unwrap_err();
        assert_eq!(event, reference);
    }
}
