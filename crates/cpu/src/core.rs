use crate::sched::EventHeap;
use crate::stats::StreamStats;
use crate::{CpuConfig, CpuError, CpuStats, SchedStats};
use rasa_isa::{
    Instruction, InstructionKind, IsaConfig, Program, ProgramSegment, TileReg, NUM_GPR_REGS,
    NUM_TILE_REGS,
};
use rasa_systolic::{MatrixEngine, MmRequest, TileDims};
use std::collections::{HashMap, VecDeque};

/// Number of flat vector registers modelled for the AVX baseline traces.
const NUM_VEC_REGS: usize = 32;

/// A reorder-buffer entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RobEntry {
    kind: InstructionKind,
    issued: bool,
    complete_cycle: u64,
    retired: bool,
    /// Producer references (with multiplicity) that have not completed yet
    /// (event-driven path only). The instruction is ready to issue once
    /// this reaches zero.
    pending: u32,
    /// Sequences of younger instructions waiting on this entry's
    /// completion (event-driven path only; drained by the completion
    /// event, so always empty by the time the entry retires).
    waiters: Vec<u64>,
}

impl RobEntry {
    fn new(kind: InstructionKind) -> Self {
        RobEntry {
            kind,
            issued: false,
            complete_cycle: u64::MAX,
            retired: false,
            pending: 0,
            waiters: Vec::new(),
        }
    }
}

/// A reservation-station entry for the non-matrix functional units
/// (cycle-stepping reference loop only).
#[derive(Debug, Clone)]
struct RsEntry {
    rob_seq: u64,
    kind: InstructionKind,
    producers: Vec<u64>,
}

/// Events handed to the matrix engine in program order: tile-register
/// writes (for dirty-bit maintenance) and `rasa_mm` submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineEvent {
    Write(TileReg),
    Matmul {
        rob_seq: u64,
        weight: TileReg,
        tile: TileDims,
    },
}

/// Where a paused streaming run resumes inside its current cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RunPhase {
    /// At the top of a not-yet-simulated cycle.
    TopOfCycle,
    /// Mid-rename within the current cycle: retire and issue already ran,
    /// `renamed` instructions were dispatched so far, and `progress`
    /// records whether any stage moved this cycle.
    Rename { progress: bool, renamed: usize },
}

/// The explicit boundary state of a resumable (streaming) execution.
///
/// Created by [`CpuCore::begin_run`]; advanced by [`CpuCore::feed_segment`]
/// / [`CpuCore::feed_instructions`]; completed by
/// [`CpuCore::run_to_quiescence`]. Between feeds the run is **paused at an
/// exact pipeline boundary**: the core stops the moment rename wants an
/// instruction that has not been fed yet (mid-cycle, before any stall is
/// mis-counted), so the statistics of a segment-wise execution are
/// bit-identical to a one-shot [`CpuCore::run`] of the concatenated
/// trace — however the trace is sliced.
///
/// The state is checkpointable: `CoreRun` is `Clone`, and cloning it
/// together with its core (which owns the matrix engine) snapshots the
/// whole execution; both copies can then be driven independently and
/// produce identical results for identical remaining feeds.
#[derive(Debug)]
pub struct CoreRun {
    isa: IsaConfig,
    /// The core run id this run was opened under (see `CpuCore::run_id`).
    run_id: u64,
    config: CpuConfig,
    full_tile: TileDims,
    clock_ratio: u64,
    tile_writer: [Option<u64>; NUM_TILE_REGS],
    gpr_writer: [Option<u64>; NUM_GPR_REGS],
    vec_writer: [Option<u64>; NUM_VEC_REGS],
    rob: VecDeque<RobEntry>,
    rob_base: u64,
    next_seq: u64,
    rs_slots: Vec<(u64, InstructionKind)>,
    rs_unsorted: bool,
    rs_ready: usize,
    engine_events: VecDeque<EngineEvent>,
    events: EventHeap,
    /// Fed-but-not-yet-renamed instructions (the resident window).
    pending: VecDeque<Instruction>,
    fed: usize,
    retired: usize,
    cycle: u64,
    phase: RunPhase,
    finalized: bool,
    done: bool,
    stats: CpuStats,
    sched: SchedStats,
    stream: StreamStats,
}

// Manual impl so `clone_from` reuses the target's heap buffers (ROB,
// reservation station, event heap, pending window) instead of allocating
// fresh ones — the derived impl would allocate-and-replace. Speculation
// forks checkpoint state every wave, so this is a hot path.
impl Clone for CoreRun {
    fn clone(&self) -> Self {
        CoreRun {
            isa: self.isa,
            run_id: self.run_id,
            config: self.config,
            full_tile: self.full_tile,
            clock_ratio: self.clock_ratio,
            tile_writer: self.tile_writer,
            gpr_writer: self.gpr_writer,
            vec_writer: self.vec_writer,
            rob: self.rob.clone(),
            rob_base: self.rob_base,
            next_seq: self.next_seq,
            rs_slots: self.rs_slots.clone(),
            rs_unsorted: self.rs_unsorted,
            rs_ready: self.rs_ready,
            engine_events: self.engine_events.clone(),
            events: self.events.clone(),
            pending: self.pending.clone(),
            fed: self.fed,
            retired: self.retired,
            cycle: self.cycle,
            phase: self.phase,
            finalized: self.finalized,
            done: self.done,
            stats: self.stats,
            sched: self.sched,
            stream: self.stream,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.isa = source.isa;
        self.run_id = source.run_id;
        self.config = source.config;
        self.full_tile = source.full_tile;
        self.clock_ratio = source.clock_ratio;
        self.tile_writer = source.tile_writer;
        self.gpr_writer = source.gpr_writer;
        self.vec_writer = source.vec_writer;
        self.rob.clone_from(&source.rob);
        self.rob_base = source.rob_base;
        self.next_seq = source.next_seq;
        self.rs_slots.clone_from(&source.rs_slots);
        self.rs_unsorted = source.rs_unsorted;
        self.rs_ready = source.rs_ready;
        self.engine_events.clone_from(&source.engine_events);
        self.events.clone_from(&source.events);
        self.pending.clone_from(&source.pending);
        self.fed = source.fed;
        self.retired = source.retired;
        self.cycle = source.cycle;
        self.phase = source.phase;
        self.finalized = source.finalized;
        self.done = source.done;
        self.stats = source.stats;
        self.sched = source.sched;
        self.stream = source.stream;
    }
}

impl CoreRun {
    fn new(isa: &IsaConfig, run_id: u64, config: CpuConfig, clock_ratio: u64) -> Self {
        CoreRun {
            isa: *isa,
            run_id,
            config,
            full_tile: TileDims::new(isa.tm(), isa.tk(), isa.tn()),
            clock_ratio,
            tile_writer: [None; NUM_TILE_REGS],
            gpr_writer: [None; NUM_GPR_REGS],
            vec_writer: [None; NUM_VEC_REGS],
            rob: VecDeque::with_capacity(config.rob_size),
            rob_base: 0,
            next_seq: 0,
            rs_slots: Vec::with_capacity(config.rs_size),
            rs_unsorted: false,
            rs_ready: 0,
            engine_events: VecDeque::new(),
            events: EventHeap::default(),
            pending: VecDeque::new(),
            fed: 0,
            retired: 0,
            // The front end delivers the first instructions after the
            // pipeline depth has elapsed.
            cycle: config.frontend_depth,
            phase: RunPhase::TopOfCycle,
            finalized: false,
            done: false,
            stats: CpuStats::default(),
            sched: SchedStats::default(),
            stream: StreamStats::default(),
        }
    }

    /// Feed-side statistics (segments, peak resident instructions, pauses).
    #[must_use]
    pub const fn stream_stats(&self) -> &StreamStats {
        &self.stream
    }

    /// Whether the run has retired every fed instruction after
    /// finalization.
    #[must_use]
    pub const fn is_finished(&self) -> bool {
        self.done
    }

    /// Instructions fed but not yet renamed into the pipeline.
    #[must_use]
    pub fn pending_instructions(&self) -> usize {
        self.pending.len()
    }

    /// Instructions retired so far.
    #[must_use]
    pub const fn retired_instructions(&self) -> usize {
        self.retired
    }

    /// Current core cycle of the paused run (speculation support).
    pub(crate) const fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Next rename sequence of the paused run (speculation support).
    pub(crate) const fn next_sequence(&self) -> u64 {
        self.next_seq
    }

    /// Core cycles per engine cycle for this run (speculation support).
    pub(crate) const fn clock_ratio(&self) -> u64 {
        self.clock_ratio
    }

    /// Delivers every completion event due by `now`: each popped event
    /// wakes the instructions subscribed to that producer, moving
    /// fully-resolved reservation-station entries into the ready pool.
    fn drain_due(&mut self, now: u64) {
        while let Some((_, seq)) = self.events.pop_due(now) {
            self.sched.completion_events += 1;
            debug_assert!(seq >= self.rob_base, "completion for retired entry");
            let waiters = std::mem::take(&mut self.rob[(seq - self.rob_base) as usize].waiters);
            for consumer in waiters {
                self.sched.wakeups += 1;
                let entry = &mut self.rob[(consumer - self.rob_base) as usize];
                entry.pending -= 1;
                if entry.pending == 0 && !matches!(entry.kind, InstructionKind::MatMul) {
                    self.rs_ready += 1;
                }
            }
        }
    }
}

/// Compares two ROB windows for scheduling equivalence at `cycle`: exact
/// equality except that the `complete_cycle` of *dead* entries (issued,
/// complete by `cycle`, waiters drained) is normalized away — its only
/// remaining use is a `complete_cycle <= cycle` test that stays true
/// forever, so any two dead timestamps are interchangeable.
fn rob_eq(a: &VecDeque<RobEntry>, b: &VecDeque<RobEntry>, cycle: u64) -> bool {
    let dead = |e: &RobEntry| e.issued && e.complete_cycle <= cycle && e.waiters.is_empty();
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.kind == y.kind
                && x.issued == y.issued
                && x.retired == y.retired
                && x.pending == y.pending
                && x.waiters == y.waiters
                && (x.complete_cycle == y.complete_cycle || (dead(x) && dead(y)))
        })
}

/// Registers `seq` as a waiter on `producer` if the producer has not
/// completed by `cycle`, bumping `pending` per outstanding reference.
fn subscribe(
    rob: &mut VecDeque<RobEntry>,
    rob_base: u64,
    cycle: u64,
    seq: u64,
    producer: u64,
    pending: &mut u32,
) {
    if producer < rob_base {
        return; // retired, hence complete
    }
    let idx = (producer - rob_base) as usize;
    if rob[idx].issued && rob[idx].complete_cycle <= cycle {
        return; // already complete
    }
    rob[idx].waiters.push(seq);
    *pending += 1;
}

/// The trace-driven out-of-order core.
///
/// See the crate-level documentation for the modelled pipeline. A `CpuCore`
/// owns its [`MatrixEngine`]; [`CpuCore::run`] executes one program to
/// completion and returns the [`CpuStats`], leaving the engine statistics
/// accessible through [`CpuCore::engine`].
///
/// [`CpuCore::run`] advances time with an event-driven scheduler (see
/// [`SchedStats`] and the `sched` module docs): it steps a cycle only when
/// that cycle can make progress and otherwise jumps straight to the next
/// completion event from its event heap. The original cycle-stepping loop
/// is retained as [`CpuCore::run_reference`]; both produce bit-identical
/// [`CpuStats`] for every program.
///
/// The event-driven path is **resumable**: [`CpuCore::begin_run`] opens a
/// [`CoreRun`], [`CpuCore::feed_segment`] streams bounded instruction
/// chunks into it (the pipeline simulates as far as the fed trace allows,
/// then pauses at an exact boundary), and [`CpuCore::run_to_quiescence`]
/// drains it to completion. [`CpuCore::run`] is one-shot sugar over this
/// machinery, so the streamed and materialized paths cannot drift.
#[derive(Debug, Clone)]
pub struct CpuCore {
    config: CpuConfig,
    engine: MatrixEngine,
    sched: SchedStats,
    stream: StreamStats,
    /// Monotonic id of the most recent run (streaming or reference) on
    /// this core. A [`CoreRun`] records the id it was opened under, so
    /// feeding a run whose engine state this core no longer holds is
    /// rejected instead of silently corrupting statistics. Cloning the
    /// core (checkpointing) preserves the id, so a cloned run remains
    /// valid on its cloned core.
    run_id: u64,
}

impl CpuCore {
    /// Creates a core hosting the given matrix engine.
    #[must_use]
    pub fn new(config: CpuConfig, engine: MatrixEngine) -> Self {
        CpuCore {
            config,
            engine,
            sched: SchedStats::default(),
            stream: StreamStats::default(),
            run_id: 0,
        }
    }

    /// The core configuration.
    #[must_use]
    pub const fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// The hosted matrix engine (and its statistics).
    #[must_use]
    pub const fn engine(&self) -> &MatrixEngine {
        &self.engine
    }

    /// Scheduler counters of the most recent [`CpuCore::run`] (zeroed by
    /// [`CpuCore::run_reference`], which does not use the event scheduler).
    #[must_use]
    pub const fn sched_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// Feed-side counters of the most recent streaming run (or one-shot
    /// [`CpuCore::run`], which feeds the whole program as one segment).
    /// Zeroed by [`CpuCore::run_reference`].
    #[must_use]
    pub const fn stream_stats(&self) -> &StreamStats {
        &self.stream
    }

    /// Executes `program` to completion and returns the run statistics.
    ///
    /// The matrix engine is reset at the start of every run so a single core
    /// can be reused across workloads.
    ///
    /// Time advances event-driven: completion timestamps (functional-unit
    /// latencies, matrix-engine completions converted at the clock ratio)
    /// live in a binary heap, instructions subscribe to their producers'
    /// completions at rename, and the core simulates only cycles on which
    /// the pipeline can move, jumping over idle gaps in one step. The
    /// resulting [`CpuStats`] are bit-identical to
    /// [`CpuCore::run_reference`].
    ///
    /// This is one-shot sugar over the resumable streaming API: the whole
    /// program is fed as a single segment and the run is drained to
    /// quiescence. Feeding the same instructions in arbitrary bounded
    /// segments produces bit-identical statistics.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::InvalidConfig`] for an invalid configuration and
    /// [`CpuError::Engine`] when the engine rejects an instruction (tile
    /// larger than the configured array).
    pub fn run(&mut self, program: &Program) -> Result<CpuStats, CpuError> {
        let mut run = self.begin_run(program.isa())?;
        self.feed_instructions(&mut run, program.instructions())?;
        self.run_to_quiescence(run)
    }

    /// Opens a resumable streaming run against `isa`, resetting the matrix
    /// engine and the scheduler counters.
    ///
    /// The returned [`CoreRun`] is bound to this core (which hosts the
    /// engine state): feed it with [`CpuCore::feed_segment`] /
    /// [`CpuCore::feed_instructions`] and complete it with
    /// [`CpuCore::run_to_quiescence`]. Interleaving two runs on one core
    /// is rejected — beginning a run (or executing [`CpuCore::run`] /
    /// [`CpuCore::run_reference`]) resets the engine and invalidates any
    /// outstanding run, and a run fed to a core other than the one that
    /// opened it (or a clone of it) returns [`CpuError::Stream`].
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::InvalidConfig`] for an invalid configuration.
    pub fn begin_run(&mut self, isa: &IsaConfig) -> Result<CoreRun, CpuError> {
        self.config.validate()?;
        self.engine.reset();
        self.sched = SchedStats::default();
        self.stream = StreamStats::default();
        self.run_id += 1;
        let clock_ratio = u64::from(self.engine.config().clock_ratio());
        Ok(CoreRun::new(isa, self.run_id, self.config, clock_ratio))
    }

    /// Rejects a run whose engine state this core no longer holds (opened
    /// on a different core, or invalidated by a later `begin_run` /
    /// `run_reference` resetting the engine).
    fn check_run(&self, run: &CoreRun) -> Result<(), CpuError> {
        if run.run_id != self.run_id {
            return Err(CpuError::Stream {
                reason: "run is not this core's active run (opened on another core or \
                         invalidated by a later run on this one)"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Feeds one validated segment into a streaming run and simulates as
    /// far as the fed trace allows (see [`CpuCore::feed_instructions`]).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::Stream`] when the segment's ISA differs from the
    /// run's or the run was already finalized, plus the errors of
    /// [`CpuCore::feed_instructions`].
    pub fn feed_segment(
        &mut self,
        run: &mut CoreRun,
        segment: &ProgramSegment,
    ) -> Result<(), CpuError> {
        if segment.isa() != &run.isa {
            return Err(CpuError::Stream {
                reason: "segment was built against a different isa than the run".to_string(),
            });
        }
        self.feed_instructions(run, segment.instructions())
    }

    /// Appends `instructions` to a streaming run's fetch buffer and
    /// advances the pipeline until it either needs instructions that have
    /// not been fed yet (pausing at an exact mid-cycle boundary) or all fed
    /// work is in flight.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::Stream`] when the run was already finalized and
    /// [`CpuError::Engine`] when the engine rejects an instruction.
    pub fn feed_instructions(
        &mut self,
        run: &mut CoreRun,
        instructions: &[Instruction],
    ) -> Result<(), CpuError> {
        self.check_run(run)?;
        if run.finalized {
            return Err(CpuError::Stream {
                reason: "cannot feed a finalized run".to_string(),
            });
        }
        run.pending.extend(instructions.iter().copied());
        run.fed += instructions.len();
        if !instructions.is_empty() {
            run.stream.segments += 1;
            run.stream.fed_instructions += instructions.len() as u64;
            run.stream.peak_resident = run.stream.peak_resident.max(run.pending.len());
        }
        let result = self.advance(run);
        self.sched = run.sched;
        self.stream = run.stream;
        result
    }

    /// Finalizes a streaming run (no further feeds), drains the pipeline to
    /// quiescence and returns the run statistics — bit-identical to a
    /// one-shot [`CpuCore::run`] of the concatenated trace.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::Engine`] when the engine rejects an instruction
    /// and [`CpuError::InvalidConfig`] on a pipeline deadlock (impossible
    /// for validated programs).
    pub fn run_to_quiescence(&mut self, mut run: CoreRun) -> Result<CpuStats, CpuError> {
        self.check_run(&run)?;
        run.finalized = true;
        self.advance(&mut run)?;
        debug_assert!(run.done, "a finalized run drains to completion");
        self.sched = run.sched;
        self.stream = run.stream;
        let mut stats = run.stats;
        if run.fed > 0 {
            stats.engine = *self.engine.stats();
        }
        Ok(stats)
    }

    // ---- Speculation support (used by `crate::SpeculativeRun`) ---------

    /// Takes the statistics a paused run accumulated since the last take
    /// (or since `begin_run`), leaving the run's counters — and the hosted
    /// engine's — zeroed so the next interval accumulates from scratch.
    ///
    /// Folding the returned intervals in order with the `accumulate`
    /// methods reproduces the unsegmented counters bit for bit; this is
    /// what lets a speculative execution adopt a forked run (whose counters
    /// cover only its own segment) without double-counting.
    pub(crate) fn take_interval_stats(
        &mut self,
        run: &mut CoreRun,
    ) -> (CpuStats, SchedStats, StreamStats) {
        debug_assert!(
            self.check_run(run).is_ok(),
            "interval take on a foreign run"
        );
        let mut cpu = std::mem::take(&mut run.stats);
        cpu.engine = *self.engine.stats();
        self.engine.reset_stats();
        let sched = std::mem::take(&mut run.sched);
        let stream = std::mem::take(&mut run.stream);
        self.sched = run.sched;
        self.stream = run.stream;
        (cpu, sched, stream)
    }

    /// Shifts the paused boundary state of `(self, run)` forward by
    /// `cycles` core cycles, `seqs` rename sequences and `matmuls` engine
    /// submissions — the state a perfectly periodic execution would reach
    /// after that much more identical work. This is the state *predictor*
    /// of the speculative scheduler: predictions are validated bit for bit
    /// at join ([`CpuCore::boundary_matches`]), so a wrong shift can only
    /// cost a replay, never correctness.
    ///
    /// Time-valued fields move by `cycles` (the `u64::MAX` not-yet-issued
    /// sentinel excepted), sequence-valued fields by `seqs`, and the hosted
    /// engine by the corresponding engine-clock deltas. Requires a starved-
    /// rename pause boundary (empty fetch buffer) and a cycle delta that is
    /// a whole number of engine cycles.
    pub(crate) fn shift_boundary(
        &mut self,
        run: &mut CoreRun,
        cycles: u64,
        seqs: u64,
        matmuls: u64,
    ) {
        debug_assert!(
            run.pending.is_empty(),
            "shift only at a starved-rename boundary"
        );
        debug_assert_eq!(
            cycles % run.clock_ratio,
            0,
            "cycle delta must be whole engine cycles"
        );
        fn shift_writers(writers: &mut [Option<u64>], seqs: u64) {
            for seq in writers.iter_mut().flatten() {
                *seq += seqs;
            }
        }
        shift_writers(&mut run.tile_writer, seqs);
        shift_writers(&mut run.gpr_writer, seqs);
        shift_writers(&mut run.vec_writer, seqs);
        for entry in &mut run.rob {
            if entry.complete_cycle != u64::MAX {
                entry.complete_cycle += cycles;
            }
            for waiter in &mut entry.waiters {
                *waiter += seqs;
            }
        }
        run.rob_base += seqs;
        run.next_seq += seqs;
        for (seq, _) in &mut run.rs_slots {
            *seq += seqs;
        }
        for event in &mut run.engine_events {
            if let EngineEvent::Matmul { rob_seq, .. } = event {
                *rob_seq += seqs;
            }
        }
        run.events.shift(cycles, seqs);
        run.fed += seqs as usize;
        run.retired += seqs as usize;
        run.cycle += cycles;
        self.engine.shift_state(cycles / run.clock_ratio, matmuls);
    }

    /// Whether `(self, run)` and `(other, other_run)` are paused at exactly
    /// the same pipeline boundary: equal *dynamics* — everything that can
    /// influence any future scheduling decision — with statistics excluded.
    ///
    /// Two classes of semantically dead values are normalized rather than
    /// compared exactly:
    ///
    /// * writer-map slots whose producer has retired — `None` and any
    ///   retired sequence are interchangeable, because rename treats both
    ///   as "operand complete" and nothing else ever reads them;
    /// * the `complete_cycle` of a ROB entry that has issued, completed by
    ///   the current cycle and drained its waiters — every future read is
    ///   a `complete_cycle <= cycle` test that is invariantly true, so the
    ///   exact timestamp (often dating from a long-gone pipeline-fill
    ///   transient) cannot influence anything.
    ///
    /// The event heaps are compared through their canonical sorted view
    /// (heap layout is insertion-order dependent and has no semantic
    /// meaning).
    pub(crate) fn boundary_matches(
        &self,
        run: &CoreRun,
        other: &CpuCore,
        other_run: &CoreRun,
    ) -> bool {
        fn writers_eq<const N: usize>(
            a: &[Option<u64>; N],
            b: &[Option<u64>; N],
            rob_base: u64,
        ) -> bool {
            a.iter().zip(b.iter()).all(|(x, y)| {
                let complete = |slot: &Option<u64>| match slot {
                    None => true,
                    Some(seq) => *seq < rob_base,
                };
                x == y || (complete(x) && complete(y))
            })
        }
        run.cycle == other_run.cycle
            && run.rob_base == other_run.rob_base
            && run.next_seq == other_run.next_seq
            && run.fed == other_run.fed
            && run.retired == other_run.retired
            && run.phase == other_run.phase
            && run.finalized == other_run.finalized
            && run.done == other_run.done
            && run.pending.is_empty()
            && other_run.pending.is_empty()
            && run.rs_ready == other_run.rs_ready
            && run.rs_unsorted == other_run.rs_unsorted
            && run.rs_slots == other_run.rs_slots
            && rob_eq(&run.rob, &other_run.rob, run.cycle)
            && run.engine_events == other_run.engine_events
            && run.events.events_eq(&other_run.events)
            && writers_eq(&run.tile_writer, &other_run.tile_writer, run.rob_base)
            && writers_eq(&run.gpr_writer, &other_run.gpr_writer, run.rob_base)
            && writers_eq(&run.vec_writer, &other_run.vec_writer, run.rob_base)
            && self.engine.scheduling_state_eq(&other.engine)
    }

    /// The streaming pipeline loop: simulates cycles until the run
    /// completes (finalized and fully retired) or must pause for more
    /// instructions. Resumes exactly where the previous call paused —
    /// including mid-cycle, mid-rename — so the feed pattern cannot perturb
    /// the simulated statistics.
    fn advance(&mut self, run: &mut CoreRun) -> Result<(), CpuError> {
        if run.done {
            return Ok(());
        }
        if run.fed == 0 {
            // Nothing was ever fed: an empty finalized run completes with
            // default statistics (matching the one-shot empty-program
            // fast path); otherwise wait for the first segment.
            run.done = run.finalized;
            return Ok(());
        }

        loop {
            if matches!(run.phase, RunPhase::TopOfCycle) {
                run.sched.visited_cycles += 1;
                run.drain_due(run.cycle);

                let mut progress = false;

                // ---- Retire (in order) ---------------------------------
                let mut retired_this_cycle = 0;
                while retired_this_cycle < run.config.retire_width {
                    let Some(front) = run.rob.front() else { break };
                    if !(front.issued && front.complete_cycle <= run.cycle && !front.retired) {
                        break;
                    }
                    let entry = run.rob.pop_front().expect("front exists");
                    debug_assert!(entry.waiters.is_empty(), "waiters outlive completion");
                    run.rob_base += 1;
                    run.retired += 1;
                    retired_this_cycle += 1;
                    progress = true;
                    run.stats.retired_instructions += 1;
                    match entry.kind {
                        InstructionKind::MatMul => run.stats.retired_matmuls += 1,
                        InstructionKind::TileLoad | InstructionKind::TileStore => {
                            run.stats.retired_tile_memory_ops += 1;
                        }
                        _ => {}
                    }
                }
                if run.retired == run.fed {
                    // Everything fed has retired. A pause always fires at
                    // the first starved rename attempt, which precedes the
                    // final retirement by at least a cycle — so reaching
                    // this point mid-stream (unfinalized) is impossible.
                    debug_assert!(run.finalized, "drained an unfinalized run");
                    run.stats.cycles = run.cycle;
                    run.done = true;
                    return Ok(());
                }

                // ---- Issue to functional units --------------------------
                let mut issued_this_cycle = 0;
                let mut alu_used = 0;
                let mut lsu_used = 0;
                let mut vec_used = 0;

                // Matrix-engine events are processed in program order.
                while issued_this_cycle < run.config.issue_width {
                    match run.engine_events.front() {
                        Some(EngineEvent::Write(reg)) => {
                            self.engine.note_tile_write(*reg);
                            run.engine_events.pop_front();
                        }
                        Some(EngineEvent::Matmul {
                            rob_seq,
                            weight,
                            tile,
                        }) => {
                            let seq = *rob_seq;
                            if run.rob[(seq - run.rob_base) as usize].pending > 0 {
                                break;
                            }
                            let engine_ready = run.cycle.div_ceil(run.clock_ratio);
                            let request = MmRequest::ready_at(*weight, *tile, engine_ready);
                            self.engine
                                .submit(request)
                                .map_err(|source| CpuError::Engine {
                                    instruction_index: (seq) as usize,
                                    source,
                                })?;
                            // The engine reports the completion as a
                            // timestamped event; convert it to core cycles
                            // and schedule it.
                            for completion in self.engine.take_completions() {
                                let complete = completion.complete_cycle * run.clock_ratio;
                                let idx = (seq - run.rob_base) as usize;
                                run.rob[idx].issued = true;
                                run.rob[idx].complete_cycle = complete;
                                run.events.push(complete, seq);
                            }
                            run.engine_events.pop_front();
                            issued_this_cycle += 1;
                            progress = true;
                            run.drain_due(run.cycle);
                        }
                        None => break,
                    }
                }

                // Ordinary reservation-station issue. The scan replicates
                // the reference loop exactly — ascending-sequence order at
                // scan start, `swap_remove` on issue (which perturbs the
                // in-scan order), port-first checks — but runs only when at
                // least one entry is actually ready.
                if issued_this_cycle < run.config.issue_width && run.rs_ready > 0 {
                    if run.rs_unsorted {
                        run.rs_slots.sort_unstable_by_key(|(seq, _)| *seq);
                        run.rs_unsorted = false;
                    }
                    let mut i = 0;
                    while i < run.rs_slots.len() && issued_this_cycle < run.config.issue_width {
                        let (seq, kind) = run.rs_slots[i];
                        let port_free = match kind {
                            InstructionKind::ScalarAlu
                            | InstructionKind::Branch
                            | InstructionKind::Nop
                            | InstructionKind::TileZero => alu_used < run.config.alu_units,
                            InstructionKind::TileLoad
                            | InstructionKind::TileStore
                            | InstructionKind::ScalarLoad => lsu_used < run.config.lsu_ports,
                            InstructionKind::VectorFma => vec_used < run.config.vector_units,
                            InstructionKind::MatMul => false,
                        };
                        if !port_free {
                            i += 1;
                            continue;
                        }
                        if run.rob[(seq - run.rob_base) as usize].pending > 0 {
                            i += 1;
                            continue;
                        }
                        let latency = match kind {
                            InstructionKind::ScalarAlu
                            | InstructionKind::Branch
                            | InstructionKind::Nop
                            | InstructionKind::TileZero => {
                                alu_used += 1;
                                run.config.alu_latency
                            }
                            InstructionKind::TileLoad => {
                                lsu_used += 1;
                                run.config.tile_load_latency
                            }
                            InstructionKind::TileStore => {
                                lsu_used += 1;
                                run.config.tile_store_latency
                            }
                            InstructionKind::ScalarLoad => {
                                lsu_used += 1;
                                run.config.scalar_load_latency
                            }
                            InstructionKind::VectorFma => {
                                vec_used += 1;
                                run.config.vector_latency
                            }
                            InstructionKind::MatMul => unreachable!("handled via engine events"),
                        };
                        let idx = (seq - run.rob_base) as usize;
                        run.rob[idx].issued = true;
                        run.rob[idx].complete_cycle = run.cycle + latency;
                        run.events.push(run.cycle + latency, seq);
                        run.rs_slots.swap_remove(i);
                        if i < run.rs_slots.len() {
                            run.rs_unsorted = true;
                        }
                        run.rs_ready -= 1;
                        issued_this_cycle += 1;
                        progress = true;
                        // Zero-latency units complete within this very
                        // cycle; wake their consumers so the rest of the
                        // scan sees them, exactly as the reference loop's
                        // fresh completion checks would.
                        run.drain_due(run.cycle);
                        // Do not advance `i`: swap_remove moved a new entry
                        // here.
                    }
                }

                run.phase = RunPhase::Rename {
                    progress,
                    renamed: 0,
                };
            }

            // ---- Rename / dispatch ----------------------------------
            // (Re-)entered mid-cycle after a pause: retire and issue for
            // this cycle already ran; `renamed`/`progress` carry over.
            let RunPhase::Rename {
                mut progress,
                mut renamed,
            } = run.phase
            else {
                unreachable!("phase was just set to Rename")
            };
            loop {
                if renamed >= run.config.fetch_width {
                    break;
                }
                let Some(&inst) = run.pending.front() else {
                    if run.finalized {
                        break;
                    }
                    // The fetch buffer ran dry mid-program: pause *before*
                    // probing ROB/RS occupancy, because the stall counters
                    // (and rename itself) depend on whether an instruction
                    // is available — exactly like the one-shot loop's
                    // `next_fetch < total` guard.
                    run.phase = RunPhase::Rename { progress, renamed };
                    run.stream.pauses += 1;
                    return Ok(());
                };
                if run.rob.len() >= run.config.rob_size {
                    run.stats.rob_full_stalls += 1;
                    break;
                }
                let kind = inst.kind();
                let needs_rs = !matches!(kind, InstructionKind::MatMul);
                if needs_rs && run.rs_slots.len() >= run.config.rs_size {
                    run.stats.rs_full_stalls += 1;
                    break;
                }
                let seq = run.next_seq;

                // Subscribe to the producers named by the current renaming
                // map: each incomplete producer gets this instruction on
                // its waiter list (with multiplicity — a producer feeding
                // two operands wakes this instruction twice, matching the
                // two pending references counted here).
                let mut pending: u32 = 0;
                for r in inst.tile_reads().iter() {
                    if let Some(p) = run.tile_writer[r.index()] {
                        subscribe(&mut run.rob, run.rob_base, run.cycle, seq, p, &mut pending);
                    }
                }
                for r in inst.gpr_reads().iter() {
                    if let Some(p) = run.gpr_writer[r.index()] {
                        subscribe(&mut run.rob, run.rob_base, run.cycle, seq, p, &mut pending);
                    }
                }
                if let Instruction::VectorFma { dst, src1, src2 } = inst {
                    for r in [dst, src1, src2] {
                        if let Some(p) = run.vec_writer[r as usize % NUM_VEC_REGS] {
                            subscribe(&mut run.rob, run.rob_base, run.cycle, seq, p, &mut pending);
                        }
                    }
                }

                // Dispatch either to the matrix-engine event queue or the
                // RS.
                match inst {
                    Instruction::MatMul { acc, a: _, b } => {
                        run.engine_events.push_back(EngineEvent::Matmul {
                            rob_seq: seq,
                            weight: b,
                            tile: run.full_tile,
                        });
                        // The destination write is visible to the engine's
                        // dirty-bit logic after the instruction itself.
                        run.engine_events.push_back(EngineEvent::Write(acc));
                    }
                    _ => {
                        for w in inst.tile_writes().iter() {
                            run.engine_events.push_back(EngineEvent::Write(w));
                        }
                        // Sequences grow monotonically, so appending keeps
                        // the slot vector sorted.
                        run.rs_slots.push((seq, kind));
                        if pending == 0 {
                            run.rs_ready += 1;
                        }
                    }
                }

                // Update the renaming map with this instruction's writes.
                for w in inst.tile_writes().iter() {
                    run.tile_writer[w.index()] = Some(seq);
                }
                for w in inst.gpr_writes().iter() {
                    run.gpr_writer[w.index()] = Some(seq);
                }
                if let Instruction::VectorFma { dst, .. } = inst {
                    run.vec_writer[dst as usize % NUM_VEC_REGS] = Some(seq);
                }

                let mut entry = RobEntry::new(kind);
                entry.pending = pending;
                run.rob.push_back(entry);
                run.pending.pop_front();
                run.next_seq += 1;
                renamed += 1;
                progress = true;
            }
            run.phase = RunPhase::TopOfCycle;

            // ---- Advance time ---------------------------------------
            if progress {
                run.cycle += 1;
            } else {
                // Nothing moved: jump straight to the next completion
                // event. Every event still in the heap is strictly in the
                // future (due events were drained above), so the heap's
                // minimum is exactly the reference loop's "next completion
                // of an issued, incomplete ROB entry".
                match run.events.next_time() {
                    Some(wake) => {
                        debug_assert!(wake > run.cycle, "due events were drained");
                        run.sched.skipped_cycles += wake - run.cycle - 1;
                        run.cycle = wake;
                    }
                    None => {
                        // No instruction in flight can unblock us; this only
                        // happens if the program deadlocks, which a validated
                        // program cannot do — but guard against it anyway.
                        return Err(CpuError::InvalidConfig {
                            reason: "pipeline deadlock: no in-flight completion can unblock"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }

    /// Executes `program` with the original cycle-stepping pipeline loop.
    ///
    /// This is the pre-event-driven implementation, retained as the golden
    /// reference: it advances cycle by cycle (with the narrow ROB-only
    /// skip-ahead it always had), re-deriving readiness from scratch each
    /// step. [`CpuCore::run`] must produce bit-identical [`CpuStats`];
    /// parity tests and the `run_all` timing comparison rely on this
    /// method. Scheduler counters ([`CpuCore::sched_stats`]) are zeroed.
    ///
    /// # Errors
    ///
    /// Identical to [`CpuCore::run`].
    pub fn run_reference(&mut self, program: &Program) -> Result<CpuStats, CpuError> {
        self.config.validate()?;
        self.engine.reset();
        self.sched = SchedStats::default();
        self.stream = StreamStats::default();
        // The reference loop resets the engine too: any outstanding
        // streaming run's state is gone, so invalidate it.
        self.run_id += 1;

        let instructions = program.instructions();
        let total = instructions.len();
        let mut stats = CpuStats::default();
        if total == 0 {
            return Ok(stats);
        }

        let isa = program.isa();
        let full_tile = TileDims::new(isa.tm(), isa.tk(), isa.tn());
        let clock_ratio = u64::from(self.engine.config().clock_ratio());

        let mut tile_writer: [Option<u64>; NUM_TILE_REGS] = [None; NUM_TILE_REGS];
        let mut gpr_writer: [Option<u64>; NUM_GPR_REGS] = [None; NUM_GPR_REGS];
        let mut vec_writer: [Option<u64>; NUM_VEC_REGS] = [None; NUM_VEC_REGS];

        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(self.config.rob_size);
        let mut rob_base: u64 = 0;
        let mut next_seq: u64 = 0;

        let mut rs: Vec<RsEntry> = Vec::with_capacity(self.config.rs_size);
        let mut engine_events: VecDeque<EngineEvent> = VecDeque::new();
        // Producers of each pending matmul, looked up when it reaches the
        // head of the engine-event queue.
        let mut matmul_producers: HashMap<u64, Vec<u64>> = HashMap::new();

        let mut next_fetch = 0usize;
        let mut retired = 0usize;
        let mut cycle: u64 = self.config.frontend_depth;

        let entry_completed = |rob: &VecDeque<RobEntry>, rob_base: u64, seq: u64, now: u64| {
            // Anything older than the ROB window has retired and is complete.
            if seq < rob_base {
                return true;
            }
            let entry = &rob[(seq - rob_base) as usize];
            entry.issued && entry.complete_cycle <= now
        };

        loop {
            let mut progress = false;

            // ---- Retire (in order) -------------------------------------
            let mut retired_this_cycle = 0;
            while retired_this_cycle < self.config.retire_width {
                let Some(front) = rob.front() else { break };
                if !(front.issued && front.complete_cycle <= cycle && !front.retired) {
                    break;
                }
                let entry = rob.pop_front().expect("front exists");
                rob_base += 1;
                retired += 1;
                retired_this_cycle += 1;
                progress = true;
                stats.retired_instructions += 1;
                match entry.kind {
                    InstructionKind::MatMul => stats.retired_matmuls += 1,
                    InstructionKind::TileLoad | InstructionKind::TileStore => {
                        stats.retired_tile_memory_ops += 1;
                    }
                    _ => {}
                }
            }
            if retired == total {
                stats.cycles = cycle;
                break;
            }

            // ---- Issue to functional units ------------------------------
            let mut issued_this_cycle = 0;
            let mut alu_used = 0;
            let mut lsu_used = 0;
            let mut vec_used = 0;

            // Matrix-engine events are processed in program order.
            while issued_this_cycle < self.config.issue_width {
                match engine_events.front() {
                    Some(EngineEvent::Write(reg)) => {
                        self.engine.note_tile_write(*reg);
                        engine_events.pop_front();
                    }
                    Some(EngineEvent::Matmul {
                        rob_seq,
                        weight,
                        tile,
                    }) => {
                        let seq = *rob_seq;
                        let producers = matmul_producers
                            .get(&seq)
                            .expect("producers recorded at rename");
                        let ready = producers
                            .iter()
                            .all(|&p| entry_completed(&rob, rob_base, p, cycle));
                        if !ready {
                            break;
                        }
                        let engine_ready = cycle.div_ceil(clock_ratio);
                        let request = MmRequest::ready_at(*weight, *tile, engine_ready);
                        let completion =
                            self.engine
                                .submit(request)
                                .map_err(|source| CpuError::Engine {
                                    instruction_index: (seq) as usize,
                                    source,
                                })?;
                        let idx = (seq - rob_base) as usize;
                        rob[idx].issued = true;
                        rob[idx].complete_cycle = completion.complete_cycle * clock_ratio;
                        matmul_producers.remove(&seq);
                        engine_events.pop_front();
                        issued_this_cycle += 1;
                        progress = true;
                    }
                    None => break,
                }
            }

            // Ordinary reservation-station issue, oldest first.
            if issued_this_cycle < self.config.issue_width && !rs.is_empty() {
                rs.sort_unstable_by_key(|e| e.rob_seq);
                let mut i = 0;
                while i < rs.len() && issued_this_cycle < self.config.issue_width {
                    let entry = &rs[i];
                    let port_free = match entry.kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => alu_used < self.config.alu_units,
                        InstructionKind::TileLoad
                        | InstructionKind::TileStore
                        | InstructionKind::ScalarLoad => lsu_used < self.config.lsu_ports,
                        InstructionKind::VectorFma => vec_used < self.config.vector_units,
                        InstructionKind::MatMul => false,
                    };
                    if !port_free {
                        i += 1;
                        continue;
                    }
                    let ready = entry
                        .producers
                        .iter()
                        .all(|&p| entry_completed(&rob, rob_base, p, cycle));
                    if !ready {
                        i += 1;
                        continue;
                    }
                    let latency = match entry.kind {
                        InstructionKind::ScalarAlu
                        | InstructionKind::Branch
                        | InstructionKind::Nop
                        | InstructionKind::TileZero => {
                            alu_used += 1;
                            self.config.alu_latency
                        }
                        InstructionKind::TileLoad => {
                            lsu_used += 1;
                            self.config.tile_load_latency
                        }
                        InstructionKind::TileStore => {
                            lsu_used += 1;
                            self.config.tile_store_latency
                        }
                        InstructionKind::ScalarLoad => {
                            lsu_used += 1;
                            self.config.scalar_load_latency
                        }
                        InstructionKind::VectorFma => {
                            vec_used += 1;
                            self.config.vector_latency
                        }
                        InstructionKind::MatMul => unreachable!("handled via engine events"),
                    };
                    let seq = entry.rob_seq;
                    let idx = (seq - rob_base) as usize;
                    rob[idx].issued = true;
                    rob[idx].complete_cycle = cycle + latency;
                    rs.swap_remove(i);
                    issued_this_cycle += 1;
                    progress = true;
                    // Do not advance `i`: swap_remove moved a new entry here.
                }
            }

            // ---- Rename / dispatch --------------------------------------
            let mut renamed_this_cycle = 0;
            while renamed_this_cycle < self.config.fetch_width && next_fetch < total {
                if rob.len() >= self.config.rob_size {
                    stats.rob_full_stalls += 1;
                    break;
                }
                let inst = &instructions[next_fetch];
                let kind = inst.kind();
                let needs_rs = !matches!(kind, InstructionKind::MatMul);
                if needs_rs && rs.len() >= self.config.rs_size {
                    stats.rs_full_stalls += 1;
                    break;
                }
                let seq = next_seq;

                // Collect producers from the current renaming map.
                let mut producers = Vec::new();
                for r in inst.tile_reads().iter() {
                    if let Some(p) = tile_writer[r.index()] {
                        producers.push(p);
                    }
                }
                for r in inst.gpr_reads().iter() {
                    if let Some(p) = gpr_writer[r.index()] {
                        producers.push(p);
                    }
                }
                if let Instruction::VectorFma { dst, src1, src2 } = inst {
                    for r in [dst, src1, src2] {
                        if let Some(p) = vec_writer[*r as usize % NUM_VEC_REGS] {
                            producers.push(p);
                        }
                    }
                }

                // Dispatch either to the matrix-engine event queue or the RS.
                match inst {
                    Instruction::MatMul { acc, a: _, b } => {
                        engine_events.push_back(EngineEvent::Matmul {
                            rob_seq: seq,
                            weight: *b,
                            tile: full_tile,
                        });
                        matmul_producers.insert(seq, producers);
                        // The destination write is visible to the engine's
                        // dirty-bit logic after the instruction itself.
                        engine_events.push_back(EngineEvent::Write(*acc));
                    }
                    _ => {
                        for w in inst.tile_writes().iter() {
                            engine_events.push_back(EngineEvent::Write(w));
                        }
                        rs.push(RsEntry {
                            rob_seq: seq,
                            kind,
                            producers,
                        });
                    }
                }

                // Update the renaming map with this instruction's writes.
                for w in inst.tile_writes().iter() {
                    tile_writer[w.index()] = Some(seq);
                }
                for w in inst.gpr_writes().iter() {
                    gpr_writer[w.index()] = Some(seq);
                }
                if let Instruction::VectorFma { dst, .. } = inst {
                    vec_writer[*dst as usize % NUM_VEC_REGS] = Some(seq);
                }

                rob.push_back(RobEntry::new(kind));
                next_seq += 1;
                next_fetch += 1;
                renamed_this_cycle += 1;
                progress = true;
            }

            // ---- Advance time -------------------------------------------
            if progress {
                cycle += 1;
            } else {
                // Nothing moved: jump to the next completion event instead
                // of spinning cycle by cycle.
                //
                // Skip-ahead audit: deriving the wake cycle only from issued
                // ROB entries is sound for this pipeline. No-progress means
                // rename is blocked by a full ROB/RS (which only drains at
                // retire, i.e. after a completion), every RS entry and the
                // engine-event head are waiting on an incomplete producer,
                // and nothing retired — and by induction the oldest
                // unissued instruction only waits on *issued* producers, so
                // some in-flight completion exists unless the program is
                // truly finished or deadlocked. The minimum such completion
                // is therefore the exact next cycle on which any stage can
                // move; rename/RS-only progress before it is impossible.
                // The event-driven loop's heap jump relies on the same
                // argument, and the `skip_ahead_*` regression tests plus
                // the cross-crate parity proptests pin this behaviour.
                let next_completion = rob
                    .iter()
                    .filter(|e| e.issued && e.complete_cycle > cycle)
                    .map(|e| e.complete_cycle)
                    .min();
                match next_completion {
                    Some(c) => cycle = c,
                    None => {
                        // No instruction in flight can unblock us; this only
                        // happens if the program deadlocks, which a validated
                        // program cannot do — but guard against it anyway.
                        return Err(CpuError::InvalidConfig {
                            reason: "pipeline deadlock: no in-flight completion can unblock"
                                .to_string(),
                        });
                    }
                }
            }
        }

        // The reference loop consumes completions synchronously; drop the
        // event records the engine accumulated for event-driven hosts.
        self.engine.take_completions();

        stats.engine = *self.engine.stats();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_isa::{GprReg, IsaConfig, MemRef, ProgramBuilder};
    use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};

    fn treg(i: u8) -> TileReg {
        TileReg::new(i).unwrap()
    }

    fn core(pe: PeVariant, scheme: ControlScheme) -> CpuCore {
        let engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
        CpuCore::new(CpuConfig::skylake_like(), engine)
    }

    /// Emits `k_steps` iterations of the Algorithm-1 micro-kernel (2 A × 2 B
    /// register blocking, 4 accumulators).
    fn microkernel_program(k_steps: usize) -> Program {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        b.set_name("microkernel");
        for i in 0..4u8 {
            b.tile_load(treg(i), MemRef::tile(u64::from(i) * 0x400, 64));
        }
        for k in 0..k_steps {
            let base = 0x10_000 + (k as u64) * 0x2000;
            b.tile_load(treg(4), MemRef::tile(base, 64));
            b.tile_load(treg(6), MemRef::tile(base + 0x400, 64));
            b.matmul(treg(0), treg(6), treg(4));
            b.tile_load(treg(7), MemRef::tile(base + 0x800, 64));
            b.matmul(treg(1), treg(7), treg(4));
            b.tile_load(treg(5), MemRef::tile(base + 0xc00, 64));
            b.matmul(treg(2), treg(6), treg(5));
            b.matmul(treg(3), treg(7), treg(5));
        }
        for i in 0..4u8 {
            b.tile_store(MemRef::tile(u64::from(i) * 0x400, 64), treg(i));
        }
        b.finish().unwrap()
    }

    #[test]
    fn empty_program_runs_instantly() {
        let p = ProgramBuilder::new(IsaConfig::amx_like()).finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.retired_instructions, 0);
    }

    #[test]
    fn single_matmul_latency_includes_engine_and_frontend() {
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();

        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 4);
        assert_eq!(stats.retired_matmuls, 1);
        // The run must at least cover the front end, the tile loads and the
        // 95-engine-cycle (380-core-cycle) matmul.
        assert!(stats.cycles >= 380);
        // …but not be absurdly long either.
        assert!(stats.cycles < 600);
    }

    #[test]
    fn all_instructions_retire_exactly_once() {
        let p = microkernel_program(8);
        let mut c = core(PeVariant::Baseline, ControlScheme::Wlbp);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions as usize, p.len());
        assert_eq!(stats.retired_matmuls as usize, p.count_matmuls());
        assert_eq!(stats.engine.matmuls as usize, p.count_matmuls());
    }

    #[test]
    fn pipelining_schemes_preserve_runtime_ordering() {
        let p = microkernel_program(32);
        let designs = [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Baseline, ControlScheme::Pipe),
            (PeVariant::Baseline, ControlScheme::Wlbp),
            (PeVariant::Dm, ControlScheme::Wlbp),
            (PeVariant::Db, ControlScheme::Wls),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ];
        let mut cycles = Vec::new();
        for (pe, scheme) in designs {
            let mut c = core(pe, scheme);
            cycles.push(c.run(&p).unwrap().cycles);
        }
        for pair in cycles.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "runtimes should improve monotonically: {cycles:?}"
            );
        }
        // The most aggressive design is far faster than the baseline.
        assert!(cycles[0] as f64 / *cycles.last().unwrap() as f64 > 2.5);
    }

    #[test]
    fn wlbp_bypasses_half_the_matmuls_on_algorithm1_blocking() {
        let p = microkernel_program(64);
        let mut c = core(PeVariant::Baseline, ControlScheme::Wlbp);
        let stats = c.run(&p).unwrap();
        // Each k-step has 4 matmuls of which 2 reuse the weight register.
        let rate = stats.engine.bypass_rate();
        assert!(rate > 0.40 && rate <= 0.55, "bypass rate {rate}");
    }

    #[test]
    fn scalar_dependencies_are_respected() {
        // A chain of dependent ALU instructions retires in bounded time and
        // the chain length is reflected in the cycle count.
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        let r0 = GprReg::new(0).unwrap();
        for _ in 0..64 {
            b.scalar_alu(r0, &[r0]);
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 64);
        // A fully serial 64-deep chain needs at least 64 execute cycles.
        assert!(stats.cycles >= 64);
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        for i in 0u16..256 {
            b.scalar_alu(GprReg::new((i % 16) as u8).unwrap(), &[]);
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        // 4-wide core on independent single-cycle ops: IPC well above 2.
        assert!(stats.ipc() > 2.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn rob_pressure_is_reported_for_long_latency_chains() {
        // With the serialized BASE engine, matmuls back up and fill the ROB.
        let p = microkernel_program(64);
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert!(stats.rob_full_stalls > 0);
    }

    #[test]
    fn engine_rejection_is_reported() {
        // An ISA with a larger tile geometry produces tiles the paper-sized
        // array cannot hold.
        let isa = rasa_isa::IsaConfig::new(
            rasa_isa::TileGeometry::new(16, 128).unwrap(),
            8,
            rasa_isa::DataType::Bf16,
            rasa_isa::DataType::Fp32,
        )
        .unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let err = c.run(&p).unwrap_err();
        assert!(matches!(err, CpuError::Engine { .. }));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let engine = MatrixEngine::new(SystolicConfig::paper_baseline());
        let mut cfg = CpuConfig::skylake_like();
        cfg.rob_size = 0;
        let mut c = CpuCore::new(cfg, engine);
        let p = microkernel_program(1);
        assert!(matches!(c.run(&p), Err(CpuError::InvalidConfig { .. })));
    }

    #[test]
    fn core_is_reusable_across_runs() {
        let p = microkernel_program(4);
        let mut c = core(PeVariant::Dmdb, ControlScheme::Wls);
        let first = c.run(&p).unwrap();
        let second = c.run(&p).unwrap();
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.retired_instructions, second.retired_instructions);
    }

    #[test]
    fn vector_trace_executes() {
        let isa = IsaConfig::amx_like();
        let mut b = ProgramBuilder::new(isa);
        for i in 0..64u8 {
            b.vector_fma(i % 8, 8 + (i % 8), 16 + (i % 8));
        }
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        assert_eq!(stats.retired_instructions, 64);
        assert!(stats.cycles >= 64 / 2);
    }

    // ---- Event-driven scheduler parity and regression tests -------------

    /// Every paper design point, for the parity sweeps below.
    fn all_designs() -> [(PeVariant, ControlScheme); 6] {
        [
            (PeVariant::Baseline, ControlScheme::Base),
            (PeVariant::Baseline, ControlScheme::Pipe),
            (PeVariant::Baseline, ControlScheme::Wlbp),
            (PeVariant::Dm, ControlScheme::Wlbp),
            (PeVariant::Db, ControlScheme::Wls),
            (PeVariant::Dmdb, ControlScheme::Wls),
        ]
    }

    fn assert_parity(program: &Program, what: &str) {
        for (pe, scheme) in all_designs() {
            let mut c = core(pe, scheme);
            let event = c.run(program).unwrap();
            let reference = c.run_reference(program).unwrap();
            assert_eq!(
                event, reference,
                "{what} on {pe:?}/{scheme:?}: event-driven stats diverge"
            );
        }
    }

    #[test]
    fn event_core_matches_reference_on_microkernels() {
        for k_steps in [1, 2, 7, 32] {
            assert_parity(&microkernel_program(k_steps), "microkernel");
        }
    }

    #[test]
    fn event_core_matches_reference_on_scalar_and_vector_mixes() {
        let isa = IsaConfig::amx_like();

        // Dependent ALU chain interleaved with independent work.
        let mut b = ProgramBuilder::new(isa);
        let r0 = GprReg::new(0).unwrap();
        for i in 0..48u16 {
            b.scalar_alu(r0, &[r0]);
            b.scalar_alu(GprReg::new((1 + i % 15) as u8).unwrap(), &[]);
            b.vector_fma((i % 8) as u8, 8 + (i % 8) as u8, 16 + (i % 8) as u8);
        }
        assert_parity(&b.finish().unwrap(), "scalar/vector mix");

        // Loads feeding stores through tile registers, with scalar loads.
        let mut b = ProgramBuilder::new(IsaConfig::amx_like());
        for i in 0..32u8 {
            let reg = treg(i % 8);
            b.tile_load(reg, MemRef::tile(u64::from(i) * 0x400, 64));
            if i % 3 == 0 {
                b.push(Instruction::ScalarLoad {
                    dst: GprReg::new(i % 16).unwrap(),
                    base: Some(GprReg::new((i + 1) % 16).unwrap()),
                });
            }
            b.tile_store(MemRef::tile(u64::from(i) * 0x400, 64), reg);
        }
        assert_parity(&b.finish().unwrap(), "load/store mix");
    }

    #[test]
    fn event_core_matches_reference_under_tiny_buffers() {
        // Small ROB/RS force every stall path (rob_full, rs_full) and the
        // skip-ahead, so parity here covers the stall accounting too.
        let p = microkernel_program(12);
        for (rob_size, rs_size) in [(8, 4), (16, 2), (97, 60)] {
            for (pe, scheme) in all_designs() {
                let mut cfg = CpuConfig::skylake_like();
                cfg.rob_size = rob_size;
                cfg.rs_size = rs_size;
                let engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
                let mut c = CpuCore::new(cfg, engine);
                let event = c.run(&p).unwrap();
                let reference = c.run_reference(&p).unwrap();
                assert_eq!(
                    event, reference,
                    "ROB {rob_size} / RS {rs_size} on {pe:?}/{scheme:?}"
                );
                assert!(event.rob_full_stalls > 0 || rob_size == 97);
            }
        }
    }

    #[test]
    fn skip_ahead_wakes_rename_after_long_engine_gaps() {
        // Regression test for the skip-ahead audit (ISSUE 3): with the
        // serialized BASE engine and a tiny ROB, the core repeatedly jumps
        // over multi-hundred-cycle engine gaps while rename is blocked.
        // The jump must land exactly on the completion that unblocks
        // retirement so rename-only progress resumes without spinning or
        // overshooting: every instruction still retires, and the
        // event-driven and reference cores agree bit for bit.
        let p = microkernel_program(16);
        let mut cfg = CpuConfig::skylake_like();
        cfg.rob_size = 6; // smaller than one k-step's instruction count
        let engine = MatrixEngine::new(
            SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base).unwrap(),
        );
        let mut c = CpuCore::new(cfg, engine);
        let event = c.run(&p).unwrap();
        let sched = *c.sched_stats();
        let reference = c.run_reference(&p).unwrap();
        assert_eq!(event, reference);
        assert_eq!(event.retired_instructions as usize, p.len());
        // The engine gaps dominate the run: most of the timeline is jumped
        // over, not stepped.
        assert!(
            sched.skipped_cycles > sched.visited_cycles,
            "expected mostly-skipped timeline, got {sched:?}"
        );
        // Each visited-but-blocked cycle contributes exactly one stall, so
        // the stall count stays far below the total cycle count (the spin
        // failure mode would count thousands).
        assert!(event.rob_full_stalls < sched.visited_cycles);
    }

    #[test]
    fn sched_stats_cover_the_whole_timeline() {
        let p = microkernel_program(8);
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let stats = c.run(&p).unwrap();
        let sched = *c.sched_stats();
        // Visited + skipped cycles tile the interval from the first fetch
        // to the final cycle exactly.
        assert_eq!(
            sched.visited_cycles + sched.skipped_cycles,
            stats.cycles - CpuConfig::skylake_like().frontend_depth + 1
        );
        // One completion event per issued instruction, one or more wakeups
        // per dependence edge that was in flight.
        assert_eq!(sched.completion_events, stats.retired_instructions);
        assert!(sched.wakeups > 0);
        assert!(sched.skip_rate() > 0.0);
        // The reference loop reports no scheduler activity.
        c.run_reference(&p).unwrap();
        assert_eq!(*c.sched_stats(), SchedStats::default());
    }

    // ---- Resumable (streaming) core tests -------------------------------

    /// Feeds `program` in segments of `chunk` instructions and drains the
    /// run, returning the statistics.
    fn run_chunked(core: &mut CpuCore, program: &Program, chunk: usize) -> CpuStats {
        let mut run = core.begin_run(program.isa()).unwrap();
        for slice in program.instructions().chunks(chunk) {
            core.feed_instructions(&mut run, slice).unwrap();
        }
        core.run_to_quiescence(run).unwrap()
    }

    #[test]
    fn segment_feeding_is_bit_identical_for_any_slicing() {
        // The feed pattern must be invisible: chunk sizes of 1 (maximal
        // pausing), a prime, and effectively-one-shot all reproduce the
        // one-shot statistics on every design, bit for bit.
        let p = microkernel_program(12);
        for (pe, scheme) in all_designs() {
            let mut c = core(pe, scheme);
            let oneshot = c.run(&p).unwrap();
            let oneshot_sched = *c.sched_stats();
            for chunk in [1, 7, p.len()] {
                let streamed = run_chunked(&mut c, &p, chunk);
                assert_eq!(streamed, oneshot, "chunk {chunk} on {pe:?}/{scheme:?}");
                assert_eq!(
                    *c.sched_stats(),
                    oneshot_sched,
                    "scheduler counters drift at chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn segment_feeding_matches_under_tiny_buffers() {
        // Stall accounting across pauses: a tiny ROB forces rob_full stalls
        // at rename, which must count identically however the trace is
        // sliced (the pause fires before any stall can be mis-attributed).
        let p = microkernel_program(16);
        let mut cfg = CpuConfig::skylake_like();
        cfg.rob_size = 6;
        cfg.rs_size = 4;
        let engine = MatrixEngine::new(
            SystolicConfig::paper(PeVariant::Baseline, ControlScheme::Base).unwrap(),
        );
        let mut c = CpuCore::new(cfg, engine);
        let oneshot = c.run(&p).unwrap();
        assert!(oneshot.rob_full_stalls > 0);
        for chunk in [1, 3, 11] {
            assert_eq!(run_chunked(&mut c, &p, chunk), oneshot, "chunk {chunk}");
        }
    }

    #[test]
    fn stream_stats_track_feeding() {
        let p = microkernel_program(8);
        let mut c = core(PeVariant::Baseline, ControlScheme::Wlbp);

        // One-shot: a single segment, the whole program resident at once.
        c.run(&p).unwrap();
        let stream = *c.stream_stats();
        assert_eq!(stream.segments, 1);
        assert_eq!(stream.fed_instructions as usize, p.len());
        assert_eq!(stream.peak_resident, p.len());
        // Rename exhausts the buffer before finalization, so even the
        // one-shot path records exactly one starved-rename pause.
        assert_eq!(stream.pauses, 1);

        // Chunked: one segment per feed, peak resident bounded by the
        // chunk (the pipeline drains each chunk before pausing for more),
        // and one pause per starved rename.
        let chunk = 5;
        run_chunked(&mut c, &p, chunk);
        let stream = *c.stream_stats();
        assert_eq!(stream.segments as usize, p.len().div_ceil(chunk));
        assert_eq!(stream.fed_instructions as usize, p.len());
        assert!(
            stream.peak_resident <= 2 * chunk,
            "peak {} for chunk {chunk}",
            stream.peak_resident
        );
        assert!(stream.pauses >= stream.segments - 1);

        // The reference loop reports no streaming activity.
        c.run_reference(&p).unwrap();
        assert_eq!(*c.stream_stats(), StreamStats::default());
    }

    #[test]
    fn run_state_is_checkpointable() {
        // Clone (core, run) mid-stream; finishing the original and the
        // checkpoint with identical remaining feeds must agree bit for bit.
        let p = microkernel_program(10);
        let half = p.len() / 2;
        let mut c = core(PeVariant::Db, ControlScheme::Wls);
        let mut run = c.begin_run(p.isa()).unwrap();
        c.feed_instructions(&mut run, &p.instructions()[..half])
            .unwrap();

        let mut c2 = c.clone();
        let mut run2 = run.clone();
        assert!(!run2.is_finished());
        assert_eq!(run2.retired_instructions(), run.retired_instructions());

        c.feed_instructions(&mut run, &p.instructions()[half..])
            .unwrap();
        let original = c.run_to_quiescence(run).unwrap();
        c2.feed_instructions(&mut run2, &p.instructions()[half..])
            .unwrap();
        let resumed = c2.run_to_quiescence(run2).unwrap();
        assert_eq!(original, resumed);
        assert_eq!(original, c.run(&p).unwrap(), "and both match one-shot");
    }

    #[test]
    fn streaming_misuse_is_rejected() {
        let p = microkernel_program(1);
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);

        // Feeding after finalization: rebuild the run via run_to_quiescence
        // consuming it, so misuse means a fresh finalized-by-hand run.
        let mut run = c.begin_run(p.isa()).unwrap();
        run.finalized = true;
        assert!(matches!(
            c.feed_instructions(&mut run, p.instructions()),
            Err(CpuError::Stream { .. })
        ));

        // A segment against a different ISA is rejected.
        let other_isa = rasa_isa::IsaConfig::new(
            rasa_isa::TileGeometry::new(8, 64).unwrap(),
            8,
            rasa_isa::DataType::Bf16,
            rasa_isa::DataType::Fp32,
        )
        .unwrap();
        let mut b = rasa_isa::ProgramBuilder::new(other_isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        let segment = b.finish_segment().unwrap();
        let mut run = c.begin_run(p.isa()).unwrap();
        assert!(matches!(
            c.feed_segment(&mut run, &segment),
            Err(CpuError::Stream { .. })
        ));

        // An empty finalized run completes with default statistics, like
        // the one-shot empty-program fast path.
        let run = c.begin_run(p.isa()).unwrap();
        assert_eq!(run.pending_instructions(), 0);
        let stats = c.run_to_quiescence(run).unwrap();
        assert_eq!(stats, CpuStats::default());

        // A run fed to a core that did not open it — or to its own core
        // after a later run reset the engine — is rejected, not silently
        // mis-simulated.
        let mut other = core(PeVariant::Baseline, ControlScheme::Base);
        let mut run = c.begin_run(p.isa()).unwrap();
        assert!(matches!(
            other.feed_instructions(&mut run, p.instructions()),
            Err(CpuError::Stream { .. })
        ));
        c.run_reference(&p).unwrap(); // resets the engine mid-run
        assert!(matches!(
            c.feed_instructions(&mut run, p.instructions()),
            Err(CpuError::Stream { .. })
        ));
        assert!(matches!(
            c.run_to_quiescence(run),
            Err(CpuError::Stream { .. })
        ));
    }

    #[test]
    fn feed_segment_accepts_builder_segments() {
        // Drive the core directly from ProgramSegments (as the simulator's
        // producer/consumer pipeline does) and compare to one-shot.
        let p = microkernel_program(6);
        let mut b = rasa_isa::ProgramBuilder::new(IsaConfig::amx_like());
        let mut segments = Vec::new();
        for (i, inst) in p.iter().enumerate() {
            b.push(*inst);
            if i % 9 == 8 {
                segments.push(b.finish_segment().unwrap());
            }
        }
        segments.push(b.finish_segment().unwrap());

        let mut c = core(PeVariant::Dmdb, ControlScheme::Wls);
        let oneshot = c.run(&p).unwrap();
        let mut run = c.begin_run(p.isa()).unwrap();
        for segment in &segments {
            c.feed_segment(&mut run, segment).unwrap();
        }
        assert_eq!(c.run_to_quiescence(run).unwrap(), oneshot);
        assert_eq!(c.stream_stats().segments as usize, segments.len());
    }

    #[test]
    fn deadlock_guard_matches_reference() {
        // A single 0-latency-free program cannot deadlock; instead check
        // that both paths report the identical error for an engine
        // rejection mid-run (the only reachable error class).
        let isa = rasa_isa::IsaConfig::new(
            rasa_isa::TileGeometry::new(16, 128).unwrap(),
            8,
            rasa_isa::DataType::Bf16,
            rasa_isa::DataType::Fp32,
        )
        .unwrap();
        let mut b = ProgramBuilder::new(isa);
        b.tile_load(treg(0), MemRef::tile(0, 64));
        b.tile_load(treg(4), MemRef::tile(0x400, 64));
        b.tile_load(treg(6), MemRef::tile(0x800, 64));
        b.matmul(treg(0), treg(6), treg(4));
        let p = b.finish().unwrap();
        let mut c = core(PeVariant::Baseline, ControlScheme::Base);
        let event = c.run(&p).unwrap_err();
        let reference = c.run_reference(&p).unwrap_err();
        assert_eq!(event, reference);
    }
}
