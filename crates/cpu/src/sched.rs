//! Event-driven scheduling primitives for [`CpuCore::run`](crate::CpuCore).
//!
//! The core used to advance its pipeline cycle by cycle, re-scanning every
//! reservation-station entry (and re-sorting the station) on each step. The
//! event-driven scheduler replaces that with two structures:
//!
//! * an [`EventHeap`] — a binary min-heap of timestamped completion events
//!   (functional-unit latencies and matrix-engine completions at the
//!   core/engine clock ratio). The core only simulates cycles on which
//!   something can happen: after a cycle with progress the very next cycle
//!   (issue/rename/retire widths reset), otherwise the heap's next
//!   completion time, jumping over the gap in one step;
//! * per-ROB-entry **waiter lists** — consumers register with their
//!   incomplete producers at rename, and a popped completion event wakes
//!   exactly the instructions that were waiting on it, so readiness is
//!   maintained incrementally instead of being re-derived from the register
//!   state every cycle.
//!
//! The scheduler is cycle-exact: [`crate::CpuStats`] from the event-driven
//! loop is bit-identical to the retained cycle-stepping reference
//! ([`crate::CpuCore::run_reference`]) on every workload — the parity tests
//! in `core.rs` and the cross-crate proptests enforce this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Counters describing the event-driven scheduler's work during one
/// [`CpuCore::run`](crate::CpuCore::run) invocation.
///
/// These are diagnostics of the *simulator*, not of the simulated core:
/// they are deterministic for a given program and configuration, but they
/// are kept out of [`crate::CpuStats`] so the architectural statistics stay
/// directly comparable against the cycle-stepping reference loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Distinct cycles the scheduler actually simulated.
    pub visited_cycles: u64,
    /// Cycles jumped over between events (never simulated).
    pub skipped_cycles: u64,
    /// Completion events popped from the event heap.
    pub completion_events: u64,
    /// Consumer wakeups delivered while processing completion events.
    pub wakeups: u64,
}

impl SchedStats {
    /// Folds the counters of a later execution interval into this one (all
    /// counters are additive).
    pub fn accumulate(&mut self, interval: &SchedStats) {
        self.visited_cycles += interval.visited_cycles;
        self.skipped_cycles += interval.skipped_cycles;
        self.completion_events += interval.completion_events;
        self.wakeups += interval.wakeups;
    }

    /// Fraction of the covered timeline that was skipped rather than
    /// stepped (0 when nothing ran).
    #[must_use]
    pub fn skip_rate(&self) -> f64 {
        let total = self.visited_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }
}

/// A min-heap of `(wake cycle, ROB sequence)` completion events.
///
/// Sequences break timestamp ties so pop order is fully deterministic.
#[derive(Debug, Default)]
pub(crate) struct EventHeap {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

// Manual impl so `clone_from` reaches `BinaryHeap`'s buffer-reusing
// override (a derived impl would fall back to allocate-and-replace),
// which is what lets speculation checkpoints recycle their event heaps.
impl Clone for EventHeap {
    fn clone(&self) -> Self {
        EventHeap {
            heap: self.heap.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.heap.clone_from(&source.heap);
    }
}

impl EventHeap {
    /// Schedules the completion of ROB entry `seq` at `cycle`.
    pub fn push(&mut self, cycle: u64, seq: u64) {
        self.heap.push(Reverse((cycle, seq)));
    }

    /// Pops the earliest event not later than `now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, u64)> {
        if self.next_time()? <= now {
            self.heap.pop().map(|Reverse(event)| event)
        } else {
            None
        }
    }

    /// The earliest scheduled wake time, if any event is pending.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((time, _))| *time)
    }

    /// The pending events as a `(time, sequence)`-sorted list.
    ///
    /// Two heaps holding the same events can differ in internal layout
    /// (insertion-order dependent), so state comparison must go through
    /// this canonical view rather than the raw heap.
    pub fn sorted_events(&self) -> Vec<(u64, u64)> {
        let mut events: Vec<(u64, u64)> = self.heap.iter().map(|Reverse(event)| *event).collect();
        events.sort_unstable();
        events
    }

    /// Whether two heaps hold exactly the same event set, compared through
    /// the canonical sorted view. Length and earliest-event mismatches
    /// short-circuit before any sorted view is materialized.
    pub fn events_eq(&self, other: &EventHeap) -> bool {
        self.heap.len() == other.heap.len()
            && self.next_time() == other.next_time()
            && self.sorted_events() == other.sorted_events()
    }

    /// Rebuilds the heap with every event displaced `cycles` later and
    /// `seqs` sequences further along the instruction stream. In place:
    /// the heap's own buffer is shifted and re-heapified, no intermediate
    /// event list is allocated.
    pub fn shift(&mut self, cycles: u64, seqs: u64) {
        let mut events = std::mem::take(&mut self.heap).into_vec();
        for Reverse((time, seq)) in &mut events {
            *time += cycles;
            *seq += seqs;
        }
        self.heap = BinaryHeap::from(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_by_time_then_sequence() {
        let mut heap = EventHeap::default();
        heap.push(30, 2);
        heap.push(10, 7);
        heap.push(30, 1);
        assert_eq!(heap.next_time(), Some(10));
        assert_eq!(heap.pop_due(10), Some((10, 7)));
        assert_eq!(heap.pop_due(10), None, "future events stay queued");
        assert_eq!(heap.pop_due(40), Some((30, 1)));
        assert_eq!(heap.pop_due(40), Some((30, 2)));
        assert_eq!(heap.next_time(), None);
        assert_eq!(heap.pop_due(u64::MAX), None);
    }

    #[test]
    fn skip_rate_is_safe_on_empty_stats() {
        assert_eq!(SchedStats::default().skip_rate(), 0.0);
        let stats = SchedStats {
            visited_cycles: 25,
            skipped_cycles: 75,
            ..SchedStats::default()
        };
        assert!((stats.skip_rate() - 0.75).abs() < 1e-12);
    }
}
