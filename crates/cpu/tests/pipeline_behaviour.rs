//! Integration tests of the out-of-order core: resource pressure, engine
//! statistics consistency and configuration sensitivity.

use rasa_cpu::{CpuConfig, CpuCore};
use rasa_isa::{GprReg, IsaConfig, MemRef, Program, ProgramBuilder, TileReg};
use rasa_systolic::{ControlScheme, MatrixEngine, PeVariant, SystolicConfig};

fn treg(i: u8) -> TileReg {
    TileReg::new(i).unwrap()
}

/// The Algorithm-1 micro-kernel repeated `k_steps` times.
fn microkernel(k_steps: usize) -> Program {
    let mut b = ProgramBuilder::new(IsaConfig::amx_like());
    for i in 0..4u8 {
        b.tile_load(treg(i), MemRef::tile(u64::from(i) * 0x400, 64));
    }
    for k in 0..k_steps {
        let base = 0x10_000 + (k as u64) * 0x2000;
        b.tile_load(treg(4), MemRef::tile(base, 64));
        b.tile_load(treg(6), MemRef::tile(base + 0x400, 64));
        b.matmul(treg(0), treg(6), treg(4));
        b.tile_load(treg(7), MemRef::tile(base + 0x800, 64));
        b.matmul(treg(1), treg(7), treg(4));
        b.tile_load(treg(5), MemRef::tile(base + 0xc00, 64));
        b.matmul(treg(2), treg(6), treg(5));
        b.matmul(treg(3), treg(7), treg(5));
    }
    for i in 0..4u8 {
        b.tile_store(MemRef::tile(u64::from(i) * 0x400, 64), treg(i));
    }
    b.finish().unwrap()
}

fn run(
    cpu: CpuConfig,
    pe: PeVariant,
    scheme: ControlScheme,
    program: &Program,
) -> rasa_cpu::CpuStats {
    let engine = MatrixEngine::new(SystolicConfig::paper(pe, scheme).unwrap());
    let mut core = CpuCore::new(cpu, engine);
    core.run(program).unwrap()
}

#[test]
fn engine_statistics_are_internally_consistent() {
    let program = microkernel(48);
    for (pe, scheme) in [
        (PeVariant::Baseline, ControlScheme::Base),
        (PeVariant::Baseline, ControlScheme::Wlbp),
        (PeVariant::Db, ControlScheme::Wls),
        (PeVariant::Dmdb, ControlScheme::Wls),
    ] {
        let stats = run(CpuConfig::skylake_like(), pe, scheme, &program);
        let engine = stats.engine;
        assert_eq!(engine.matmuls, stats.retired_matmuls);
        assert_eq!(
            engine.weight_bypasses + engine.weight_prefetches + engine.full_weight_loads,
            engine.matmuls
        );
        // The engine horizon (in core cycles) can never exceed the run time.
        assert!(engine.last_completion_cycle * 4 <= stats.cycles);
        // Every matmul moves 16*32*16 MACs.
        assert_eq!(engine.total_macs, engine.matmuls * 8192);
    }
}

#[test]
fn smaller_rob_cannot_be_faster() {
    let program = microkernel(64);
    let mut small = CpuConfig::skylake_like();
    small.rob_size = 24;
    let mut large = CpuConfig::skylake_like();
    large.rob_size = 192;
    for (pe, scheme) in [
        (PeVariant::Baseline, ControlScheme::Wlbp),
        (PeVariant::Dmdb, ControlScheme::Wls),
    ] {
        let slow = run(small, pe, scheme, &program);
        let fast = run(large, pe, scheme, &program);
        assert!(slow.cycles >= fast.cycles, "{pe:?}/{scheme:?}");
    }
}

#[test]
fn tiny_reservation_station_reports_pressure() {
    let program = microkernel(32);
    let mut cfg = CpuConfig::skylake_like();
    cfg.rs_size = 4;
    let stats = run(cfg, PeVariant::Dmdb, ControlScheme::Wls, &program);
    assert_eq!(stats.retired_instructions as usize, program.len());
    assert!(stats.rs_full_stalls > 0);
}

#[test]
fn narrower_front_end_is_never_faster() {
    let program = microkernel(64);
    let mut narrow = CpuConfig::skylake_like();
    narrow.fetch_width = 1;
    narrow.issue_width = 1;
    narrow.retire_width = 1;
    let narrow_stats = run(narrow, PeVariant::Dmdb, ControlScheme::Wls, &program);
    let wide_stats = run(
        CpuConfig::skylake_like(),
        PeVariant::Dmdb,
        ControlScheme::Wls,
        &program,
    );
    assert!(narrow_stats.cycles >= wide_stats.cycles);
    assert_eq!(
        narrow_stats.retired_instructions,
        wide_stats.retired_instructions
    );
}

#[test]
fn slower_tile_loads_slow_the_serialized_design_less_than_the_pipelined_one() {
    // With BASE the 380-cycle matmuls dominate; with DMDB-WLS the loads are
    // a larger fraction of the critical path, so increasing their latency
    // hurts relatively more. This guards the latency plumbing of the LSU.
    let program = microkernel(64);
    let mut slow_loads = CpuConfig::skylake_like();
    slow_loads.tile_load_latency = 96;

    let base_fast = run(
        CpuConfig::skylake_like(),
        PeVariant::Baseline,
        ControlScheme::Base,
        &program,
    );
    let base_slow = run(
        slow_loads,
        PeVariant::Baseline,
        ControlScheme::Base,
        &program,
    );
    let rasa_fast = run(
        CpuConfig::skylake_like(),
        PeVariant::Dmdb,
        ControlScheme::Wls,
        &program,
    );
    let rasa_slow = run(slow_loads, PeVariant::Dmdb, ControlScheme::Wls, &program);

    let base_penalty = base_slow.cycles as f64 / base_fast.cycles as f64;
    let rasa_penalty = rasa_slow.cycles as f64 / rasa_fast.cycles as f64;
    assert!(base_penalty < 1.1, "baseline penalty {base_penalty}");
    assert!(rasa_penalty >= base_penalty - 1e-9);
}

#[test]
fn mixed_scalar_and_matrix_work_retires_completely() {
    // Interleave matrix work with a dependent scalar loop (address
    // generation) and an independent vector stream; everything must retire.
    let mut b = ProgramBuilder::new(IsaConfig::amx_like());
    let r = GprReg::new(5).unwrap();
    b.tile_load(treg(0), MemRef::tile(0, 64));
    b.tile_load(treg(4), MemRef::tile(0x400, 64));
    b.tile_load(treg(6), MemRef::tile(0x800, 64));
    for i in 0..32 {
        b.scalar_alu(r, &[r]);
        b.vector_fma((i % 8) as u8, 8, 16);
        b.matmul(treg(0), treg(6), treg(4));
        b.branch(i != 31);
    }
    b.tile_store(MemRef::tile(0, 64), treg(0));
    let program = b.finish().unwrap();

    let stats = run(
        CpuConfig::skylake_like(),
        PeVariant::Baseline,
        ControlScheme::Wlbp,
        &program,
    );
    assert_eq!(stats.retired_instructions as usize, program.len());
    assert_eq!(stats.retired_matmuls, 32);
    // The accumulation chain through treg0 serializes the matmuls: with a
    // 63-cycle engine occupancy (252 core cycles) the run takes at least
    // 32 × 252 cycles.
    assert!(stats.cycles > 32 * 250);
}
