use crate::{GemmKernelConfig, LoopOrder, MatmulOrder, TraceError};
use rasa_isa::{GprReg, IsaConfig, MemRef, Program, ProgramBuilder, TileReg};
use rasa_numeric::{ConvShape, GemmShape, TileGrid};

/// Base addresses used for the three operand matrices in generated traces.
/// The exact values are irrelevant to the timing model (memory never
/// stalls); they only need to be distinct and stable so that traces are
/// reproducible.
const A_BASE: u64 = 0x1000_0000;
const B_BASE: u64 = 0x2000_0000;
const C_BASE: u64 = 0x3000_0000;
/// Row stride (bytes) used for the tile loads/stores in generated traces.
const TILE_STRIDE: u64 = 64;
/// Bytes reserved per tile in the synthetic address map.
const TILE_BYTES: u64 = 1024;

/// Generates `rasa_*` instruction traces for GEMM and convolution layers
/// using an AMX-style 2×2 register-blocked micro-kernel.
///
/// See the crate documentation for the kernel structure. The generator is
/// deterministic: the same shape always produces the same program.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    isa: IsaConfig,
    kernel: GemmKernelConfig,
}

impl TraceGenerator {
    /// Generator for the paper's AMX-like ISA and default kernel.
    #[must_use]
    pub fn amx_like() -> Self {
        TraceGenerator {
            isa: IsaConfig::amx_like(),
            kernel: GemmKernelConfig::amx_like(),
        }
    }

    /// Creates a generator for a custom ISA/kernel combination.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidKernel`] when the kernel configuration is
    /// invalid, its tile dimensions exceed what the ISA's tile registers can
    /// hold, or the ISA has fewer tile registers than the kernel's register
    /// block occupies (`m·n` accumulators + `n` weight + `m` activation
    /// tiles — eight for the default 2×2 blocking).
    pub fn new(isa: IsaConfig, kernel: GemmKernelConfig) -> Result<Self, TraceError> {
        kernel.validate()?;
        if kernel.tiling.tm > isa.tm() || kernel.tiling.tk > isa.tk() || kernel.tiling.tn > isa.tn()
        {
            return Err(TraceError::InvalidKernel {
                reason: format!(
                    "kernel tiling {} exceeds the ISA tile capacity {}x{}x{}",
                    kernel.tiling,
                    isa.tm(),
                    isa.tk(),
                    isa.tn()
                ),
            });
        }
        let regs_needed = kernel.scheme.tile_regs_needed();
        if isa.num_tile_regs() < regs_needed {
            return Err(TraceError::InvalidKernel {
                reason: format!(
                    "the {} register-blocked kernel needs {} tile registers, the isa has {}",
                    kernel.scheme.block,
                    regs_needed,
                    isa.num_tile_regs()
                ),
            });
        }
        Ok(TraceGenerator { isa, kernel })
    }

    /// The ISA configuration traces are generated for.
    #[must_use]
    pub const fn isa(&self) -> &IsaConfig {
        &self.isa
    }

    /// The kernel configuration.
    #[must_use]
    pub const fn kernel(&self) -> &GemmKernelConfig {
        &self.kernel
    }

    /// Returns a generator with a different kernel configuration.
    ///
    /// # Errors
    ///
    /// Same validation as [`TraceGenerator::new`].
    pub fn with_kernel(&self, kernel: GemmKernelConfig) -> Result<Self, TraceError> {
        TraceGenerator::new(self.isa, kernel)
    }

    /// The total number of `rasa_mm` instructions a full (uncapped) trace of
    /// `shape` contains: one per (M, K, N) register tile.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] for an empty GEMM.
    pub fn matmul_count(&self, shape: GemmShape) -> Result<usize, TraceError> {
        let grid = TileGrid::new(shape, self.kernel.tiling)?;
        Ok(grid.total_tiles())
    }

    fn a_addr(&self, mi: usize, ki: usize, k_tiles: usize) -> u64 {
        A_BASE + ((mi * k_tiles + ki) as u64) * TILE_BYTES
    }

    fn b_addr(&self, ki: usize, ni: usize, n_tiles: usize) -> u64 {
        B_BASE + ((ki * n_tiles + ni) as u64) * TILE_BYTES
    }

    fn c_addr(&self, mi: usize, ni: usize, n_tiles: usize) -> u64 {
        C_BASE + ((mi * n_tiles + ni) as u64) * TILE_BYTES
    }

    /// The (mt, kt, nt) tile grid of a shape under this generator's tiling.
    pub(crate) fn tile_dims(&self, shape: GemmShape) -> Result<(usize, usize, usize), TraceError> {
        let grid = TileGrid::new(shape, self.kernel.tiling)?;
        Ok((grid.m_tiles(), grid.k_tiles(), grid.n_tiles()))
    }

    /// The number of register blocks a trace of `shape` walks (the unit
    /// both the cap check and the streaming segmenter operate on). Blocks
    /// are ordered n-block-major: linear index `nb * mb_count + mb`, with
    /// the block shape taken from the kernel scheme (2×2 by default).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] for an empty GEMM.
    pub fn block_count(&self, shape: GemmShape) -> Result<usize, TraceError> {
        let (mt, _, nt) = self.tile_dims(shape)?;
        let block = self.kernel.scheme.block;
        Ok(block.n_blocks(nt) * block.m_blocks(mt))
    }

    /// Emits one register block (accumulator loads, the K reduction loop,
    /// accumulator stores) for the block at `(nb, mb)`, bumping `emitted` by
    /// the number of `rasa_mm` instructions produced. The block shape, loop
    /// order and scalar-overhead model all come from the kernel scheme; the
    /// default scheme reproduces the pre-scheme 2×2 Algorithm-1 sequence
    /// byte for byte. Shared by the materialized [`TraceGenerator::gemm`]
    /// path and the streaming segmenter, so both emit the identical
    /// instruction sequence.
    pub(crate) fn emit_register_block(
        &self,
        b: &mut ProgramBuilder,
        (mt, kt, nt): (usize, usize, usize),
        nb: usize,
        mb: usize,
        emitted: &mut usize,
    ) {
        // Register allocation generalizing Algorithm 1: accumulators first,
        // then the weight (B) tiles, then the activation (A) tiles — for the
        // default 2×2 block exactly C=treg0..3, B=treg4..5, A=treg6..7.
        let block = self.kernel.scheme.block;
        let acc = block.m * block.n;
        let c_regs: Vec<usize> = (0..acc).collect();
        let b_regs: Vec<usize> = (acc..acc + block.n).collect();
        let a_regs: Vec<usize> = (acc + block.n..acc + block.n + block.m).collect();
        let treg =
            |i: usize| TileReg::new(i as u8).expect("validated register blocks fit the tile file");
        let a_ptr = GprReg::new(1).expect("valid gpr");
        let b_ptr = GprReg::new(2).expect("valid gpr");
        let k_counter = GprReg::new(3).expect("valid gpr");
        let scalar_regs = [a_ptr, b_ptr, k_counter];

        let n_here: Vec<usize> = (block.n * nb..(block.n * nb + block.n).min(nt)).collect();
        let m_here: Vec<usize> = (block.m * mb..(block.m * mb + block.m).min(mt)).collect();
        let c_reg_of = |m_idx: usize, n_idx: usize| treg(c_regs[m_idx * n_here.len() + n_idx]);

        // Accumulator-residency windows: K-innermost keeps the block's C
        // tiles live across the whole reduction (one window); N-innermost
        // spills and reloads them around every K step (kt one-step windows).
        let windows: Vec<(usize, usize)> = match self.kernel.scheme.loop_order {
            LoopOrder::KInnermost => vec![(0, kt)],
            LoopOrder::NInnermost => (0..kt).map(|k| (k, k + 1)).collect(),
        };

        for (k_begin, k_end) in windows {
            // Load the accumulator tiles for this residency window.
            for (m_idx, &mi) in m_here.iter().enumerate() {
                for (n_idx, &ni) in n_here.iter().enumerate() {
                    b.tile_load(
                        c_reg_of(m_idx, n_idx),
                        MemRef::tile(self.c_addr(mi, ni, nt), TILE_STRIDE),
                    );
                }
            }

            // Reduction loop: each iteration consumes one K tile.
            for ki in k_begin..k_end {
                match self.kernel.matmul_order {
                    MatmulOrder::WeightPaired => {
                        // Algorithm 1: each weight register feeds a run of
                        // consecutive rasa_mm instructions, and the A tiles
                        // loaded under the first weight are reused by all
                        // later weights.
                        for (n_idx, &ni) in n_here.iter().enumerate() {
                            b.tile_load(
                                treg(b_regs[n_idx]),
                                MemRef::tile(self.b_addr(ki, ni, nt), TILE_STRIDE),
                            );
                            for (m_idx, &mi) in m_here.iter().enumerate() {
                                if n_idx == 0 {
                                    b.tile_load(
                                        treg(a_regs[m_idx]),
                                        MemRef::tile(self.a_addr(mi, ki, kt), TILE_STRIDE),
                                    );
                                }
                                b.matmul(
                                    c_reg_of(m_idx, n_idx),
                                    treg(a_regs[m_idx]),
                                    treg(b_regs[n_idx]),
                                );
                                *emitted += 1;
                            }
                        }
                    }
                    MatmulOrder::Interleaved => {
                        // Load every operand tile up front, then emit the
                        // rasa_mm instructions alternating weight
                        // registers (no consecutive reuse).
                        for (n_idx, &ni) in n_here.iter().enumerate() {
                            b.tile_load(
                                treg(b_regs[n_idx]),
                                MemRef::tile(self.b_addr(ki, ni, nt), TILE_STRIDE),
                            );
                        }
                        for (m_idx, &mi) in m_here.iter().enumerate() {
                            b.tile_load(
                                treg(a_regs[m_idx]),
                                MemRef::tile(self.a_addr(mi, ki, kt), TILE_STRIDE),
                            );
                            #[allow(clippy::needless_range_loop)]
                            // b_regs and c_reg_of share the index
                            for n_idx in 0..n_here.len() {
                                b.matmul(
                                    c_reg_of(m_idx, n_idx),
                                    treg(a_regs[m_idx]),
                                    treg(b_regs[n_idx]),
                                );
                                *emitted += 1;
                            }
                        }
                    }
                }

                if self.kernel.emit_scalar_overhead {
                    // Pointer bumps for the A/B streams and the loop
                    // bookkeeping of the K loop, sized by the scheme's
                    // scalar-overhead model.
                    for op in 0..self.kernel.scheme.scalar_ops_per_step as usize {
                        let r = scalar_regs[op % scalar_regs.len()];
                        b.scalar_alu(r, &[r]);
                    }
                    b.branch(ki + 1 != kt);
                }
            }

            // Write the window's accumulators back.
            for (m_idx, &mi) in m_here.iter().enumerate() {
                for (n_idx, &ni) in n_here.iter().enumerate() {
                    b.tile_store(
                        MemRef::tile(self.c_addr(mi, ni, nt), TILE_STRIDE),
                        c_reg_of(m_idx, n_idx),
                    );
                }
            }
        }
    }

    /// Emits the tiled GEMM trace for `shape`.
    ///
    /// The loop nest is `for n-block { for m-block { load C; for k { … };
    /// store C } }` with the scheme's register blocking (2×2 by default),
    /// which keeps each B tile register live across consecutive `rasa_mm`
    /// instructions — the reuse pattern WLBP and WLS exploit.
    ///
    /// The streaming counterpart, [`TraceGenerator::gemm_stream`], emits the
    /// identical instruction sequence as bounded
    /// [`rasa_isa::ProgramSegment`]s without materializing the whole trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] for an empty GEMM and
    /// [`TraceError::Emit`] if the emitted program fails ISA validation
    /// (which would be a generator bug).
    pub fn gemm(&self, shape: GemmShape, name: &str) -> Result<Program, TraceError> {
        let dims = self.tile_dims(shape)?;
        let (mt, _, nt) = dims;
        let cap = self.kernel.max_matmuls.unwrap_or(usize::MAX);

        let mut b = ProgramBuilder::new(self.isa);
        b.set_name(name);

        let block = self.kernel.scheme.block;
        let mut emitted = 0usize;
        'outer: for nb in 0..block.n_blocks(nt) {
            for mb in 0..block.m_blocks(mt) {
                self.emit_register_block(&mut b, dims, nb, mb, &mut emitted);
                if emitted >= cap {
                    break 'outer;
                }
            }
        }

        Ok(b.finish()?)
    }

    /// Emits the trace for a convolution layer lowered to a GEMM via im2col
    /// (`M = N·outY·outX`, `K = C·R·S`, `N = K_filters`), the same lowering
    /// the paper relies on for the ResNet50 layers of Table I.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] when the convolution shape is invalid.
    pub fn conv(&self, conv: &ConvShape, name: &str) -> Result<Program, TraceError> {
        conv.validate()?;
        self.gemm(conv.to_gemm(), name)
    }
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator::amx_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_isa::InstructionKind;

    #[test]
    fn exact_shape_matmul_count() {
        let g = TraceGenerator::amx_like();
        // 64/16 = 4 M tiles, 64/32 = 2 K tiles, 64/16 = 4 N tiles.
        let p = g.gemm(GemmShape::new(64, 64, 64), "exact").unwrap();
        assert_eq!(p.count_matmuls(), 32);
        assert_eq!(g.matmul_count(GemmShape::new(64, 64, 64)).unwrap(), 32);
        assert_eq!(p.name(), "exact");
    }

    #[test]
    fn ragged_shape_matmul_count() {
        let g = TraceGenerator::amx_like();
        // 50→4 M tiles, 70→3 K tiles, 40→3 N tiles = 36 tiles.
        let shape = GemmShape::new(50, 70, 40);
        let p = g.gemm(shape, "ragged").unwrap();
        assert_eq!(p.count_matmuls(), 36);
        assert_eq!(p.count_matmuls(), g.matmul_count(shape).unwrap());
    }

    #[test]
    fn algorithm_one_structure_for_a_single_block() {
        // M = N = 32, K = 32: one 2×2 register block with a single K step —
        // exactly Algorithm 1 (4 C loads, 2 B loads, 2 A loads, 4 mm, 4
        // stores).
        let g = TraceGenerator::new(
            IsaConfig::amx_like(),
            GemmKernelConfig::amx_like().without_scalar_overhead(),
        )
        .unwrap();
        let p = g.gemm(GemmShape::new(32, 32, 32), "alg1").unwrap();
        assert_eq!(p.count_matmuls(), 4);
        assert_eq!(p.stats().tile_loads, 4 + 2 + 2);
        assert_eq!(p.stats().tile_stores, 4);
        // Two weight-reuse pairs, as in the paper's listing.
        assert_eq!(p.weight_reuse_pairs(), 2);
    }

    #[test]
    fn weight_reuse_is_about_half_for_large_gemms() {
        let g = TraceGenerator::amx_like();
        let p = g.gemm(GemmShape::new(256, 256, 256), "reuse").unwrap();
        let mm = p.count_matmuls();
        let reuse = p.weight_reuse_pairs();
        let rate = reuse as f64 / mm as f64;
        assert!(rate > 0.45 && rate < 0.55, "reuse rate {rate}");
    }

    #[test]
    fn programs_are_valid_and_deterministic() {
        let g = TraceGenerator::amx_like();
        let shape = GemmShape::new(100, 90, 80);
        let p1 = g.gemm(shape, "det").unwrap();
        let p2 = g.gemm(shape, "det").unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn matmul_cap_truncates_but_stays_valid() {
        let g = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(10))
            .unwrap();
        let shape = GemmShape::new(512, 512, 512);
        let p = g.gemm(shape, "capped").unwrap();
        let full = g.matmul_count(shape).unwrap();
        assert!(p.count_matmuls() >= 10);
        // The cap is honoured at register-block granularity.
        assert!(p.count_matmuls() <= 10 + 4 * 16);
        assert!(p.count_matmuls() < full);
    }

    #[test]
    fn scalar_overhead_toggles() {
        let with = TraceGenerator::amx_like()
            .gemm(GemmShape::new(64, 64, 64), "with")
            .unwrap();
        let without = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().without_scalar_overhead())
            .unwrap()
            .gemm(GemmShape::new(64, 64, 64), "without")
            .unwrap();
        assert!(with.stats().scalar_ops > 0);
        assert!(with.stats().branches > 0);
        assert_eq!(without.stats().scalar_ops, 0);
        assert_eq!(without.stats().branches, 0);
        assert_eq!(with.count_matmuls(), without.count_matmuls());
    }

    #[test]
    fn single_tile_gemm() {
        let g = TraceGenerator::amx_like();
        let p = g.gemm(GemmShape::new(7, 5, 3), "tiny").unwrap();
        assert_eq!(p.count_matmuls(), 1);
        // 1 C load, 1 B load, 1 A load, 1 store.
        assert_eq!(p.stats().tile_loads, 3);
        assert_eq!(p.stats().tile_stores, 1);
    }

    #[test]
    fn tall_skinny_and_short_wide_shapes() {
        let g = TraceGenerator::amx_like();
        // DLRM-2-like: large M, small N.
        let p = g.gemm(GemmShape::new(512, 1024, 64), "dlrm2ish").unwrap();
        assert_eq!(p.count_matmuls(), 32 * 32 * 4);
        // Single-row GEMM (batch 1 FC layer).
        let p = g.gemm(GemmShape::new(1, 1024, 64), "batch1").unwrap();
        assert_eq!(p.count_matmuls(), 32 * 4);
    }

    #[test]
    fn conv_trace_uses_lowered_dimensions() {
        let g = TraceGenerator::amx_like();
        // ResNet50-1: 1×1 conv → GEMM M=32·56·56, K=64, N=64.
        let conv = ConvShape::new(32, 64, 56, 56, 64, 1, 1, 1, 0);
        let expected = g.matmul_count(conv.to_gemm()).unwrap();
        let g_capped = g
            .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(500))
            .unwrap();
        let p = g_capped.conv(&conv, "resnet50-1").unwrap();
        assert!(p.count_matmuls() <= 600);
        assert!(expected > p.count_matmuls());
        assert_eq!(expected, (32 * 56 * 56usize).div_ceil(16) * 2 * 4);
    }

    #[test]
    fn invalid_conv_rejected() {
        let g = TraceGenerator::amx_like();
        let bad = ConvShape::new(0, 64, 56, 56, 64, 1, 1, 1, 0);
        assert!(g.conv(&bad, "bad").is_err());
    }

    #[test]
    fn empty_gemm_rejected() {
        let g = TraceGenerator::amx_like();
        assert!(g.gemm(GemmShape::new(0, 32, 16), "empty").is_err());
        assert!(g.matmul_count(GemmShape::new(0, 32, 16)).is_err());
    }

    #[test]
    fn kernel_validation_against_isa() {
        // A tiling larger than the ISA tile capacity is rejected.
        let too_big = GemmKernelConfig {
            tiling: rasa_numeric::TilingConfig::new(32, 32, 16).unwrap(),
            emit_scalar_overhead: false,
            max_matmuls: None,
            matmul_order: Default::default(),
            scheme: Default::default(),
        };
        assert!(TraceGenerator::new(IsaConfig::amx_like(), too_big).is_err());
        // Too few registers for the 2×2 blocking.
        let small_isa = IsaConfig::new(
            rasa_isa::TileGeometry::amx(),
            4,
            rasa_isa::DataType::Bf16,
            rasa_isa::DataType::Fp32,
        )
        .unwrap();
        assert!(TraceGenerator::new(small_isa, GemmKernelConfig::amx_like()).is_err());
    }

    #[test]
    fn interleaved_order_removes_consecutive_weight_reuse() {
        let shape = GemmShape::new(128, 128, 128);
        let paired = TraceGenerator::amx_like().gemm(shape, "paired").unwrap();
        let interleaved = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().with_matmul_order(MatmulOrder::Interleaved))
            .unwrap()
            .gemm(shape, "interleaved")
            .unwrap();
        // Same amount of work either way…
        assert_eq!(paired.count_matmuls(), interleaved.count_matmuls());
        // …but only the Algorithm-1 order exposes consecutive weight reuse.
        assert!(paired.weight_reuse_pairs() * 2 >= paired.count_matmuls() - 8);
        assert_eq!(interleaved.weight_reuse_pairs(), 0);
    }

    #[test]
    fn register_block_shapes_preserve_work_and_change_traffic() {
        use crate::KernelSchemeBuilder;
        let shape = GemmShape::new(96, 64, 96);
        let default = TraceGenerator::amx_like().gemm(shape, "blk22").unwrap();
        for (m, n) in [(1, 1), (1, 2), (2, 1), (3, 1), (1, 3)] {
            let kernel = KernelSchemeBuilder::new().with_block(m, n).build().unwrap();
            let g = TraceGenerator::new(IsaConfig::amx_like(), kernel).unwrap();
            let p = g.gemm(shape, "blk").unwrap();
            // Every block shape performs the identical multiply work…
            assert_eq!(p.count_matmuls(), default.count_matmuls(), "block {m}x{n}");
            // …while narrower blocks re-load operands more often.
            if (m, n) != (2, 2) {
                assert!(
                    p.stats().tile_loads > default.stats().tile_loads,
                    "block {m}x{n} should load more tiles than 2x2"
                );
            }
        }
    }

    #[test]
    fn oversized_register_block_rejected_by_the_isa() {
        use crate::KernelSchemeBuilder;
        // 3×2 needs 6 + 3 + 2 = 11 tile registers; the AMX-like ISA has 8.
        let kernel = KernelSchemeBuilder::new().with_block(3, 2).build().unwrap();
        assert!(TraceGenerator::new(IsaConfig::amx_like(), kernel).is_err());
    }

    #[test]
    fn n_innermost_spills_accumulators_every_k_step() {
        use crate::{KernelSchemeBuilder, LoopOrder};
        let shape = GemmShape::new(64, 128, 64);
        let resident = TraceGenerator::amx_like().gemm(shape, "kin").unwrap();
        let spilled = TraceGenerator::new(
            IsaConfig::amx_like(),
            KernelSchemeBuilder::new()
                .with_loop_order(LoopOrder::NInnermost)
                .build()
                .unwrap(),
        )
        .unwrap()
        .gemm(shape, "nin")
        .unwrap();
        assert_eq!(resident.count_matmuls(), spilled.count_matmuls());
        // 4 K tiles per block: the spilled order stores accumulators once
        // per K step instead of once per block.
        assert_eq!(
            spilled.stats().tile_stores,
            4 * resident.stats().tile_stores
        );
        assert!(spilled.stats().tile_loads > resident.stats().tile_loads);
    }

    #[test]
    fn scalar_overhead_model_scales_with_ops_per_step() {
        use crate::KernelSchemeBuilder;
        let shape = GemmShape::new(64, 64, 64);
        let lean = TraceGenerator::new(
            IsaConfig::amx_like(),
            KernelSchemeBuilder::new()
                .with_scalar_ops_per_step(1)
                .build()
                .unwrap(),
        )
        .unwrap()
        .gemm(shape, "lean")
        .unwrap();
        let default = TraceGenerator::amx_like().gemm(shape, "fat").unwrap();
        assert_eq!(default.stats().scalar_ops, 3 * lean.stats().scalar_ops);
        assert_eq!(default.stats().branches, lean.stats().branches);
    }

    #[test]
    fn block_len_estimate_is_exact_for_interior_blocks() {
        use crate::{KernelSchemeBuilder, LoopOrder};
        // Shapes that divide evenly: every block is interior, so the whole
        // trace length is blocks × estimate.
        let shape = GemmShape::new(64, 64, 64);
        for kernel in [
            GemmKernelConfig::amx_like(),
            KernelSchemeBuilder::new().with_block(1, 2).build().unwrap(),
            KernelSchemeBuilder::new()
                .with_loop_order(LoopOrder::NInnermost)
                .build()
                .unwrap(),
            KernelSchemeBuilder::new()
                .without_scalar_overhead()
                .build()
                .unwrap(),
        ] {
            let g = TraceGenerator::new(IsaConfig::amx_like(), kernel).unwrap();
            let p = g.gemm(shape, "estimate").unwrap();
            let (_, kt, _) = g.tile_dims(shape).unwrap();
            let blocks = g.block_count(shape).unwrap();
            assert_eq!(
                p.len(),
                blocks * kernel.block_len_estimate(kt),
                "kernel {kernel}"
            );
        }
    }

    #[test]
    fn loads_precede_every_matmul_operand() {
        // Spot-check the program order property the builder validates: the
        // B register of every matmul was loaded earlier in the trace.
        let g = TraceGenerator::amx_like();
        let p = g.gemm(GemmShape::new(48, 96, 48), "order").unwrap();
        let mut loaded = [false; 8];
        for inst in p.iter() {
            if inst.kind() == InstructionKind::TileLoad {
                for w in inst.tile_writes().iter() {
                    loaded[w.index()] = true;
                }
            }
            if let rasa_isa::Instruction::MatMul { a, b, .. } = inst {
                assert!(loaded[a.index()]);
                assert!(loaded[b.index()]);
            }
        }
    }
}
