//! AVX-512-style SIMD baseline kernel emitter.
//!
//! The paper's methodology collects both AMX and AVX LIBXSMM kernels; the
//! matrix-engine evaluation only compares systolic designs, but the SIMD
//! kernel is the natural "what if we had no matrix engine" reference point.
//! This module emits a vector-FMA GEMM micro-kernel so the CPU model can run
//! that reference:
//!
//! * 512-bit vectors of 16 FP32 lanes;
//! * a 4-row × 4-vector register block (16 accumulator registers), the
//!   classic AVX-512 SGEMM blocking that fits the 32 architectural vector
//!   registers with room for operand staging;
//! * per K step: one vector load per B column block, one scalar broadcast
//!   load per A row, and a 4×4 grid of FMAs.
//!
//! **Modelling simplification** (documented, see DESIGN.md): the ISA models
//! vector operand loads as [`rasa_isa::Instruction::ScalarLoad`] micro-ops
//! (they occupy load-port slots with the idealized L1 latency); the
//! dependence that actually paces the kernel — the accumulator chain through
//! the FMA destination registers — is carried precisely by
//! [`rasa_isa::Instruction::VectorFma`].

use crate::{TraceError, TraceGenerator};
use rasa_isa::{GprReg, Program, ProgramBuilder};
use rasa_numeric::GemmShape;

/// FP32 lanes per 512-bit vector.
const LANES: usize = 16;
/// Accumulator rows per register block.
const BLOCK_ROWS: usize = 4;
/// Accumulator vector columns per register block (each 16 lanes wide).
const BLOCK_COLS: usize = 4;

impl TraceGenerator {
    /// Emits an AVX-512-style SIMD GEMM trace for `shape` (FP32 FMAs, no
    /// matrix engine involvement). The cap configured for the kernel applies
    /// to FMA instructions here, scaled so that one `rasa_mm`'s worth of
    /// work corresponds to `TM·TK·TN / 16` FMAs.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] for an empty GEMM.
    pub fn gemm_avx(&self, shape: GemmShape, name: &str) -> Result<Program, TraceError> {
        if shape.is_empty() {
            return Err(TraceError::Shape(
                rasa_numeric::NumericError::InvalidTiling {
                    reason: format!("cannot generate an avx kernel for an empty GEMM ({shape})"),
                },
            ));
        }
        let mut b = ProgramBuilder::new(*self.isa());
        b.set_name(name);

        // Iteration space in register blocks.
        let row_blocks = shape.m.div_ceil(BLOCK_ROWS);
        let col_blocks = shape.n.div_ceil(BLOCK_COLS * LANES);
        let k_steps = shape.k;

        // The FMA cap equivalent to the configured rasa_mm cap.
        let fma_cap = self
            .kernel()
            .max_matmuls
            .map_or(usize::MAX, |mm| mm.saturating_mul(16 * 32 * 16 / LANES));

        let a_ptr = GprReg::new(1).expect("valid gpr");
        let b_ptr = GprReg::new(2).expect("valid gpr");
        let k_counter = GprReg::new(3).expect("valid gpr");

        // Vector register allocation: accumulators 0..16, B operands 16..20,
        // A broadcasts 20..24.
        let acc = |r: usize, c: usize| (r * BLOCK_COLS + c) as u8;
        let b_reg = |c: usize| (16 + c) as u8;
        let a_reg = |r: usize| (20 + r) as u8;

        let mut fmas = 0usize;
        'outer: for _cb in 0..col_blocks {
            for _rb in 0..row_blocks {
                for k in 0..k_steps {
                    // B vector loads for the four column vectors.
                    for c in 0..BLOCK_COLS {
                        b.push(rasa_isa::Instruction::ScalarLoad {
                            dst: b_ptr,
                            base: Some(b_ptr),
                        });
                        // The loaded value lands in the B vector register;
                        // model the rename through a zero-latency FMA-free
                        // move is unnecessary — the accumulator chain is the
                        // pacing dependence.
                        let _ = c;
                    }
                    for r in 0..BLOCK_ROWS {
                        // Broadcast load of A[r][k].
                        b.push(rasa_isa::Instruction::ScalarLoad {
                            dst: a_ptr,
                            base: Some(a_ptr),
                        });
                        for c in 0..BLOCK_COLS {
                            b.vector_fma(acc(r, c), a_reg(r), b_reg(c));
                            fmas += 1;
                        }
                    }
                    if self.kernel().emit_scalar_overhead {
                        b.scalar_alu(k_counter, &[k_counter]);
                        b.branch(k + 1 != k_steps);
                    }
                    if fmas >= fma_cap {
                        break 'outer;
                    }
                }
            }
        }

        Ok(b.finish()?)
    }

    /// The number of vector FMA instructions a full (uncapped) AVX trace of
    /// `shape` contains.
    #[must_use]
    pub fn fma_count(&self, shape: GemmShape) -> usize {
        let row_blocks = shape.m.div_ceil(BLOCK_ROWS);
        let col_blocks = shape.n.div_ceil(BLOCK_COLS * LANES);
        row_blocks * col_blocks * shape.k * BLOCK_ROWS * BLOCK_COLS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GemmKernelConfig;

    #[test]
    fn avx_trace_has_the_expected_fma_count() {
        let g = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().without_scalar_overhead())
            .unwrap();
        // 64 rows → 16 row blocks; 64 cols → 1 col block; K = 64.
        let shape = GemmShape::new(64, 64, 64);
        let p = g.gemm_avx(shape, "avx").unwrap();
        assert_eq!(p.stats().vector_ops, g.fma_count(shape));
        assert_eq!(p.stats().vector_ops, 16 * 64 * 16);
        assert_eq!(p.count_matmuls(), 0);
        assert!(p.stats().scalar_ops > 0); // operand loads
    }

    #[test]
    fn avx_trace_covers_all_lanes_of_the_gemm() {
        let g = TraceGenerator::amx_like();
        let shape = GemmShape::new(32, 32, 128);
        // Each FMA performs 16 MACs; the kernel covers at least the GEMM's
        // MAC count (edge blocks round up).
        assert!(g.fma_count(shape) * LANES >= shape.macs());
    }

    #[test]
    fn cap_truncates_avx_traces_too() {
        let g = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(2))
            .unwrap();
        let shape = GemmShape::new(512, 512, 512);
        let p = g.gemm_avx(shape, "avx-capped").unwrap();
        // 2 rasa_mm of work = 2·8192/16 = 1024 FMAs, rounded up to the next
        // K step boundary (16 FMAs per step).
        assert!(p.stats().vector_ops >= 1024);
        assert!(p.stats().vector_ops < 1200);
    }

    #[test]
    fn empty_shape_rejected() {
        let g = TraceGenerator::amx_like();
        assert!(g.gemm_avx(GemmShape::new(0, 4, 4), "bad").is_err());
    }

    #[test]
    fn scalar_overhead_toggle_applies() {
        let with = TraceGenerator::amx_like()
            .gemm_avx(GemmShape::new(8, 8, 32), "with")
            .unwrap();
        assert!(with.stats().branches > 0);
        let without = TraceGenerator::amx_like()
            .with_kernel(GemmKernelConfig::amx_like().without_scalar_overhead())
            .unwrap()
            .gemm_avx(GemmShape::new(8, 8, 32), "without")
            .unwrap();
        assert_eq!(without.stats().branches, 0);
    }
}
