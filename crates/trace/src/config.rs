use crate::TraceError;
use rasa_numeric::TilingConfig;
use std::fmt;

/// The order in which the four `rasa_mm` instructions of a 2×2 register
/// block are emitted within one K step.
///
/// The order controls how much *consecutive* weight-register reuse the trace
/// exposes, which is precisely what the WLBP/WLS optimizations feed on — so
/// it is the knob of the kernel-blocking ablation (`ablation_blocking`):
///
/// * [`MatmulOrder::WeightPaired`] — Algorithm 1's order
///   (`C0·A0·B0, C1·A1·B0, C2·A0·B1, C3·A1·B1`): each weight register is
///   used by two consecutive instructions, a 50 % consecutive-reuse rate.
/// * [`MatmulOrder::Interleaved`] — the weight registers alternate every
///   instruction (`C0·A0·B0, C2·A0·B1, C1·A1·B0, C3·A1·B1`): zero
///   consecutive reuse, so WLBP degenerates to PIPE while WLS still hides
///   the loads via the shadow buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatmulOrder {
    /// Algorithm-1 order: two consecutive uses of each weight register.
    #[default]
    WeightPaired,
    /// Alternate weight registers every instruction (no consecutive reuse).
    Interleaved,
}

impl MatmulOrder {
    /// Short label used in ablation tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            MatmulOrder::WeightPaired => "weight-paired",
            MatmulOrder::Interleaved => "interleaved",
        }
    }
}

impl fmt::Display for MatmulOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Configuration of the generated GEMM kernel.
///
/// The defaults reproduce the structure of the paper's Algorithm 1: a 2×2
/// register block (four accumulators, two A tiles, two B tiles) with the K
/// loop innermost, plus a light sprinkle of scalar overhead so the trace
/// resembles a real compiled micro-kernel rather than a bare `rasa_mm`
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmKernelConfig {
    /// Register-tile dimensions (TM/TK/TN), normally derived from the ISA.
    pub tiling: TilingConfig,
    /// Whether to emit scalar pointer-bump instructions and loop branches.
    pub emit_scalar_overhead: bool,
    /// Optional cap on the number of `rasa_mm` instructions emitted; the
    /// loop nest is truncated once the cap is reached. Used to keep
    /// cycle-level simulations of very large layers tractable — the caller
    /// can extrapolate using the true tile count.
    pub max_matmuls: Option<usize>,
    /// Emission order of the `rasa_mm` instructions inside a register block
    /// (the consecutive-weight-reuse ablation knob).
    pub matmul_order: MatmulOrder,
}

impl GemmKernelConfig {
    /// The default Algorithm-1-style kernel for the AMX-like tiling.
    #[must_use]
    pub fn amx_like() -> Self {
        GemmKernelConfig {
            tiling: TilingConfig::amx(),
            emit_scalar_overhead: true,
            max_matmuls: None,
            matmul_order: MatmulOrder::WeightPaired,
        }
    }

    /// Returns a copy with a different intra-block `rasa_mm` emission order.
    #[must_use]
    pub const fn with_matmul_order(mut self, order: MatmulOrder) -> Self {
        self.matmul_order = order;
        self
    }

    /// Returns a copy with a matmul cap installed.
    #[must_use]
    pub const fn with_max_matmuls(mut self, cap: usize) -> Self {
        self.max_matmuls = Some(cap);
        self
    }

    /// Returns a copy without scalar overhead (pure matrix-op trace).
    #[must_use]
    pub const fn without_scalar_overhead(mut self) -> Self {
        self.emit_scalar_overhead = false;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidKernel`] when a tile dimension is zero or
    /// the cap is zero.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.tiling.tm == 0 || self.tiling.tk == 0 || self.tiling.tn == 0 {
            return Err(TraceError::InvalidKernel {
                reason: format!("tile dimensions must be non-zero, got {}", self.tiling),
            });
        }
        if self.max_matmuls == Some(0) {
            return Err(TraceError::InvalidKernel {
                reason: "matmul cap must be at least one".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for GemmKernelConfig {
    fn default() -> Self {
        GemmKernelConfig::amx_like()
    }
}

impl fmt::Display for GemmKernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "2x2 register-blocked kernel, {}{}{}",
            self.tiling,
            if self.emit_scalar_overhead {
                ", scalar overhead"
            } else {
                ""
            },
            match self.max_matmuls {
                Some(cap) => format!(", capped at {cap} rasa_mm, {} order", self.matmul_order),
                None => format!(", {} order", self.matmul_order),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_amx() {
        let c = GemmKernelConfig::default();
        assert_eq!(c.tiling, TilingConfig::amx());
        assert!(c.emit_scalar_overhead);
        assert_eq!(c.max_matmuls, None);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders() {
        let c = GemmKernelConfig::amx_like()
            .with_max_matmuls(100)
            .without_scalar_overhead();
        assert_eq!(c.max_matmuls, Some(100));
        assert!(!c.emit_scalar_overhead);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GemmKernelConfig::amx_like();
        c.max_matmuls = Some(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_mentions_cap() {
        let c = GemmKernelConfig::amx_like().with_max_matmuls(7);
        assert!(c.to_string().contains("capped at 7"));
        assert!(c.to_string().contains("weight-paired"));
    }

    #[test]
    fn matmul_order_builder_and_labels() {
        assert_eq!(MatmulOrder::default(), MatmulOrder::WeightPaired);
        assert_eq!(MatmulOrder::Interleaved.label(), "interleaved");
        let c = GemmKernelConfig::amx_like().with_matmul_order(MatmulOrder::Interleaved);
        assert_eq!(c.matmul_order, MatmulOrder::Interleaved);
        assert!(c.to_string().contains("interleaved"));
    }
}
