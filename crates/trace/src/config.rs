use crate::scheme::{KernelScheme, LoopOrder};
use crate::TraceError;
use rasa_numeric::TilingConfig;
use std::fmt;

/// The order in which the four `rasa_mm` instructions of a 2×2 register
/// block are emitted within one K step.
///
/// The order controls how much *consecutive* weight-register reuse the trace
/// exposes, which is precisely what the WLBP/WLS optimizations feed on — so
/// it is the knob of the kernel-blocking ablation (`ablation_blocking`):
///
/// * [`MatmulOrder::WeightPaired`] — Algorithm 1's order
///   (`C0·A0·B0, C1·A1·B0, C2·A0·B1, C3·A1·B1`): each weight register is
///   used by two consecutive instructions, a 50 % consecutive-reuse rate.
/// * [`MatmulOrder::Interleaved`] — the weight registers alternate every
///   instruction (`C0·A0·B0, C2·A0·B1, C1·A1·B0, C3·A1·B1`): zero
///   consecutive reuse, so WLBP degenerates to PIPE while WLS still hides
///   the loads via the shadow buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum MatmulOrder {
    /// Algorithm-1 order: two consecutive uses of each weight register.
    #[default]
    WeightPaired,
    /// Alternate weight registers every instruction (no consecutive reuse).
    Interleaved,
}

impl MatmulOrder {
    /// Short label used in ablation tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            MatmulOrder::WeightPaired => "weight-paired",
            MatmulOrder::Interleaved => "interleaved",
        }
    }
}

impl fmt::Display for MatmulOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Configuration of the generated GEMM kernel.
///
/// The defaults reproduce the structure of the paper's Algorithm 1: a 2×2
/// register block (four accumulators, two A tiles, two B tiles) with the K
/// loop innermost, plus a light sprinkle of scalar overhead so the trace
/// resembles a real compiled micro-kernel rather than a bare `rasa_mm`
/// stream. The structural axes beyond the tiling live in the embedded
/// [`KernelScheme`]; non-default schemes are assembled with
/// [`crate::KernelSchemeBuilder`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct GemmKernelConfig {
    /// Register-tile dimensions (TM/TK/TN), normally derived from the ISA.
    pub tiling: TilingConfig,
    /// Whether to emit scalar pointer-bump instructions and loop branches.
    pub emit_scalar_overhead: bool,
    /// Optional cap on the number of `rasa_mm` instructions emitted; the
    /// loop nest is truncated once the cap is reached. Used to keep
    /// cycle-level simulations of very large layers tractable — the caller
    /// can extrapolate using the true tile count.
    pub max_matmuls: Option<usize>,
    /// Emission order of the `rasa_mm` instructions inside a register block
    /// (the consecutive-weight-reuse ablation knob).
    pub matmul_order: MatmulOrder,
    /// Structural kernel axes: register-block shape, loop order,
    /// scalar-overhead model and streaming segment hint.
    pub scheme: KernelScheme,
}

impl GemmKernelConfig {
    /// The default Algorithm-1-style kernel for the AMX-like tiling,
    /// derived from the scheme builder's defaults — the single source of
    /// truth every layer's default kernel collapses onto.
    #[must_use]
    pub fn amx_like() -> Self {
        crate::KernelSchemeBuilder::new()
            .build()
            .expect("the Algorithm-1 defaults are valid")
    }

    /// A deterministic estimate of the instruction count of one *full*
    /// register block over a reduction of `kt` K tiles, as emitted by the
    /// trace generator: accumulator moves plus per-step operand loads,
    /// matmuls and modeled scalar overhead.
    ///
    /// The estimate is exact for interior (unclipped) blocks and is the
    /// single source of truth for the simulator's speculative fork points
    /// and shard sizing, which only need determinism, not exactness at the
    /// ragged edges.
    #[must_use]
    pub fn block_len_estimate(&self, kt: usize) -> usize {
        let (bm, bn) = (self.scheme.block.m, self.scheme.block.n);
        let acc = bm * bn;
        let overhead = if self.emit_scalar_overhead {
            self.scheme.scalar_ops_per_step as usize + 1
        } else {
            0
        };
        let per_step = bm + bn + acc + overhead;
        match self.scheme.loop_order {
            LoopOrder::KInnermost => 2 * acc + kt * per_step,
            LoopOrder::NInnermost => kt * (per_step + 2 * acc),
        }
    }

    /// Returns a copy with a different intra-block `rasa_mm` emission order.
    #[must_use]
    pub const fn with_matmul_order(mut self, order: MatmulOrder) -> Self {
        self.matmul_order = order;
        self
    }

    /// Returns a copy with a matmul cap installed.
    #[must_use]
    pub const fn with_max_matmuls(mut self, cap: usize) -> Self {
        self.max_matmuls = Some(cap);
        self
    }

    /// Returns a copy without scalar overhead (pure matrix-op trace).
    #[must_use]
    pub const fn without_scalar_overhead(mut self) -> Self {
        self.emit_scalar_overhead = false;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidKernel`] when a tile dimension is zero,
    /// the cap is zero, or the scheme is invalid.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.tiling.tm == 0 || self.tiling.tk == 0 || self.tiling.tn == 0 {
            return Err(TraceError::InvalidKernel {
                reason: format!("tile dimensions must be non-zero, got {}", self.tiling),
            });
        }
        if self.max_matmuls == Some(0) {
            return Err(TraceError::InvalidKernel {
                reason: "matmul cap must be at least one".to_string(),
            });
        }
        self.scheme.validate()
    }
}

/// Hand-written so the rendering doubles as the kernel half of the runner's
/// semantic cell key: default-scheme kernels print exactly the pre-scheme
/// derived text (keeping every pinned golden cache key byte-stable), while
/// any non-default scheme appends its axes — so two configs that differ in
/// any axis can never render the same key.
impl fmt::Debug for GemmKernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GemmKernelConfig {{ tiling: {:?}, emit_scalar_overhead: {:?}, max_matmuls: {:?}, matmul_order: {:?}",
            self.tiling, self.emit_scalar_overhead, self.max_matmuls, self.matmul_order
        )?;
        if !self.scheme.is_default() {
            write!(f, ", scheme: {:?}", self.scheme)?;
        }
        write!(f, " }}")
    }
}

impl Default for GemmKernelConfig {
    fn default() -> Self {
        GemmKernelConfig::amx_like()
    }
}

impl fmt::Display for GemmKernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} register-blocked kernel, {}{}{}",
            self.scheme.block,
            self.tiling,
            if self.emit_scalar_overhead {
                ", scalar overhead"
            } else {
                ""
            },
            match self.max_matmuls {
                Some(cap) => format!(", capped at {cap} rasa_mm, {} order", self.matmul_order),
                None => format!(", {} order", self.matmul_order),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_amx() {
        let c = GemmKernelConfig::default();
        assert_eq!(c.tiling, TilingConfig::amx());
        assert!(c.emit_scalar_overhead);
        assert_eq!(c.max_matmuls, None);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders() {
        let c = GemmKernelConfig::amx_like()
            .with_max_matmuls(100)
            .without_scalar_overhead();
        assert_eq!(c.max_matmuls, Some(100));
        assert!(!c.emit_scalar_overhead);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GemmKernelConfig::amx_like();
        c.max_matmuls = Some(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_mentions_cap() {
        let c = GemmKernelConfig::amx_like().with_max_matmuls(7);
        assert!(c.to_string().contains("capped at 7"));
        assert!(c.to_string().contains("weight-paired"));
    }

    #[test]
    fn debug_key_is_legacy_stable_for_the_default_scheme() {
        // The golden cache keys embed this exact rendering — a kernel whose
        // scheme is Algorithm 1 must keep printing the pre-scheme text.
        let k = GemmKernelConfig::amx_like().with_max_matmuls(256);
        assert_eq!(
            format!("{k:?}"),
            "GemmKernelConfig { tiling: TilingConfig { tm: 16, tk: 32, tn: 16 }, \
             emit_scalar_overhead: true, max_matmuls: Some(256), matmul_order: WeightPaired }"
        );
    }

    #[test]
    fn debug_key_distinguishes_non_default_schemes() {
        let base = GemmKernelConfig::amx_like();
        let mut narrow = base;
        narrow.scheme.block = rasa_numeric::RegisterBlock::new(1, 2).unwrap();
        let mut spilled = base;
        spilled.scheme.loop_order = LoopOrder::NInnermost;
        let keys = [
            format!("{base:?}"),
            format!("{narrow:?}"),
            format!("{spilled:?}"),
        ];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
        assert!(keys[1].contains("scheme:"));
        assert!(!keys[0].contains("scheme:"));
    }

    #[test]
    fn matmul_order_builder_and_labels() {
        assert_eq!(MatmulOrder::default(), MatmulOrder::WeightPaired);
        assert_eq!(MatmulOrder::Interleaved.label(), "interleaved");
        let c = GemmKernelConfig::amx_like().with_matmul_order(MatmulOrder::Interleaved);
        assert_eq!(c.matmul_order, MatmulOrder::Interleaved);
        assert!(c.to_string().contains("interleaved"));
    }
}
