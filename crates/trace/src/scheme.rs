//! First-class kernel schemes: the searchable axes of the generated
//! micro-kernel and a validating builder that assembles them into a
//! [`GemmKernelConfig`].
//!
//! Historically the kernel was a frozen constant — every trace came from the
//! hard-coded Algorithm-1 configuration. The scheme lifts each structural
//! choice of the micro-kernel into data so the joint hardware × kernel design
//! space can be searched:
//!
//! * **register-block shape** ([`RegisterBlock`]) — how many A/B tiles are
//!   held live per block, beyond the fixed 2×2;
//! * **matmul order** ([`MatmulOrder`]) — weight-paired vs interleaved
//!   emission inside a K step;
//! * **loop order** ([`LoopOrder`]) — whether accumulators stay register
//!   resident across the whole K reduction or spill around every K step;
//! * **scalar-overhead model** — how many pointer-bump/loop-bookkeeping
//!   scalar ops accompany each K step (a fully unrolled kernel has none);
//! * **segment size** — a per-kernel streaming granularity hint.

use crate::config::{GemmKernelConfig, MatmulOrder};
use crate::TraceError;
use rasa_numeric::{RegisterBlock, TilingConfig};
use std::fmt;

/// Placement of the K (reduction) loop relative to the register block.
///
/// The generated loop nest is always `for n-block { for m-block { … } }`;
/// what varies is whether the accumulator tiles of a block survive the whole
/// reduction in registers or are spilled and reloaded around every K step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum LoopOrder {
    /// K is the innermost loop (Algorithm 1): accumulators are loaded once
    /// per block, stay register resident across the whole reduction, and are
    /// stored once. Minimal C traffic.
    #[default]
    KInnermost,
    /// The tile loops are innermost: every K step reloads and writes back
    /// the block's accumulator tiles. Same `rasa_mm` count, `2·m·n` extra
    /// tile moves per K step — the memory-bound end of the loop-order axis.
    NInnermost,
}

impl LoopOrder {
    /// Short label used in search output and ablation tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            LoopOrder::KInnermost => "k-innermost",
            LoopOrder::NInnermost => "n-innermost",
        }
    }
}

impl fmt::Display for LoopOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The structural axes of a generated micro-kernel beyond its tiling: the
/// register-block shape, loop order, scalar-overhead model and streaming
/// segment hint.
///
/// The default scheme reproduces the paper's Algorithm 1 exactly (2×2 block,
/// K innermost, three scalar ops + one branch per K step, no segment hint);
/// [`GemmKernelConfig`]s carrying the default scheme generate byte-identical
/// traces to every release before schemes existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelScheme {
    /// Register-block shape (A tiles × B tiles held live per block).
    pub block: RegisterBlock,
    /// Accumulator residency across the K reduction.
    pub loop_order: LoopOrder,
    /// Scalar pointer-bump/bookkeeping ops emitted per K step when scalar
    /// overhead is enabled (Algorithm 1 models three; a software-pipelined
    /// kernel may need fewer, a fully unrolled one none).
    pub scalar_ops_per_step: u8,
    /// Preferred streaming segment size for traces of this kernel; `None`
    /// defers to the caller's segment size.
    pub segment_size: Option<usize>,
}

impl KernelScheme {
    /// The Algorithm-1 scheme: 2×2 block, K innermost, three scalar ops per
    /// step, no segment hint. The single source of truth for the default
    /// kernel — [`GemmKernelConfig::amx_like`] derives from it.
    #[must_use]
    pub fn algorithm_one() -> Self {
        KernelScheme::default()
    }

    /// Tile registers the scheme's register block occupies.
    #[must_use]
    pub const fn tile_regs_needed(&self) -> usize {
        self.block.tile_regs_needed()
    }

    /// Whether this is the default Algorithm-1 scheme (the compatibility
    /// fast path: default-scheme kernels render legacy cache keys and JSON).
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == KernelScheme::default()
    }

    /// Validates the scheme.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidKernel`] when the register block has a
    /// zero dimension or the segment hint is zero.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.block.m == 0 || self.block.n == 0 {
            return Err(TraceError::InvalidKernel {
                reason: format!(
                    "register block dimensions must be non-zero, got {}",
                    self.block
                ),
            });
        }
        if self.segment_size == Some(0) {
            return Err(TraceError::InvalidKernel {
                reason: "segment size hint must be at least one instruction".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for KernelScheme {
    fn default() -> Self {
        KernelScheme {
            block: RegisterBlock::algorithm_one(),
            loop_order: LoopOrder::KInnermost,
            scalar_ops_per_step: 3,
            segment_size: None,
        }
    }
}

impl fmt::Display for KernelScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} block, {}, {} scalar ops/step",
            self.block, self.loop_order, self.scalar_ops_per_step
        )?;
        if let Some(seg) = self.segment_size {
            write!(f, ", {seg}-instruction segments")?;
        }
        Ok(())
    }
}

/// Builder assembling every kernel axis into a validated
/// [`GemmKernelConfig`].
///
/// Unset axes fall back to the Algorithm-1 defaults, so
/// `KernelSchemeBuilder::new().build()` is exactly
/// [`GemmKernelConfig::amx_like`]:
///
/// ```
/// use rasa_trace::{KernelSchemeBuilder, GemmKernelConfig, LoopOrder};
///
/// assert_eq!(KernelSchemeBuilder::new().build()?, GemmKernelConfig::amx_like());
/// let unrolled = KernelSchemeBuilder::new()
///     .with_block(1, 3)
///     .with_loop_order(LoopOrder::NInnermost)
///     .without_scalar_overhead()
///     .build()?;
/// assert_eq!(unrolled.scheme.block.tile_regs_needed(), 7);
/// # Ok::<(), rasa_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelSchemeBuilder {
    tiling: Option<TilingConfig>,
    block: Option<RegisterBlock>,
    matmul_order: Option<MatmulOrder>,
    loop_order: Option<LoopOrder>,
    scalar_ops_per_step: Option<u8>,
    emit_scalar_overhead: Option<bool>,
    max_matmuls: Option<usize>,
    segment_size: Option<usize>,
}

impl KernelSchemeBuilder {
    /// A builder with every axis at its Algorithm-1 default.
    #[must_use]
    pub fn new() -> Self {
        KernelSchemeBuilder::default()
    }

    /// Sets the register-tile dimensions (default: the AMX tiling).
    #[must_use]
    pub const fn with_tiling(mut self, tiling: TilingConfig) -> Self {
        self.tiling = Some(tiling);
        self
    }

    /// Sets the register-block shape (default 2×2).
    #[must_use]
    pub const fn with_block(mut self, m: usize, n: usize) -> Self {
        self.block = Some(RegisterBlock { m, n });
        self
    }

    /// Sets the intra-block `rasa_mm` emission order.
    #[must_use]
    pub const fn with_matmul_order(mut self, order: MatmulOrder) -> Self {
        self.matmul_order = Some(order);
        self
    }

    /// Sets the accumulator-residency loop order.
    #[must_use]
    pub const fn with_loop_order(mut self, order: LoopOrder) -> Self {
        self.loop_order = Some(order);
        self
    }

    /// Sets the number of scalar bookkeeping ops per K step (default 3).
    #[must_use]
    pub const fn with_scalar_ops_per_step(mut self, ops: u8) -> Self {
        self.scalar_ops_per_step = Some(ops);
        self
    }

    /// Disables scalar overhead entirely — a fully unrolled kernel.
    #[must_use]
    pub const fn without_scalar_overhead(mut self) -> Self {
        self.emit_scalar_overhead = Some(false);
        self
    }

    /// Caps the number of `rasa_mm` instructions emitted.
    #[must_use]
    pub const fn with_max_matmuls(mut self, cap: usize) -> Self {
        self.max_matmuls = Some(cap);
        self
    }

    /// Sets the preferred streaming segment size for this kernel.
    #[must_use]
    pub const fn with_segment_size(mut self, instructions: usize) -> Self {
        self.segment_size = Some(instructions);
        self
    }

    /// Builds the validated kernel configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidKernel`] when any axis is invalid (zero
    /// tile or block dimension, zero cap, zero segment hint).
    pub fn build(self) -> Result<GemmKernelConfig, TraceError> {
        let kernel = GemmKernelConfig {
            tiling: self.tiling.unwrap_or_default(),
            emit_scalar_overhead: self.emit_scalar_overhead.unwrap_or(true),
            max_matmuls: self.max_matmuls,
            matmul_order: self.matmul_order.unwrap_or_default(),
            scheme: KernelScheme {
                block: self.block.unwrap_or_default(),
                loop_order: self.loop_order.unwrap_or_default(),
                scalar_ops_per_step: self.scalar_ops_per_step.unwrap_or(3),
                segment_size: self.segment_size,
            },
        };
        kernel.validate()?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_the_amx_kernel() {
        let built = KernelSchemeBuilder::new().build().unwrap();
        assert_eq!(built, GemmKernelConfig::amx_like());
        assert!(built.scheme.is_default());
    }

    #[test]
    fn builder_covers_every_axis() {
        let k = KernelSchemeBuilder::new()
            .with_block(3, 1)
            .with_matmul_order(MatmulOrder::Interleaved)
            .with_loop_order(LoopOrder::NInnermost)
            .with_scalar_ops_per_step(1)
            .with_max_matmuls(64)
            .with_segment_size(256)
            .build()
            .unwrap();
        assert_eq!(k.scheme.block, RegisterBlock::new(3, 1).unwrap());
        assert_eq!(k.matmul_order, MatmulOrder::Interleaved);
        assert_eq!(k.scheme.loop_order, LoopOrder::NInnermost);
        assert_eq!(k.scheme.scalar_ops_per_step, 1);
        assert_eq!(k.max_matmuls, Some(64));
        assert_eq!(k.scheme.segment_size, Some(256));
        assert!(!k.scheme.is_default());
    }

    #[test]
    fn invalid_axes_rejected() {
        assert!(KernelSchemeBuilder::new().with_block(0, 2).build().is_err());
        assert!(KernelSchemeBuilder::new().with_block(2, 0).build().is_err());
        assert!(KernelSchemeBuilder::new()
            .with_segment_size(0)
            .build()
            .is_err());
        assert!(KernelSchemeBuilder::new()
            .with_max_matmuls(0)
            .build()
            .is_err());
    }

    #[test]
    fn scheme_register_footprint() {
        assert_eq!(KernelScheme::algorithm_one().tile_regs_needed(), 8);
        let s = KernelScheme {
            block: RegisterBlock::new(1, 2).unwrap(),
            ..KernelScheme::default()
        };
        assert_eq!(s.tile_regs_needed(), 5);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn loop_order_labels() {
        assert_eq!(LoopOrder::default(), LoopOrder::KInnermost);
        assert_eq!(LoopOrder::NInnermost.label(), "n-innermost");
        assert_eq!(LoopOrder::KInnermost.to_string(), "k-innermost");
    }

    #[test]
    fn scheme_display_mentions_block_and_segments() {
        let s = KernelScheme {
            segment_size: Some(512),
            ..KernelScheme::default()
        };
        let text = s.to_string();
        assert!(text.contains("2x2 block"));
        assert!(text.contains("512-instruction segments"));
    }
}
