//! Streaming trace generation: bounded [`ProgramSegment`]s instead of one
//! materialized [`rasa_isa::Program`].
//!
//! The materialized [`TraceGenerator::gemm`] path holds the entire
//! instruction trace in memory — O(workload) — and forces the consumer to
//! wait for the whole trace before simulating a single cycle. The streaming
//! path decouples production from consumption: a [`GemmTraceStream`] walks
//! the same n-block-major register-block order and hands out validated
//! segments of roughly `segment_size` instructions, so the resident
//! footprint is O(segment) however large the workload, and a consumer (the
//! resumable `rasa-cpu` core) can simulate one segment while the next is
//! being generated.
//!
//! Two invariants make the stream a drop-in replacement for the
//! materialized path:
//!
//! * **identical sequence** — segments are cut only at register-block
//!   boundaries and both paths share the same block emitter, so
//!   concatenating the segments reproduces [`TraceGenerator::gemm`]'s
//!   instruction sequence byte for byte, including the matmul-cap
//!   truncation semantics (the cap is checked after each block);
//! * **carried validation** — segments are validated by the shared
//!   [`rasa_isa::ProgramBuilder`] segmenter with register state carried
//!   across segments, so a streamed trace is exactly as well-formed as its
//!   materialized counterpart.
//!
//! For parallel production, [`TraceGenerator::gemm_blocks`] opens a stream
//! over a sub-range of register blocks (a *shard*). Shards partition the
//! block walk, so generating `[0..b1)`, `[b1..b2)`, … on different threads
//! and concatenating the results in order reproduces the full sequence —
//! the granularity `rasa-sim` uses to fan one heavy workload's trace
//! generation out across the worker pool.

use crate::{TraceError, TraceGenerator};
use rasa_isa::{IsaConfig, ProgramBuilder, ProgramSegment};
use rasa_numeric::{ConvShape, GemmShape};
use std::ops::Range;

/// Default target size (in instructions) of a streamed segment.
///
/// Large enough that per-segment overhead (validation bookkeeping, channel
/// hops, core feed calls) is negligible, small enough that a stream of the
/// largest Table I layer keeps three orders of magnitude less trace
/// resident than the materialized path.
pub const DEFAULT_SEGMENT_SIZE: usize = 8192;

/// A producer of bounded, validated instruction segments.
///
/// The streaming analogue of handing a whole [`rasa_isa::Program`] to a
/// consumer: segments arrive in program order and their concatenation is
/// the full trace. Implementors are pull-based iterators; `None` means the
/// stream is exhausted.
pub trait ProgramSource {
    /// The ISA configuration the stream emits for.
    fn isa(&self) -> &IsaConfig;

    /// Workload / kernel identifier carried into reports.
    fn name(&self) -> &str;

    /// Produces the next segment, or `None` when the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Emit`] when a segment fails ISA validation
    /// (a generator bug, surfaced rather than panicking).
    fn next_segment(&mut self) -> Result<Option<ProgramSegment>, TraceError>;
}

/// A resumable walk over a GEMM trace's register blocks, emitting bounded
/// segments. Created by [`TraceGenerator::gemm_stream`],
/// [`TraceGenerator::conv_stream`] or (for shards)
/// [`TraceGenerator::gemm_blocks`].
#[derive(Debug, Clone)]
pub struct GemmTraceStream {
    generator: TraceGenerator,
    name: String,
    dims: (usize, usize, usize),
    mb_count: usize,
    blocks: Range<usize>,
    emitted: usize,
    cap: usize,
    segment_size: usize,
    builder: ProgramBuilder,
    done: bool,
}

impl GemmTraceStream {
    fn new(
        generator: &TraceGenerator,
        shape: GemmShape,
        name: &str,
        blocks: Option<Range<usize>>,
        segment_size: usize,
    ) -> Result<Self, TraceError> {
        if segment_size == 0 {
            return Err(TraceError::Stream {
                reason: "segment size must be at least one instruction".to_string(),
            });
        }
        // A kernel scheme may pin its preferred streaming granularity;
        // otherwise the caller's segment size applies.
        let segment_size = generator
            .kernel()
            .scheme
            .segment_size
            .unwrap_or(segment_size);
        let dims = generator.tile_dims(shape)?;
        let (mt, _, _) = dims;
        let total_blocks = generator.block_count(shape)?;
        let blocks = blocks.unwrap_or(0..total_blocks);
        if blocks.start > blocks.end || blocks.end > total_blocks {
            return Err(TraceError::Stream {
                reason: format!(
                    "block range {}..{} is outside the trace's {total_blocks} register blocks",
                    blocks.start, blocks.end
                ),
            });
        }
        Ok(GemmTraceStream {
            generator: generator.clone(),
            name: name.to_string(),
            dims,
            mb_count: generator.kernel().scheme.block.m_blocks(mt),
            blocks,
            emitted: 0,
            cap: generator.kernel().max_matmuls.unwrap_or(usize::MAX),
            segment_size,
            builder: ProgramBuilder::new(*generator.isa()),
            done: false,
        })
    }

    /// The target segment size in instructions (segments may exceed it by
    /// at most one register block, the cut granularity).
    #[must_use]
    pub const fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// `rasa_mm` instructions emitted so far.
    #[must_use]
    pub const fn emitted_matmuls(&self) -> usize {
        self.emitted
    }

    /// Register blocks not yet emitted (0 once the walk — or the cap — has
    /// finished).
    #[must_use]
    pub fn blocks_remaining(&self) -> usize {
        if self.done {
            0
        } else {
            self.blocks.len()
        }
    }
}

impl ProgramSource for GemmTraceStream {
    fn isa(&self) -> &IsaConfig {
        self.generator.isa()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_segment(&mut self) -> Result<Option<ProgramSegment>, TraceError> {
        if self.done {
            return Ok(None);
        }
        // Emit whole register blocks until the segment target is reached,
        // the cap truncates the walk, or the block range is exhausted. The
        // cap check mirrors the materialized path exactly: it is evaluated
        // after each block, so the final block may overshoot the cap.
        while !self.blocks.is_empty()
            && self.builder.len() < self.segment_size
            && self.emitted < self.cap
        {
            let block = self.blocks.start;
            self.blocks.start += 1;
            let nb = block / self.mb_count;
            let mb = block % self.mb_count;
            self.generator.emit_register_block(
                &mut self.builder,
                self.dims,
                nb,
                mb,
                &mut self.emitted,
            );
        }
        if self.blocks.is_empty() || self.emitted >= self.cap {
            self.done = true;
        }
        if self.builder.is_empty() {
            return Ok(None);
        }
        Ok(Some(self.builder.finish_segment()?))
    }
}

/// Iterator convenience: `for segment in stream { … }` over
/// [`ProgramSource::next_segment`] results.
impl Iterator for GemmTraceStream {
    type Item = Result<ProgramSegment, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_segment().transpose()
    }
}

impl TraceGenerator {
    /// Opens a streaming trace of `shape`: the same instruction sequence as
    /// [`TraceGenerator::gemm`] (including matmul-cap truncation), emitted
    /// as validated segments of roughly `segment_size` instructions instead
    /// of one materialized program. A kernel scheme carrying a segment-size
    /// hint overrides `segment_size`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] for an empty GEMM and
    /// [`TraceError::Stream`] for a zero segment size.
    pub fn gemm_stream(
        &self,
        shape: GemmShape,
        name: &str,
        segment_size: usize,
    ) -> Result<GemmTraceStream, TraceError> {
        GemmTraceStream::new(self, shape, name, None, segment_size)
    }

    /// Opens a streaming trace over a sub-range of `shape`'s register
    /// blocks — a *shard* of the full walk (see
    /// [`TraceGenerator::block_count`] for the block indexing). Shards over
    /// a partition of `0..block_count` concatenate, in order, to the full
    /// [`TraceGenerator::gemm_stream`] sequence.
    ///
    /// Segment indices and instruction offsets are shard-local, and a
    /// matmul cap is applied per shard; shards are intended for fanning out
    /// the generation of *uncapped* traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] for an empty GEMM and
    /// [`TraceError::Stream`] for a zero segment size or an out-of-range
    /// block range.
    pub fn gemm_blocks(
        &self,
        shape: GemmShape,
        name: &str,
        blocks: Range<usize>,
        segment_size: usize,
    ) -> Result<GemmTraceStream, TraceError> {
        GemmTraceStream::new(self, shape, name, Some(blocks), segment_size)
    }

    /// Streaming counterpart of [`TraceGenerator::conv`]: lowers the
    /// convolution via im2col and opens a stream of the resulting GEMM.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Shape`] when the convolution shape is invalid
    /// and [`TraceError::Stream`] for a zero segment size.
    pub fn conv_stream(
        &self,
        conv: &ConvShape,
        name: &str,
        segment_size: usize,
    ) -> Result<GemmTraceStream, TraceError> {
        conv.validate()?;
        self.gemm_stream(conv.to_gemm(), name, segment_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_isa::Program;

    fn reassemble(mut stream: GemmTraceStream, name: &str) -> Program {
        let mut segments = Vec::new();
        while let Some(segment) = stream.next_segment().unwrap() {
            segments.push(segment);
        }
        Program::from_segments(segments, name).unwrap()
    }

    #[test]
    fn stream_reproduces_the_materialized_trace() {
        let g = TraceGenerator::amx_like();
        for (m, k, n) in [(64, 64, 64), (50, 70, 40), (7, 5, 3), (1, 1024, 64)] {
            let shape = GemmShape::new(m, k, n);
            let program = g.gemm(shape, "parity").unwrap();
            for segment_size in [1, 64, 1 << 20] {
                let stream = g.gemm_stream(shape, "parity", segment_size).unwrap();
                assert_eq!(stream.name(), "parity");
                assert_eq!(stream.isa(), g.isa());
                let rebuilt = reassemble(stream, "parity");
                assert_eq!(rebuilt, program, "{m}x{k}x{n} @ {segment_size}");
            }
        }
    }

    #[test]
    fn stream_honours_the_matmul_cap_exactly() {
        let g = TraceGenerator::amx_like()
            .with_kernel(crate::GemmKernelConfig::amx_like().with_max_matmuls(10))
            .unwrap();
        let shape = GemmShape::new(512, 512, 512);
        let program = g.gemm(shape, "capped").unwrap();
        let rebuilt = reassemble(g.gemm_stream(shape, "capped", 32).unwrap(), "capped");
        assert_eq!(rebuilt, program);
        assert!(rebuilt.count_matmuls() < g.matmul_count(shape).unwrap());
    }

    #[test]
    fn segments_are_bounded_and_cut_at_block_boundaries() {
        let g = TraceGenerator::amx_like();
        let shape = GemmShape::new(256, 128, 256);
        let segment_size = 200;
        let mut stream = g.gemm_stream(shape, "bounded", segment_size).unwrap();
        assert_eq!(stream.segment_size(), segment_size);
        // One register block is 4 C loads + kt K-steps (≤ 12 instructions
        // each at kt = 4) + 4 stores: the overshoot bound.
        let max_block = 4 + 4 * 12 + 4;
        let mut total = 0usize;
        let mut count = 0usize;
        while let Some(segment) = stream.next_segment().unwrap() {
            assert!(!segment.is_empty());
            assert!(
                segment.len() < segment_size + max_block,
                "segment of {} instructions",
                segment.len()
            );
            assert_eq!(segment.index(), count);
            assert_eq!(segment.first_instruction(), total);
            total += segment.len();
            count += 1;
        }
        assert_eq!(stream.blocks_remaining(), 0);
        assert_eq!(total, g.gemm(shape, "bounded").unwrap().len());
        assert!(count > 1, "expected a multi-segment stream");
    }

    #[test]
    fn matmul_counts_agree_between_stream_count_and_materialized_paths() {
        // Satellite: `matmul_count` vs actually emitted `rasa_mm`s on both
        // gemm and conv paths, capped and uncapped, shared with the
        // streaming parity machinery.
        let g = TraceGenerator::amx_like();
        let shape = GemmShape::new(100, 90, 80);
        let predicted = g.matmul_count(shape).unwrap();
        assert_eq!(g.gemm(shape, "mm").unwrap().count_matmuls(), predicted);
        let mut streamed = 0usize;
        let mut stream = g.gemm_stream(shape, "mm", 128).unwrap();
        while let Some(segment) = stream.next_segment().unwrap() {
            streamed += segment.count_matmuls();
        }
        assert_eq!(streamed, predicted);
        assert_eq!(stream.emitted_matmuls(), predicted);

        // Conv: the lowered GEMM drives both the count and the emission.
        let conv = rasa_numeric::ConvShape::new(4, 16, 14, 14, 32, 3, 3, 1, 1);
        let predicted = g.matmul_count(conv.to_gemm()).unwrap();
        assert_eq!(g.conv(&conv, "conv").unwrap().count_matmuls(), predicted);
        let streamed: usize = g
            .conv_stream(&conv, "conv", 256)
            .unwrap()
            .map(|s| s.unwrap().count_matmuls())
            .sum();
        assert_eq!(streamed, predicted);

        // Capped: emitted counts match between paths but undershoot the
        // full tiling, overshooting the cap by at most one register block.
        let capped = g
            .with_kernel(crate::GemmKernelConfig::amx_like().with_max_matmuls(64))
            .unwrap();
        let program = capped.gemm(shape, "capped").unwrap();
        let streamed: usize = capped
            .gemm_stream(shape, "capped", 128)
            .unwrap()
            .map(|s| s.unwrap().count_matmuls())
            .sum();
        assert_eq!(streamed, program.count_matmuls());
        assert!((64..64 + 4).contains(&streamed));
        assert!(streamed < predicted);
    }

    #[test]
    fn stream_parity_holds_for_non_default_schemes() {
        use crate::{KernelSchemeBuilder, LoopOrder, MatmulOrder};
        let shape = GemmShape::new(80, 70, 60);
        for kernel in [
            KernelSchemeBuilder::new().with_block(1, 2).build().unwrap(),
            KernelSchemeBuilder::new().with_block(3, 1).build().unwrap(),
            KernelSchemeBuilder::new()
                .with_loop_order(LoopOrder::NInnermost)
                .with_matmul_order(MatmulOrder::Interleaved)
                .build()
                .unwrap(),
        ] {
            let g = TraceGenerator::amx_like().with_kernel(kernel).unwrap();
            let program = g.gemm(shape, "scheme-parity").unwrap();
            for segment_size in [1, 96, 1 << 20] {
                let stream = g.gemm_stream(shape, "scheme-parity", segment_size).unwrap();
                let rebuilt = reassemble(stream, "scheme-parity");
                assert_eq!(rebuilt, program, "kernel {kernel} @ {segment_size}");
            }
        }
    }

    #[test]
    fn scheme_segment_hint_overrides_the_caller() {
        use crate::KernelSchemeBuilder;
        let kernel = KernelSchemeBuilder::new()
            .with_segment_size(64)
            .build()
            .unwrap();
        let g = TraceGenerator::amx_like().with_kernel(kernel).unwrap();
        let stream = g
            .gemm_stream(GemmShape::new(64, 64, 64), "hinted", 1 << 20)
            .unwrap();
        assert_eq!(stream.segment_size(), 64);
        // The hint only changes segmentation, never the sequence.
        let rebuilt = reassemble(stream, "hinted");
        let plain = TraceGenerator::amx_like()
            .with_kernel(KernelSchemeBuilder::new().build().unwrap())
            .unwrap()
            .gemm(GemmShape::new(64, 64, 64), "hinted")
            .unwrap();
        assert_eq!(rebuilt, plain);
    }

    #[test]
    fn shards_partition_the_full_walk() {
        let g = TraceGenerator::amx_like();
        let shape = GemmShape::new(200, 96, 120);
        let blocks = g.block_count(shape).unwrap();
        assert!(blocks >= 5);
        let full = g.gemm(shape, "sharded").unwrap();

        // Concatenate three uneven shards' instructions in order.
        let cuts = [0, 2, blocks / 2, blocks];
        let mut instructions = Vec::new();
        for pair in cuts.windows(2) {
            let shard = g
                .gemm_blocks(shape, "sharded", pair[0]..pair[1], 64)
                .unwrap();
            for segment in shard {
                instructions.extend_from_slice(segment.unwrap().instructions());
            }
        }
        assert_eq!(instructions.as_slice(), full.instructions());
    }

    #[test]
    fn invalid_stream_configurations_are_rejected() {
        let g = TraceGenerator::amx_like();
        let shape = GemmShape::new(64, 64, 64);
        assert!(matches!(
            g.gemm_stream(shape, "bad", 0),
            Err(TraceError::Stream { .. })
        ));
        let blocks = g.block_count(shape).unwrap();
        assert!(matches!(
            g.gemm_blocks(shape, "bad", 0..blocks + 1, 64),
            Err(TraceError::Stream { .. })
        ));
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 3..1;
        assert!(g.gemm_blocks(shape, "bad", reversed, 64).is_err());
        assert!(g.gemm_stream(GemmShape::new(0, 1, 1), "bad", 64).is_err());
        let bad_conv = rasa_numeric::ConvShape::new(0, 64, 56, 56, 64, 1, 1, 1, 0);
        assert!(g.conv_stream(&bad_conv, "bad", 64).is_err());
    }

    #[test]
    fn empty_block_range_yields_no_segments() {
        let g = TraceGenerator::amx_like();
        let shape = GemmShape::new(64, 64, 64);
        let mut shard = g.gemm_blocks(shape, "empty", 2..2, 64).unwrap();
        assert!(shard.next_segment().unwrap().is_none());
        assert!(shard.next_segment().unwrap().is_none(), "stays exhausted");
        assert_eq!(shard.blocks_remaining(), 0);
    }
}
