//! # rasa-trace — instruction-trace generation for the RASA matrix engine
//!
//! The paper drives its simulator with traces of LIBXSMM's AMX micro-kernels
//! captured through Intel SDE. Neither is available here, so this crate is
//! the from-scratch substitute: it emits [`rasa_isa::Program`]s directly
//! from GEMM and convolution shapes, using the same 2 A-tile × 2 B-tile × 4
//! accumulator register blocking that the paper's Algorithm 1 illustrates
//! (and that LIBXSMM-style AMX kernels use in practice).
//!
//! What matters for the RASA evaluation is the *instruction mix* and the
//! *tile-register reuse pattern*, because consecutive `rasa_mm` instructions
//! that name the same clean weight register are exactly the opportunities
//! the WLBP/WLS optimizations exploit. The generated kernels reproduce that
//! structure:
//!
//! * the B (weight) registers `treg4`/`treg5` are each used by two
//!   consecutive `rasa_mm` instructions per K step (≈50 % reuse);
//! * accumulators `treg0`–`treg3` stay live across the whole K loop;
//! * A tiles stream through `treg6`/`treg7`;
//! * optional scalar pointer-bump and loop-branch overhead can be emitted to
//!   make the traces look like real compiled kernels.
//!
//! ## Example
//!
//! ```
//! use rasa_trace::TraceGenerator;
//! use rasa_numeric::GemmShape;
//!
//! let generator = TraceGenerator::amx_like();
//! let program = generator.gemm(GemmShape::new(64, 64, 64), "toy")?;
//! // 4 M-tiles × 2 K-tiles × 4 N-tiles = 32 rasa_mm instructions.
//! assert_eq!(program.count_matmuls(), 32);
//! # Ok::<(), rasa_trace::TraceError>(())
//! ```

#![deny(missing_docs)]

mod avx;
mod config;
mod error;
mod generator;
mod scheme;
mod stream;

pub use config::{GemmKernelConfig, MatmulOrder};
pub use error::TraceError;
pub use generator::TraceGenerator;
pub use scheme::{KernelScheme, KernelSchemeBuilder, LoopOrder};
pub use stream::{GemmTraceStream, ProgramSource, DEFAULT_SEGMENT_SIZE};
