use rasa_isa::IsaError;
use rasa_numeric::NumericError;
use std::error::Error;
use std::fmt;

/// Errors produced while generating instruction traces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The requested kernel configuration is unusable (e.g. zero tile
    /// dimensions or not enough tile registers for the register blocking).
    InvalidKernel {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The workload shape could not be tiled.
    Shape(NumericError),
    /// The emitted program failed ISA validation (a generator bug — surfaced
    /// rather than panicking so fuzzing can exercise it).
    Emit(IsaError),
    /// A streaming trace was configured inconsistently (zero segment size or
    /// an out-of-range register-block shard).
    Stream {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidKernel { reason } => {
                write!(f, "invalid kernel configuration: {reason}")
            }
            TraceError::Shape(e) => write!(f, "workload shape error: {e}"),
            TraceError::Emit(e) => write!(f, "emitted program failed validation: {e}"),
            TraceError::Stream { reason } => {
                write!(f, "invalid stream configuration: {reason}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Shape(e) => Some(e),
            TraceError::Emit(e) => Some(e),
            TraceError::InvalidKernel { .. } | TraceError::Stream { .. } => None,
        }
    }
}

impl From<NumericError> for TraceError {
    fn from(value: NumericError) -> Self {
        TraceError::Shape(value)
    }
}

impl From<IsaError> for TraceError {
    fn from(value: IsaError) -> Self {
        TraceError::Emit(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: TraceError = NumericError::InvalidTiling {
            reason: "zero".to_string(),
        }
        .into();
        assert!(e.to_string().contains("workload shape"));
        assert!(Error::source(&e).is_some());

        let e: TraceError = IsaError::InvalidTileReg { index: 9 }.into();
        assert!(e.to_string().contains("validation"));

        let e = TraceError::InvalidKernel {
            reason: "too few registers".to_string(),
        };
        assert!(e.to_string().contains("too few registers"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<TraceError>();
    }
}
