//! Serving-side counters and latency aggregation.

use crate::json::{FromJson, JsonError, JsonValue, ToJson};

/// Monotonic counters of a [`GemmServer`](crate::serve::GemmServer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests accepted by [`submit`](crate::serve::GemmServer::submit).
    pub submitted: u64,
    /// Requests answered (success or simulation error).
    pub completed: u64,
    /// Batches dispatched to the runner.
    pub batches: u64,
    /// Requests that rode along in a batch they did not lead — each one is
    /// a simulation avoided by shape coalescing (on top of cache hits).
    pub coalesced: u64,
    /// The largest batch dispatched so far.
    pub largest_batch: u64,
    /// Requests turned away by admission control (reject mode, queue at
    /// capacity). Rejected requests are never counted in `submitted`.
    pub rejected: u64,
    /// Submissions that had to wait for queue space (block mode) before
    /// being admitted.
    pub blocked: u64,
}

impl ServeStats {
    /// Mean requests per dispatched batch (0 when nothing was dispatched).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

impl ToJson for ServeStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "submitted".into(),
                JsonValue::number_from_u64(self.submitted),
            ),
            (
                "completed".into(),
                JsonValue::number_from_u64(self.completed),
            ),
            ("batches".into(), JsonValue::number_from_u64(self.batches)),
            (
                "coalesced".into(),
                JsonValue::number_from_u64(self.coalesced),
            ),
            (
                "largest_batch".into(),
                JsonValue::number_from_u64(self.largest_batch),
            ),
            ("rejected".into(), JsonValue::number_from_u64(self.rejected)),
            ("blocked".into(), JsonValue::number_from_u64(self.blocked)),
        ])
    }
}

impl FromJson for ServeStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JsonError::decode(format!("field '{name}' is not a u64")))
        };
        Ok(ServeStats {
            submitted: field("submitted")?,
            completed: field("completed")?,
            batches: field("batches")?,
            coalesced: field("coalesced")?,
            largest_batch: field("largest_batch")?,
            rejected: field("rejected")?,
            blocked: field("blocked")?,
        })
    }
}

/// Order statistics over a set of latency samples, in seconds.
///
/// Percentiles use the nearest-rank method on the sorted samples, so every
/// reported value is an actually-observed latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples aggregated.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_seconds: f64,
    /// Median (50th percentile).
    pub p50_seconds: f64,
    /// 90th percentile.
    pub p90_seconds: f64,
    /// 99th percentile.
    pub p99_seconds: f64,
    /// 99.9th percentile.
    pub p999_seconds: f64,
    /// Largest sample.
    pub max_seconds: f64,
}

impl LatencySummary {
    /// Aggregates `samples`; returns `None` when no finite sample exists.
    ///
    /// Non-finite samples (NaN/∞, which wall-clock measurement can only
    /// produce through caller bugs) are ignored rather than poisoning the
    /// sort or the mean, so every reported statistic is a well-defined,
    /// actually-observed latency: a single-sample set reports that sample
    /// for every percentile, and the empty set reports `None` instead of
    /// NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|s| s.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        Some(LatencySummary {
            count: sorted.len(),
            mean_seconds: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_seconds: nearest_rank(&sorted, 50.0),
            p90_seconds: nearest_rank(&sorted, 90.0),
            p99_seconds: nearest_rank(&sorted, 99.0),
            p999_seconds: nearest_rank(&sorted, 99.9),
            max_seconds: *sorted.last().expect("non-empty"),
        })
    }
}

/// The nearest-rank percentile of an ascending, non-empty sample set: the
/// smallest sample at or above rank ⌈p/100 · n⌉, clamped into `[1, n]` so
/// `p = 0` returns the minimum and any `p ≥ 100` returns the maximum.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty(), "nearest_rank needs samples");
    // The epsilon guards the ceil against representation error: p/100 · n
    // that is mathematically integral (e.g. 99.9% of 1000) must not round
    // a hair above the integer and claim the next rank.
    let rank = (p / 100.0 * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("count".into(), JsonValue::number_from_usize(self.count)),
            (
                "mean_seconds".into(),
                JsonValue::number_from_f64(self.mean_seconds),
            ),
            (
                "p50_seconds".into(),
                JsonValue::number_from_f64(self.p50_seconds),
            ),
            (
                "p90_seconds".into(),
                JsonValue::number_from_f64(self.p90_seconds),
            ),
            (
                "p99_seconds".into(),
                JsonValue::number_from_f64(self.p99_seconds),
            ),
            (
                "p999_seconds".into(),
                JsonValue::number_from_f64(self.p999_seconds),
            ),
            (
                "max_seconds".into(),
                JsonValue::number_from_f64(self.max_seconds),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_have_no_summary() {
        assert!(LatencySummary::from_samples(&[]).is_none());
        // A set with only non-finite samples is empty after filtering.
        assert!(LatencySummary::from_samples(&[f64::NAN, f64::INFINITY]).is_none());
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let s = LatencySummary::from_samples(&[0.2, f64::NAN, 0.4, f64::NEG_INFINITY]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_seconds, 0.2);
        assert_eq!(s.p99_seconds, 0.4);
        assert_eq!(s.max_seconds, 0.4);
        assert!((s.mean_seconds - 0.3).abs() < 1e-12);
        assert!(s.mean_seconds.is_finite());
    }

    #[test]
    fn nearest_rank_clamps_extreme_percentiles() {
        let sorted = [0.1, 0.2, 0.3];
        assert_eq!(nearest_rank(&sorted, 0.0), 0.1, "p0 is the minimum");
        assert_eq!(nearest_rank(&sorted, 100.0), 0.3);
        assert_eq!(nearest_rank(&sorted, 150.0), 0.3, "out-of-range clamps");
        assert_eq!(nearest_rank(&[0.7], 50.0), 0.7);
        assert_eq!(nearest_rank(&[0.7], 99.0), 0.7);
        // p99.9 clamps exactly like every other extreme percentile: below
        // 1000 samples it reports the maximum, never reads out of bounds.
        assert_eq!(nearest_rank(&sorted, 99.9), 0.3);
        assert_eq!(nearest_rank(&[0.7], 99.9), 0.7);
    }

    #[test]
    fn p999_distinguishes_the_extreme_tail() {
        // 1..=1000 milliseconds: p99 = 990ms, p99.9 = 999ms, max = 1000ms.
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert!((s.p99_seconds - 0.990).abs() < 1e-12);
        assert!((s.p999_seconds - 0.999).abs() < 1e-12);
        assert!((s.max_seconds - 1.000).abs() < 1e-12);
        assert!(s.p99_seconds < s.p999_seconds && s.p999_seconds < s.max_seconds);
    }

    #[test]
    fn nearest_rank_percentiles() {
        // 1..=100 milliseconds: p50 = 50ms, p99 = 99ms, max = 100ms.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-3).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.p50_seconds - 0.050).abs() < 1e-12);
        assert!((s.p90_seconds - 0.090).abs() < 1e-12);
        assert!((s.p99_seconds - 0.099).abs() < 1e-12);
        assert!((s.max_seconds - 0.100).abs() < 1e-12);
        assert!((s.mean_seconds - 0.0505).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let s = LatencySummary::from_samples(&[0.25]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_seconds, 0.25);
        assert_eq!(s.p99_seconds, 0.25);
        assert_eq!(s.max_seconds, 0.25);
        // Unsorted input is handled.
        let s = LatencySummary::from_samples(&[0.3, 0.1, 0.2]).unwrap();
        assert_eq!(s.p50_seconds, 0.2);
        assert_eq!(s.max_seconds, 0.3);
    }

    #[test]
    fn serve_stats_mean_batch_size_and_json() {
        let stats = ServeStats {
            submitted: 10,
            completed: 10,
            batches: 4,
            coalesced: 6,
            largest_batch: 5,
            rejected: 3,
            blocked: 2,
        };
        assert!((stats.mean_batch_size() - 2.5).abs() < 1e-12);
        assert_eq!(ServeStats::default().mean_batch_size(), 0.0);
        let json = stats.to_json().to_string_compact();
        assert!(json.contains("\"coalesced\":6"));
        assert!(json.contains("\"rejected\":3"));
        assert!(json.contains("\"blocked\":2"));
        let back = ServeStats::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, stats);
        let lat = LatencySummary::from_samples(&[0.1]).unwrap();
        assert!(lat.to_json().to_string_compact().contains("\"count\":1"));
    }
}
