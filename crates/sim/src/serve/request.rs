//! Request/response types of the serving layer.

use crate::key::CellKey;
use crate::{DesignPoint, SimError, SimJob, SimReport};
use rasa_trace::GemmKernelConfig;
use rasa_workloads::LayerSpec;
use std::sync::mpsc;
use std::sync::Arc;

/// One GEMM query: a workload to run on a design point, optionally under a
/// non-default kernel. The serving analogue of a [`SimJob`].
#[derive(Debug, Clone)]
pub struct GemmRequest {
    /// The design point that must serve the request.
    pub design: DesignPoint,
    /// The workload to simulate.
    pub workload: LayerSpec,
    /// Kernel override (`None` uses the server's default kernel).
    pub kernel: Option<GemmKernelConfig>,
}

impl GemmRequest {
    /// A request for `workload` on `design` with the default kernel.
    #[must_use]
    pub fn new(design: DesignPoint, workload: LayerSpec) -> Self {
        GemmRequest {
            design,
            workload,
            kernel: None,
        }
    }

    /// Overrides the kernel configuration.
    #[must_use]
    pub fn with_kernel(mut self, kernel: GemmKernelConfig) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// The simulation job this request resolves to.
    #[must_use]
    pub fn into_job(self) -> SimJob {
        SimJob {
            design: self.design,
            workload: self.workload,
            kernel: self.kernel,
        }
    }

    /// The simulation job this request resolves to, leaving the request
    /// intact (used by the dispatch path, which still owns the request for
    /// relabelling the response).
    #[must_use]
    pub fn to_job(&self) -> SimJob {
        SimJob {
            design: self.design.clone(),
            workload: self.workload.clone(),
            kernel: self.kernel,
        }
    }

    /// The interned cell key this request coalesces under — identical to
    /// `self.to_job().cell_key(default_matmul_cap)` but rendered from
    /// borrowed fields, so submission never clones the request just to
    /// compute its key.
    #[must_use]
    pub fn cell_key(&self, default_matmul_cap: Option<usize>) -> CellKey {
        let kernel = self.kernel.unwrap_or_else(|| GemmKernelConfig {
            max_matmuls: default_matmul_cap,
            ..GemmKernelConfig::default()
        });
        CellKey::new(crate::runner::render_semantic_key(
            &self.design,
            &self.workload,
            &kernel,
        ))
    }
}

/// Wall-clock latency breakdown of one served request, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestLatency {
    /// Time from this request's submission to its batch being dispatched.
    pub queue_seconds: f64,
    /// Time the batch spent forming: from the submission of its *oldest*
    /// member to dispatch (identical for every member of a batch).
    pub batch_formation_seconds: f64,
    /// Wall-clock time of the batch's single simulation (or cache lookup).
    pub simulate_seconds: f64,
    /// End-to-end: submission to response delivery.
    pub total_seconds: f64,
}

/// The served result: a memoized [`SimReport`] plus serving metadata.
#[derive(Debug, Clone)]
pub struct GemmResponse {
    /// The simulation result, relabelled to the requested workload name.
    pub report: Arc<SimReport>,
    /// Wall-clock latency breakdown.
    pub latency: RequestLatency,
    /// How many requests shared this simulation (1 = no coalescing).
    pub batch_size: usize,
}

/// A pending response, returned by
/// [`GemmServer::submit`](crate::serve::GemmServer::submit).
#[derive(Debug)]
pub struct ResponseHandle {
    pub(super) receiver: mpsc::Receiver<Result<GemmResponse, SimError>>,
}

impl ResponseHandle {
    /// Blocks until the server responds.
    ///
    /// # Errors
    ///
    /// Propagates the simulation error for a failed request, or
    /// [`SimError::Serve`] if the server shut down before responding.
    pub fn wait(self) -> Result<GemmResponse, SimError> {
        self.receiver.recv().map_err(|_| SimError::Serve {
            reason: "server shut down before responding".to_string(),
        })?
    }
}
