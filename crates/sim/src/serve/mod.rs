//! # Batched multi-query GEMM serving layer
//!
//! The [`ExperimentRunner`](crate::ExperimentRunner) executes *declared*
//! experiment matrices; this module puts a request-facing front-end on top
//! of it, exercising the ROADMAP's "millions of users" direction:
//!
//! ```text
//!  clients ──▶ submit(GemmRequest) ──▶ per-design queue ─┐
//!                                                        │  coalesce by
//!  clients ──▶ submit(GemmRequest) ──▶ per-design queue ─┤  semantic shape
//!                                                        │  key into batches
//!                     worker pool (N threads per design) ◀┘
//!                        │ one simulation per batch
//!                        ▼
//!          bounded-LRU memoization (ExperimentRunner)
//!                        │
//!                        ▼
//!  GemmResponse { SimReport, latency breakdown, batch size }
//! ```
//!
//! * **Shape batching** — requests are keyed by the runner's semantic cell
//!   key (design + lowered GEMM shape + kernel). A worker that dequeues a
//!   request drags every queued request with the same key into the same
//!   batch (up to `max_batch`), so the whole batch costs one simulation —
//!   and usually zero, because the bounded LRU cache of the shared runner
//!   already holds the hot shapes.
//! * **Per-design worker pools** — each design point gets its own queue and
//!   worker threads, mirroring how a production deployment pins model
//!   variants to accelerator groups. All pools share one runner (and thus
//!   one cache).
//! * **Latency accounting** — every response reports queue wait, batch
//!   formation time and simulation time, so the soak harness can report
//!   p50/p99 end-to-end latency.
//!
//! The module is deliberately std-only (threads, `Mutex`/`Condvar`,
//! `mpsc`): the vendored dependency set has no async runtime, and the
//! blocking model keeps the scheduling deterministic enough to unit-test
//! coalescing exactly (see [`GemmServer::suspended`]).

mod request;
mod server;
mod stats;

pub use request::{GemmRequest, GemmResponse, RequestLatency, ResponseHandle};
pub use server::{AdmissionControl, GemmServer, ServeConfig, DEFAULT_QUEUE_CAPACITY};
pub use stats::{LatencySummary, ServeStats};
