//! The batching GEMM server: per-design queues, worker pools and the
//! shape-coalescing dispatch loop.

use crate::key::CellKey;
use crate::serve::{GemmRequest, GemmResponse, RequestLatency, ResponseHandle, ServeStats};
use crate::simulator::DEFAULT_MATMUL_CAP;
use crate::{CacheStats, DesignPoint, ExperimentRunner, SimError, SimReport};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Default per-design bound on queued (not yet dispatched) requests.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// What [`GemmServer::submit`] does when a design's queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionControl {
    /// Block the submitting thread until a worker frees queue space (or the
    /// server shuts down). Backpressure propagates to the client.
    #[default]
    Block,
    /// Fail fast with [`SimError::Overloaded`]; the request is not
    /// enqueued and the rejection is counted in
    /// [`ServeStats::rejected`](crate::serve::ServeStats::rejected).
    Reject,
}

/// Configuration of a [`GemmServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads per design pool (each design gets its own pool).
    pub workers_per_design: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Bound on the shared runner's memoization cache (LRU-evicted).
    pub cache_capacity: usize,
    /// Cap on simulated `rasa_mm` instructions per cell (`None` = full).
    pub matmul_cap: Option<usize>,
    /// Bound on queued requests per design pool.
    pub queue_capacity: usize,
    /// Behaviour when a design's queue is at capacity.
    pub admission: AdmissionControl,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers_per_design: 2,
            max_batch: 8,
            cache_capacity: crate::runner::DEFAULT_CACHE_CAPACITY,
            matmul_cap: Some(DEFAULT_MATMUL_CAP),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            admission: AdmissionControl::default(),
        }
    }
}

/// One queued request, waiting for a worker.
struct Pending {
    request: GemmRequest,
    /// The runner's interned cell key — the coalescing identity, rendered
    /// and hashed once at submission and reused by the dispatch lookup.
    key: CellKey,
    submitted: Instant,
    reply: mpsc::Sender<Result<GemmResponse, SimError>>,
}

/// A design pool's queue; workers sleep on `ready`, submitters blocked by
/// a full queue sleep on `space`.
struct PoolQueue {
    queue: Mutex<VecDeque<Pending>>,
    ready: Condvar,
    space: Condvar,
}

/// State shared by every pool and worker of one server.
struct Shared {
    runner: Arc<ExperimentRunner>,
    max_batch: usize,
    queue_capacity: usize,
    admission: AdmissionControl,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    largest_batch: AtomicU64,
    rejected: AtomicU64,
    blocked: AtomicU64,
}

/// The batching multi-query GEMM server. See the
/// [module docs](crate::serve) for the architecture.
///
/// Dropping the server initiates shutdown: queued requests are drained and
/// answered, then the worker threads are joined.
#[derive(Debug)]
pub struct GemmServer {
    shared: Arc<Shared>,
    pools: HashMap<String, Arc<PoolQueue>>,
    /// Design names in construction order (stable reporting order).
    design_names: Vec<String>,
    /// Worker join handles; behind a mutex so [`GemmServer::start`] works
    /// through a shared reference (e.g. an `Arc`-held server).
    workers: Mutex<Vec<JoinHandle<()>>>,
    workers_per_design: usize,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("max_batch", &self.max_batch)
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for PoolQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolQueue").finish_non_exhaustive()
    }
}

impl GemmServer {
    /// Builds the server and starts its worker pools.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Serve`] for an invalid configuration (zero
    /// workers or batch size, no designs, duplicate design names) and
    /// propagates runner construction errors.
    pub fn new(config: ServeConfig, designs: &[DesignPoint]) -> Result<Self, SimError> {
        let server = GemmServer::suspended(config, designs)?;
        server.start();
        Ok(server)
    }

    /// Builds the server **without** starting any workers. Requests can be
    /// submitted and sit in the queues; calling [`start`](Self::start)
    /// releases the workers. Used by tests to make batching deterministic
    /// and by harnesses that want to preload a burst.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn suspended(config: ServeConfig, designs: &[DesignPoint]) -> Result<Self, SimError> {
        if config.workers_per_design == 0 {
            return Err(SimError::Serve {
                reason: "at least one worker per design is required".to_string(),
            });
        }
        if config.max_batch == 0 {
            return Err(SimError::Serve {
                reason: "max batch size must be at least 1".to_string(),
            });
        }
        if config.queue_capacity == 0 {
            return Err(SimError::Serve {
                reason: "queue capacity must be at least 1".to_string(),
            });
        }
        if designs.is_empty() {
            return Err(SimError::Serve {
                reason: "a server needs at least one design point".to_string(),
            });
        }
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(config.matmul_cap)
            .with_cache_capacity(config.cache_capacity)
            .build()?;
        let mut pools = HashMap::new();
        let mut design_names = Vec::with_capacity(designs.len());
        for design in designs {
            let name = design.name().to_string();
            if pools
                .insert(
                    name.clone(),
                    Arc::new(PoolQueue {
                        queue: Mutex::new(VecDeque::new()),
                        ready: Condvar::new(),
                        space: Condvar::new(),
                    }),
                )
                .is_some()
            {
                return Err(SimError::Serve {
                    reason: format!("duplicate design point '{name}'"),
                });
            }
            design_names.push(name);
        }
        Ok(GemmServer {
            shared: Arc::new(Shared {
                runner: Arc::new(runner),
                max_batch: config.max_batch,
                queue_capacity: config.queue_capacity,
                admission: config.admission,
                shutdown: AtomicBool::new(false),
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                largest_batch: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                blocked: AtomicU64::new(0),
            }),
            pools,
            design_names,
            workers: Mutex::new(Vec::new()),
            workers_per_design: config.workers_per_design,
        })
    }

    /// Starts the worker pools (idempotent).
    pub fn start(&self) {
        let mut workers = self.workers.lock().expect("serve workers lock");
        if !workers.is_empty() {
            return;
        }
        for name in &self.design_names {
            let pool = Arc::clone(&self.pools[name]);
            for worker in 0..self.workers_per_design {
                let shared = Arc::clone(&self.shared);
                let pool = Arc::clone(&pool);
                let thread_name = format!("serve-{name}-{worker}");
                workers.push(
                    std::thread::Builder::new()
                        .name(thread_name)
                        .spawn(move || worker_loop(&shared, &pool))
                        .expect("spawn serve worker"),
                );
            }
        }
    }

    /// The design names this server has pools for, in construction order.
    #[must_use]
    pub fn designs(&self) -> &[String] {
        &self.design_names
    }

    /// Total worker threads once started.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.design_names.len() * self.workers_per_design
    }

    /// Enqueues a request and returns a handle for the response.
    ///
    /// Admission control bounds each design's queue at the configured
    /// capacity: a submission hitting a full queue either blocks until a
    /// worker frees space ([`AdmissionControl::Block`], the default) or
    /// fails fast ([`AdmissionControl::Reject`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Serve`] when the request names a design the
    /// server has no pool for or when the server is shutting down, and
    /// [`SimError::Overloaded`] when the queue is full under
    /// [`AdmissionControl::Reject`].
    pub fn submit(&self, request: GemmRequest) -> Result<ResponseHandle, SimError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SimError::Serve {
                reason: "server is shutting down".to_string(),
            });
        }
        let Some(pool) = self.pools.get(request.design.name()) else {
            return Err(SimError::Serve {
                reason: format!(
                    "no worker pool for design '{}' (serving: {})",
                    request.design.name(),
                    self.design_names.join(", ")
                ),
            });
        };
        let key = request.cell_key(self.shared.runner.matmul_cap());
        let (reply, receiver) = mpsc::channel();
        let pending = Pending {
            request,
            key,
            submitted: Instant::now(),
            reply,
        };
        let mut queue = pool.queue.lock().expect("serve queue lock");
        if queue.len() >= self.shared.queue_capacity {
            match self.shared.admission {
                AdmissionControl::Reject => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SimError::Overloaded {
                        design: pending.request.design.name().to_string(),
                        capacity: self.shared.queue_capacity,
                    });
                }
                AdmissionControl::Block => {
                    self.shared.blocked.fetch_add(1, Ordering::Relaxed);
                    while queue.len() >= self.shared.queue_capacity {
                        if self.shared.shutdown.load(Ordering::SeqCst) {
                            return Err(SimError::Serve {
                                reason: "server is shutting down".to_string(),
                            });
                        }
                        queue = pool.space.wait(queue).expect("serve queue lock");
                    }
                }
            }
        }
        // Re-check under the lock: a submitter woken by freed space (or one
        // that raced the fast path) must not enqueue into a server whose
        // workers may already have drained and exited — the request would
        // never be answered and the caller's `wait` would hang.
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SimError::Serve {
                reason: "server is shutting down".to_string(),
            });
        }
        // Counted before the request becomes visible to workers, so
        // `submitted >= completed` holds for every stats() observer.
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        queue.push_back(pending);
        drop(queue);
        pool.ready.notify_one();
        Ok(ResponseHandle { receiver })
    }

    /// Submits a burst of requests and blocks for all responses, returned
    /// in request order.
    ///
    /// # Errors
    ///
    /// Returns the first submission or simulation error.
    pub fn run_batch(&self, requests: Vec<GemmRequest>) -> Result<Vec<GemmResponse>, SimError> {
        let handles: Vec<ResponseHandle> = requests
            .into_iter()
            .map(|request| self.submit(request))
            .collect::<Result<_, _>>()?;
        handles.into_iter().map(ResponseHandle::wait).collect()
    }

    /// Serving counters since construction.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            blocked: self.shared.blocked.load(Ordering::Relaxed),
        }
    }

    /// Cache counters of the shared runner (hits, misses, evictions,
    /// resident entries, capacity).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.runner.cache_stats()
    }

    /// The shared memoizing runner backing every pool.
    #[must_use]
    pub fn runner(&self) -> &ExperimentRunner {
        &self.shared.runner
    }

    /// Drains the queues, answers everything pending and joins the
    /// workers. Called automatically on drop; explicit calls make the
    /// shutdown point visible in harness code.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for pool in self.pools.values() {
            // Notify under the queue lock: a submitter that read the flag
            // as false is then either still holding the lock (and will see
            // it on its next loop iteration) or already parked on the
            // condvar (and receives this wakeup) — the notification cannot
            // fall between its check and its wait.
            let _queue = pool.queue.lock().expect("serve queue lock");
            pool.ready.notify_all();
            pool.space.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("serve workers lock"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for GemmServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Removes the front request and every queued request sharing its semantic
/// key (up to `max_batch` total), preserving the relative order of what
/// remains. The returned batch is never empty and its first element is the
/// oldest member.
fn take_batch(queue: &mut VecDeque<Pending>, max_batch: usize) -> Vec<Pending> {
    let leader = queue.pop_front().expect("take_batch on empty queue");
    let mut batch = Vec::with_capacity(max_batch.min(queue.len() + 1));
    let key = leader.key.clone();
    batch.push(leader);
    let mut kept = VecDeque::with_capacity(queue.len());
    while let Some(pending) = queue.pop_front() {
        if batch.len() < max_batch && pending.key == key {
            batch.push(pending);
        } else {
            kept.push_back(pending);
        }
    }
    *queue = kept;
    batch
}

fn worker_loop(shared: &Shared, pool: &PoolQueue) {
    loop {
        let batch = {
            let mut queue = pool.queue.lock().expect("serve queue lock");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = pool.ready.wait(queue).expect("serve queue lock");
            }
            take_batch(&mut queue, shared.max_batch)
        };
        // The batch freed queue space: admit blocked submitters.
        pool.space.notify_all();
        dispatch(shared, batch);
    }
}

/// Simulates one coalesced batch and answers every member.
fn dispatch(shared: &Shared, batch: Vec<Pending>) {
    let dispatched = Instant::now();
    let batch_formation_seconds = dispatched.duration_since(batch[0].submitted).as_secs_f64();
    let batch_size = batch.len();
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .coalesced
        .fetch_add(batch_size as u64 - 1, Ordering::Relaxed);
    shared
        .largest_batch
        .fetch_max(batch_size as u64, Ordering::Relaxed);

    let job = batch[0].request.to_job();
    let result = shared.runner.run_job_keyed(&job, &batch[0].key);
    let simulate_seconds = dispatched.elapsed().as_secs_f64();

    for pending in batch {
        let response = match &result {
            Ok(report) => {
                let now = Instant::now();
                Ok(GemmResponse {
                    report: relabel(report, pending.request.workload.name()),
                    latency: RequestLatency {
                        queue_seconds: dispatched.duration_since(pending.submitted).as_secs_f64(),
                        batch_formation_seconds,
                        simulate_seconds,
                        total_seconds: now.duration_since(pending.submitted).as_secs_f64(),
                    },
                    batch_size,
                })
            }
            Err(error) => Err(error.clone()),
        };
        // Counted before the send so a client that has its response (and
        // anyone it synchronizes with) observes a complete count.
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // A dropped handle just means the client stopped waiting.
        let _ = pending.reply.send(response);
    }
}

/// Restamps a shared report with the workload name the member asked for
/// (batch members may carry different names for the same semantic shape).
fn relabel(report: &Arc<SimReport>, workload: &str) -> Arc<SimReport> {
    if report.workload == workload {
        Arc::clone(report)
    } else {
        let mut relabelled = (**report).clone();
        relabelled.workload = workload.to_string();
        Arc::new(relabelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_workloads::WorkloadSuite;

    fn pending(key: &str) -> Pending {
        let suite = WorkloadSuite::mlperf();
        let (reply, _receiver) = mpsc::channel();
        // The receiver is dropped; dispatch tolerates that, and these
        // entries only exercise `take_batch`, which never sends.
        Pending {
            request: GemmRequest::new(
                DesignPoint::baseline(),
                suite.layer("DLRM-1").unwrap().clone(),
            ),
            key: CellKey::new(key),
            submitted: Instant::now(),
            reply,
        }
    }

    fn keys(batch: &[Pending]) -> Vec<&str> {
        batch.iter().map(|p| p.key.as_str()).collect()
    }

    #[test]
    fn take_batch_coalesces_equal_keys_and_preserves_order() {
        let mut queue: VecDeque<Pending> =
            ["a", "b", "a", "a", "c"].into_iter().map(pending).collect();
        let batch = take_batch(&mut queue, 8);
        assert_eq!(keys(&batch), vec!["a", "a", "a"]);
        let remaining: Vec<&str> = queue.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(remaining, vec!["b", "c"], "relative order preserved");
    }

    #[test]
    fn take_batch_respects_max_batch() {
        let mut queue: VecDeque<Pending> = ["a", "a", "a", "a"].into_iter().map(pending).collect();
        let batch = take_batch(&mut queue, 2);
        assert_eq!(keys(&batch), vec!["a", "a"]);
        assert_eq!(queue.len(), 2, "overflow stays queued for the next batch");
        let batch = take_batch(&mut queue, 2);
        assert_eq!(keys(&batch), vec!["a", "a"]);
        assert!(queue.is_empty());
    }

    #[test]
    fn take_batch_singleton() {
        let mut queue: VecDeque<Pending> = ["x", "y"].into_iter().map(pending).collect();
        let batch = take_batch(&mut queue, 8);
        assert_eq!(keys(&batch), vec!["x"]);
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn config_validation() {
        let designs = [DesignPoint::baseline()];
        for (config, what) in [
            (
                ServeConfig {
                    workers_per_design: 0,
                    ..ServeConfig::default()
                },
                "zero workers",
            ),
            (
                ServeConfig {
                    max_batch: 0,
                    ..ServeConfig::default()
                },
                "zero batch",
            ),
            (
                ServeConfig {
                    cache_capacity: 0,
                    ..ServeConfig::default()
                },
                "zero cache",
            ),
        ] {
            assert!(GemmServer::new(config, &designs).is_err(), "{what}");
        }
        assert!(
            GemmServer::new(
                ServeConfig {
                    queue_capacity: 0,
                    ..ServeConfig::default()
                },
                &designs,
            )
            .is_err(),
            "zero queue capacity"
        );
        assert!(
            GemmServer::new(ServeConfig::default(), &[]).is_err(),
            "no designs"
        );
        assert!(
            GemmServer::new(
                ServeConfig::default(),
                &[DesignPoint::baseline(), DesignPoint::baseline()]
            )
            .is_err(),
            "duplicate designs"
        );
    }

    #[test]
    fn equal_shape_requests_share_one_simulation() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-2").unwrap().clone();
        let other = suite.layer("BERT-1").unwrap().clone();
        let config = ServeConfig {
            workers_per_design: 2,
            max_batch: 8,
            cache_capacity: 64,
            matmul_cap: Some(64),
            ..ServeConfig::default()
        };
        let server = GemmServer::suspended(config, &[DesignPoint::baseline()]).unwrap();

        // Queue three identical-shape requests and one different shape
        // BEFORE any worker runs: the first worker must take all three as
        // one batch.
        let mut handles = Vec::new();
        for _ in 0..3 {
            handles.push(
                server
                    .submit(GemmRequest::new(DesignPoint::baseline(), layer.clone()))
                    .unwrap(),
            );
        }
        let other_handle = server
            .submit(GemmRequest::new(DesignPoint::baseline(), other))
            .unwrap();
        server.start();

        for handle in handles {
            let response = handle.wait().unwrap();
            assert_eq!(response.batch_size, 3, "identical shapes form one batch");
            assert_eq!(response.report.workload, "DLRM-2");
            assert!(response.latency.total_seconds >= response.latency.simulate_seconds);
        }
        let response = other_handle.wait().unwrap();
        assert_eq!(response.batch_size, 1);

        // Two distinct cells were simulated, total — the three coalesced
        // requests shared one.
        let cache = server.cache_stats();
        assert_eq!(cache.misses, 2, "one simulation per distinct shape");
        let stats = server.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.largest_batch, 3);
        assert_eq!(stats.batches, 2);
        assert!((stats.mean_batch_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rebatched_layers_coalesce_and_are_relabelled() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap().clone();
        let rebatched = layer.with_batch(layer.batch());
        assert_ne!(layer.name(), rebatched.name());

        let config = ServeConfig {
            workers_per_design: 1,
            max_batch: 8,
            cache_capacity: 64,
            matmul_cap: Some(64),
            ..ServeConfig::default()
        };
        let server = GemmServer::suspended(config, &[DesignPoint::baseline()]).unwrap();
        let a = server
            .submit(GemmRequest::new(DesignPoint::baseline(), layer))
            .unwrap();
        let b = server
            .submit(GemmRequest::new(DesignPoint::baseline(), rebatched.clone()))
            .unwrap();
        server.start();

        let a = a.wait().unwrap();
        let b = b.wait().unwrap();
        assert_eq!(a.batch_size, 2, "same semantic shape key");
        assert_eq!(b.batch_size, 2);
        assert_eq!(a.report.workload, "DLRM-1");
        assert_eq!(b.report.workload, rebatched.name(), "relabelled");
        assert_eq!(a.report.core_cycles, b.report.core_cycles);
        assert_eq!(server.cache_stats().misses, 1);
    }

    #[test]
    fn full_queue_rejects_when_admission_is_reject() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap().clone();
        let config = ServeConfig {
            workers_per_design: 1,
            max_batch: 8,
            cache_capacity: 64,
            matmul_cap: Some(64),
            queue_capacity: 2,
            admission: AdmissionControl::Reject,
        };
        // Suspended server: nothing drains the queue, so the bound is hit
        // deterministically.
        let server = GemmServer::suspended(config, &[DesignPoint::baseline()]).unwrap();
        let a = server
            .submit(GemmRequest::new(DesignPoint::baseline(), layer.clone()))
            .unwrap();
        let b = server
            .submit(GemmRequest::new(DesignPoint::baseline(), layer.clone()))
            .unwrap();
        let err = server
            .submit(GemmRequest::new(DesignPoint::baseline(), layer.clone()))
            .unwrap_err();
        assert!(
            matches!(err, SimError::Overloaded { capacity: 2, .. }),
            "expected Overloaded, got {err:?}"
        );
        assert!(err.to_string().contains("overloaded"));
        let stats = server.stats();
        assert_eq!(stats.submitted, 2, "rejected requests are not admitted");
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.blocked, 0);

        // Once workers drain the queue, new submissions are admitted again.
        server.start();
        a.wait().unwrap();
        b.wait().unwrap();
        let c = server
            .submit(GemmRequest::new(DesignPoint::baseline(), layer))
            .unwrap();
        c.wait().unwrap();
        assert_eq!(server.stats().completed, 3);
    }

    #[test]
    fn full_queue_blocks_until_space_when_admission_is_block() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-2").unwrap().clone();
        let config = ServeConfig {
            workers_per_design: 1,
            max_batch: 1,
            cache_capacity: 64,
            matmul_cap: Some(64),
            queue_capacity: 1,
            admission: AdmissionControl::Block,
        };
        let server = GemmServer::suspended(config, &[DesignPoint::baseline()]).unwrap();
        let first = server
            .submit(GemmRequest::new(DesignPoint::baseline(), layer.clone()))
            .unwrap();

        // The queue is now full; a second submission must block until a
        // worker frees space.
        std::thread::scope(|scope| {
            let submitter = scope.spawn(|| {
                server
                    .submit(GemmRequest::new(DesignPoint::baseline(), layer.clone()))
                    .map(ResponseHandle::wait)
            });
            // `blocked` is incremented before the condvar wait, so once it
            // reads 1 the submitter is (about to be) parked and still
            // unadmitted.
            while server.stats().blocked == 0 {
                std::thread::yield_now();
            }
            assert_eq!(server.stats().submitted, 1, "second submit not admitted");
            // Releasing the workers drains the queue and admits it.
            server.start();
            let second = submitter.join().expect("submitter thread");
            second.expect("blocked submission is admitted").unwrap();
        });
        first.wait().unwrap();
        let stats = server.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.blocked, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn shutdown_wakes_blocked_submitters() {
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap().clone();
        let config = ServeConfig {
            workers_per_design: 1,
            max_batch: 1,
            cache_capacity: 64,
            matmul_cap: Some(64),
            queue_capacity: 1,
            admission: AdmissionControl::Block,
        };
        let server = GemmServer::suspended(config, &[DesignPoint::baseline()]).unwrap();
        let _first = server
            .submit(GemmRequest::new(DesignPoint::baseline(), layer.clone()))
            .unwrap();
        std::thread::scope(|scope| {
            let submitter = scope
                .spawn(|| server.submit(GemmRequest::new(DesignPoint::baseline(), layer.clone())));
            while server.stats().blocked == 0 {
                std::thread::yield_now();
            }
            // Signal shutdown exactly as `stop_and_join` does (flag, then
            // notify under the queue lock); the blocked submitter must
            // wake and error out instead of hanging.
            server.shared.shutdown.store(true, Ordering::SeqCst);
            for pool in server.pools.values() {
                let _queue = pool.queue.lock().expect("serve queue lock");
                pool.space.notify_all();
            }
            let err = submitter.join().expect("submitter thread").unwrap_err();
            assert!(matches!(err, SimError::Serve { .. }), "got {err:?}");
        });
    }

    #[test]
    fn unknown_design_is_rejected() {
        let suite = WorkloadSuite::mlperf();
        let server = GemmServer::new(
            ServeConfig {
                matmul_cap: Some(64),
                ..ServeConfig::default()
            },
            &[DesignPoint::baseline()],
        )
        .unwrap();
        let err = server.submit(GemmRequest::new(
            DesignPoint::rasa_dmdb_wls(),
            suite.layer("DLRM-1").unwrap().clone(),
        ));
        assert!(matches!(err, Err(SimError::Serve { .. })));
        assert_eq!(server.designs(), &["BASELINE".to_string()]);
        assert_eq!(server.worker_count(), 2);
    }

    #[test]
    fn run_batch_returns_responses_in_request_order() {
        let suite = WorkloadSuite::mlperf();
        let designs = [DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
        let server = GemmServer::new(
            ServeConfig {
                workers_per_design: 2,
                max_batch: 4,
                cache_capacity: 64,
                matmul_cap: Some(64),
                ..ServeConfig::default()
            },
            &designs,
        )
        .unwrap();
        let layers = [
            suite.layer("DLRM-1").unwrap().clone(),
            suite.layer("BERT-1").unwrap().clone(),
        ];
        let mut requests = Vec::new();
        for design in &designs {
            for layer in &layers {
                requests.push(GemmRequest::new(design.clone(), layer.clone()));
            }
        }
        let expected: Vec<(String, String)> = requests
            .iter()
            .map(|r| (r.design.name().to_string(), r.workload.name().to_string()))
            .collect();
        let responses = server.run_batch(requests).unwrap();
        assert_eq!(responses.len(), expected.len());
        for (response, (design, workload)) in responses.iter().zip(&expected) {
            assert_eq!(&response.report.design, design);
            assert_eq!(&response.report.workload, workload);
        }
        server.shutdown();
    }

    #[test]
    fn kernel_override_keys_separately_from_default() {
        use rasa_trace::{GemmKernelConfig, MatmulOrder};
        let suite = WorkloadSuite::mlperf();
        let layer = suite.layer("DLRM-1").unwrap().clone();
        let design = DesignPoint::rasa_wlbp();
        let config = ServeConfig {
            workers_per_design: 1,
            max_batch: 8,
            cache_capacity: 64,
            matmul_cap: Some(64),
            ..ServeConfig::default()
        };
        let server = GemmServer::suspended(config, std::slice::from_ref(&design)).unwrap();
        let mut interleaved =
            GemmKernelConfig::amx_like().with_matmul_order(MatmulOrder::Interleaved);
        interleaved.max_matmuls = Some(64);
        let a = server
            .submit(GemmRequest::new(design.clone(), layer.clone()))
            .unwrap();
        let b = server
            .submit(GemmRequest::new(design, layer).with_kernel(interleaved))
            .unwrap();
        server.start();
        let a = a.wait().unwrap();
        let b = b.wait().unwrap();
        assert_eq!(a.batch_size, 1, "different kernels must not coalesce");
        assert_eq!(b.batch_size, 1);
        assert!(a.report.core_cycles < b.report.core_cycles);
        assert_eq!(server.cache_stats().misses, 2);
    }
}
