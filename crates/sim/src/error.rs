use rasa_cpu::CpuError;
use rasa_numeric::NumericError;
use rasa_systolic::SystolicError;
use rasa_trace::TraceError;
use std::error::Error;
use std::fmt;

/// Errors produced by the end-to-end simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A design point could not be constructed.
    Design(SystolicError),
    /// Trace generation failed.
    Trace(TraceError),
    /// The CPU model rejected the run.
    Cpu(CpuError),
    /// A workload shape was invalid.
    Workload(NumericError),
    /// An experiment was configured inconsistently.
    InvalidExperiment {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A persisted result document could not be parsed or decoded.
    Json {
        /// Human-readable parse/decode failure description.
        reason: String,
    },
    /// The serving layer rejected a request or configuration.
    Serve {
        /// Human-readable description of the serving failure.
        reason: String,
    },
    /// A request was turned away by admission control: the design's queue
    /// was at capacity and the server is configured to reject rather than
    /// block. The request was not enqueued; retrying later is safe.
    Overloaded {
        /// The design pool whose queue was full.
        design: String,
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The networked serving tier failed (framing, transport or a remote
    /// error frame). See `rasa_sim::net` for the underlying error type.
    Net {
        /// Human-readable description of the network failure.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Design(e) => write!(f, "design point error: {e}"),
            SimError::Trace(e) => write!(f, "trace generation error: {e}"),
            SimError::Cpu(e) => write!(f, "cpu simulation error: {e}"),
            SimError::Workload(e) => write!(f, "workload error: {e}"),
            SimError::InvalidExperiment { reason } => {
                write!(f, "invalid experiment configuration: {reason}")
            }
            SimError::Json { reason } => write!(f, "result serialization error: {reason}"),
            SimError::Serve { reason } => write!(f, "serving error: {reason}"),
            SimError::Overloaded { design, capacity } => write!(
                f,
                "server overloaded: queue for design '{design}' is at capacity {capacity}"
            ),
            SimError::Net { reason } => write!(f, "network serving error: {reason}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Design(e) => Some(e),
            SimError::Trace(e) => Some(e),
            SimError::Cpu(e) => Some(e),
            SimError::Workload(e) => Some(e),
            SimError::InvalidExperiment { .. }
            | SimError::Json { .. }
            | SimError::Serve { .. }
            | SimError::Overloaded { .. }
            | SimError::Net { .. } => None,
        }
    }
}

impl From<SystolicError> for SimError {
    fn from(value: SystolicError) -> Self {
        SimError::Design(value)
    }
}

impl From<TraceError> for SimError {
    fn from(value: TraceError) -> Self {
        SimError::Trace(value)
    }
}

impl From<CpuError> for SimError {
    fn from(value: CpuError) -> Self {
        SimError::Cpu(value)
    }
}

impl From<NumericError> for SimError {
    fn from(value: NumericError) -> Self {
        SimError::Workload(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SimError = SystolicError::InvalidConfig {
            reason: "x".to_string(),
        }
        .into();
        assert!(e.to_string().contains("design point"));
        assert!(Error::source(&e).is_some());

        let e: SimError = TraceError::InvalidKernel {
            reason: "y".to_string(),
        }
        .into();
        assert!(e.to_string().contains("trace"));

        let e: SimError = CpuError::InvalidConfig {
            reason: "z".to_string(),
        }
        .into();
        assert!(e.to_string().contains("cpu"));

        let e: SimError = NumericError::InvalidTiling {
            reason: "w".to_string(),
        }
        .into();
        assert!(e.to_string().contains("workload"));

        let e = SimError::InvalidExperiment {
            reason: "no layers".to_string(),
        };
        assert!(e.to_string().contains("no layers"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SimError>();
    }
}
