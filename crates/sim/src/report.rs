use rasa_cpu::{CpuStats, SchedStats};
use rasa_power::PowerReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the trace reached the simulating core: as a stream of bounded
/// segments (the default pipeline) or as one materialized program.
///
/// These are diagnostics of the *pipeline*, not of the simulated core —
/// deterministic for a given configuration (segment boundaries derive from
/// the shape and segment size, never from thread scheduling), but carrying
/// no architectural meaning. The simulated statistics ([`SimReport::cpu`],
/// [`SimReport::sched`]) are bit-identical across both transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Whether the streaming producer/consumer pipeline ran (`false` for
    /// the materialized generate-then-simulate path).
    pub streamed: bool,
    /// Segments fed to the core (1 for a materialized run).
    pub segments: u64,
    /// Total instructions fed (the trace length).
    pub fed_instructions: u64,
    /// Peak instructions resident in the core's fetch buffer — the whole
    /// trace for a materialized run, roughly one segment for a streamed
    /// one. The streaming pipeline's memory headroom is the ratio of the
    /// two.
    pub peak_resident_instructions: u64,
    /// Speculative segment executions forked by the fork/join scheduler
    /// (zero when speculation was off or not applicable).
    pub spec_forks: u64,
    /// Forked segments whose predicted entry state validated bit for bit
    /// at join, so their statistics committed without re-execution.
    pub spec_commits: u64,
    /// Forked segments whose prediction missed and were replayed
    /// sequentially on the authoritative state.
    pub spec_replays: u64,
}

impl PipelineStats {
    /// Fraction of the trace resident at the peak (1.0 for a materialized
    /// run, ~segment/trace for a streamed one; 0 when nothing was fed).
    #[must_use]
    pub fn residency(&self) -> f64 {
        if self.fed_instructions == 0 {
            0.0
        } else {
            self.peak_resident_instructions as f64 / self.fed_instructions as f64
        }
    }

    /// Fraction of forked speculative segments that committed (0 when no
    /// speculation ran).
    #[must_use]
    pub fn spec_commit_rate(&self) -> f64 {
        if self.spec_forks == 0 {
            0.0
        } else {
            self.spec_commits as f64 / self.spec_forks as f64
        }
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} segment(s), peak {} of {} instructions resident",
            if self.streamed {
                "streamed"
            } else {
                "materialized"
            },
            self.segments,
            self.peak_resident_instructions,
            self.fed_instructions
        )?;
        if self.spec_forks > 0 {
            write!(
                f,
                ", {} speculative segments ({} committed, {} replayed)",
                self.spec_forks, self.spec_commits, self.spec_replays
            )?;
        }
        Ok(())
    }
}

/// The result of simulating one workload on one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Design name (e.g. `RASA-DMDB-WLS`).
    pub design: String,
    /// Workload name (e.g. `BERT-2`).
    pub workload: String,
    /// Core cycles for the **full** workload. When the trace was capped for
    /// tractability this is extrapolated from the simulated portion at the
    /// observed steady-state throughput.
    pub core_cycles: u64,
    /// Core cycles actually simulated.
    pub simulated_core_cycles: u64,
    /// `rasa_mm` instructions actually simulated.
    pub simulated_matmuls: u64,
    /// `rasa_mm` instructions the full workload contains.
    pub total_matmuls: u64,
    /// Wall-clock runtime of the full workload at the configured core clock.
    pub runtime_seconds: f64,
    /// Detailed CPU statistics of the simulated portion.
    pub cpu: CpuStats,
    /// Event-scheduler counters of the simulating core (all zero when the
    /// cycle-stepping reference core produced the report).
    pub sched: SchedStats,
    /// Trace-transport diagnostics: streamed vs materialized, segment count
    /// and peak resident instructions.
    pub pipeline: PipelineStats,
    /// Area/energy report of the simulated portion.
    pub power: PowerReport,
}

impl SimReport {
    /// Whether the trace was truncated and the full-workload numbers are
    /// extrapolated.
    #[must_use]
    pub fn is_extrapolated(&self) -> bool {
        self.simulated_matmuls < self.total_matmuls
    }

    /// Runtime normalized to a baseline run of the same workload (the Fig. 5
    /// metric; < 1 means faster than the baseline).
    #[must_use]
    pub fn normalized_runtime_vs(&self, baseline: &SimReport) -> f64 {
        if baseline.core_cycles == 0 {
            return 0.0;
        }
        self.core_cycles as f64 / baseline.core_cycles as f64
    }

    /// Speedup over a baseline run of the same workload (> 1 means faster).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        if self.core_cycles == 0 {
            return 0.0;
        }
        baseline.core_cycles as f64 / self.core_cycles as f64
    }

    /// Flattens the report into the serializable summary used for CSV/JSON
    /// export by the benchmark harness.
    #[must_use]
    pub fn summary(&self) -> SimSummary {
        SimSummary {
            design: self.design.clone(),
            workload: self.workload.clone(),
            core_cycles: self.core_cycles,
            simulated_matmuls: self.simulated_matmuls,
            total_matmuls: self.total_matmuls,
            runtime_seconds: self.runtime_seconds,
            ipc: self.cpu.ipc(),
            engine_bypass_rate: self.cpu.engine.bypass_rate(),
            area_mm2: self.power.area.total(),
            energy_joules: self.power.energy.total(),
            sched_events: self.sched.completion_events,
            visited_cycles: self.sched.visited_cycles,
            segments: self.pipeline.segments,
            peak_resident_instructions: self.pipeline.peak_resident_instructions,
            spec_forks: self.pipeline.spec_forks,
            spec_commits: self.pipeline.spec_commits,
            spec_replays: self.pipeline.spec_replays,
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} core cycles ({} mm simulated of {}){}",
            self.design,
            self.workload,
            self.core_cycles,
            self.simulated_matmuls,
            self.total_matmuls,
            if self.is_extrapolated() {
                ", extrapolated"
            } else {
                ""
            }
        )
    }
}

/// A flat, serializable summary of a [`SimReport`] (one CSV row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Design name.
    pub design: String,
    /// Workload name.
    pub workload: String,
    /// Full-workload core cycles.
    pub core_cycles: u64,
    /// Simulated `rasa_mm` count.
    pub simulated_matmuls: u64,
    /// Full-workload `rasa_mm` count.
    pub total_matmuls: u64,
    /// Full-workload runtime in seconds.
    pub runtime_seconds: f64,
    /// Instructions per cycle of the simulated portion.
    pub ipc: f64,
    /// Fraction of `rasa_mm` instructions that bypassed Weight Load.
    pub engine_bypass_rate: f64,
    /// Array area in mm².
    pub area_mm2: f64,
    /// Estimated energy of the simulated portion in joules.
    pub energy_joules: f64,
    /// Completion events processed by the event-driven core scheduler.
    pub sched_events: u64,
    /// Cycles the event-driven scheduler actually simulated (the rest of
    /// the timeline was jumped over).
    pub visited_cycles: u64,
    /// Trace segments fed to the core (1 for a materialized run).
    pub segments: u64,
    /// Peak instructions resident in the core's fetch buffer.
    pub peak_resident_instructions: u64,
    /// Speculative segments forked by the fork/join scheduler.
    pub spec_forks: u64,
    /// Speculative segments whose prediction validated and committed.
    pub spec_commits: u64,
    /// Speculative segments that mispredicted and replayed sequentially.
    pub spec_replays: u64,
}

impl SimSummary {
    /// The CSV header matching [`SimSummary::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> &'static str {
        "design,workload,core_cycles,simulated_matmuls,total_matmuls,runtime_seconds,ipc,engine_bypass_rate,area_mm2,energy_joules,sched_events,visited_cycles,segments,peak_resident_instructions,spec_forks,spec_commits,spec_replays"
    }

    /// One CSV row (no trailing newline).
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6e},{:.4},{:.4},{:.4},{:.6e},{},{},{},{},{},{},{}",
            self.design,
            self.workload,
            self.core_cycles,
            self.simulated_matmuls,
            self.total_matmuls,
            self.runtime_seconds,
            self.ipc,
            self.engine_bypass_rate,
            self.area_mm2,
            self.energy_joules,
            self.sched_events,
            self.visited_cycles,
            self.segments,
            self.peak_resident_instructions,
            self.spec_forks,
            self.spec_commits,
            self.spec_replays
        )
    }
}

/// A labelled collection of reports for one workload across design points
/// (one Fig. 5 column group).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: String,
    /// One report per design point, in the order they were run.
    pub reports: Vec<SimReport>,
}

impl WorkloadRun {
    /// The baseline report (design named `BASELINE`), if present.
    #[must_use]
    pub fn baseline(&self) -> Option<&SimReport> {
        self.reports.iter().find(|r| r.design == "BASELINE")
    }

    /// Normalized runtime of every design against the workload's baseline.
    #[must_use]
    pub fn normalized_runtimes(&self) -> Vec<(String, f64)> {
        let Some(base) = self.baseline() else {
            return Vec::new();
        };
        self.reports
            .iter()
            .map(|r| (r.design.clone(), r.normalized_runtime_vs(base)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_power::EngineActivitySummary;
    use rasa_systolic::SystolicConfig;

    fn report(design: &str, workload: &str, cycles: u64) -> SimReport {
        let cfg = SystolicConfig::paper_baseline();
        SimReport {
            design: design.to_string(),
            workload: workload.to_string(),
            core_cycles: cycles,
            simulated_core_cycles: cycles,
            simulated_matmuls: 100,
            total_matmuls: 100,
            runtime_seconds: cycles as f64 / 2.0e9,
            cpu: CpuStats::default(),
            sched: SchedStats::default(),
            pipeline: PipelineStats::default(),
            power: PowerReport::new(&cfg, &EngineActivitySummary::default(), cycles),
        }
    }

    #[test]
    fn pipeline_stats_residency_and_display() {
        let streamed = PipelineStats {
            streamed: true,
            segments: 10,
            fed_instructions: 1000,
            peak_resident_instructions: 120,
            spec_forks: 8,
            spec_commits: 6,
            spec_replays: 2,
        };
        assert!((streamed.residency() - 0.12).abs() < 1e-12);
        assert!(streamed.to_string().contains("streamed"));
        assert!(streamed.to_string().contains("8 speculative segments"));
        assert!((streamed.spec_commit_rate() - 0.75).abs() < 1e-12);
        let materialized = PipelineStats {
            streamed: false,
            segments: 1,
            fed_instructions: 1000,
            peak_resident_instructions: 1000,
            ..PipelineStats::default()
        };
        assert!((materialized.residency() - 1.0).abs() < 1e-12);
        assert!(materialized.to_string().contains("materialized"));
        assert!(!materialized.to_string().contains("speculative"));
        assert_eq!(PipelineStats::default().residency(), 0.0);
        assert_eq!(PipelineStats::default().spec_commit_rate(), 0.0);
    }

    #[test]
    fn normalization_and_speedup() {
        let base = report("BASELINE", "DLRM-1", 1000);
        let fast = report("RASA-DMDB-WLS", "DLRM-1", 200);
        assert!((fast.normalized_runtime_vs(&base) - 0.2).abs() < 1e-12);
        assert!((fast.speedup_vs(&base) - 5.0).abs() < 1e-12);
        assert!(!fast.is_extrapolated());
        assert!(fast.to_string().contains("RASA-DMDB-WLS"));
    }

    #[test]
    fn extrapolation_flag() {
        let mut r = report("BASELINE", "BERT-3", 500);
        r.total_matmuls = 1000;
        assert!(r.is_extrapolated());
        assert!(r.to_string().contains("extrapolated"));
    }

    #[test]
    fn summary_and_csv() {
        let r = report("RASA-PIPE", "BERT-1", 123_456);
        let s = r.summary();
        assert_eq!(s.design, "RASA-PIPE");
        assert_eq!(s.core_cycles, 123_456);
        let row = s.to_csv_row();
        assert!(row.starts_with("RASA-PIPE,BERT-1,123456"));
        assert_eq!(
            SimSummary::csv_header().split(',').count(),
            row.split(',').count()
        );
        // The Serialize/Deserialize bounds exist for downstream exporters;
        // assert them at compile time without pulling in a JSON dependency.
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<SimSummary>();
    }

    #[test]
    fn workload_run_normalization() {
        let run = WorkloadRun {
            workload: "DLRM-1".to_string(),
            reports: vec![
                report("BASELINE", "DLRM-1", 1000),
                report("RASA-WLBP", "DLRM-1", 700),
            ],
        };
        let normalized = run.normalized_runtimes();
        assert_eq!(normalized.len(), 2);
        assert!((normalized[1].1 - 0.7).abs() < 1e-12);
        assert!(run.baseline().is_some());

        let empty = WorkloadRun {
            workload: "x".to_string(),
            reports: vec![report("RASA-PIPE", "x", 10)],
        };
        assert!(empty.baseline().is_none());
        assert!(empty.normalized_runtimes().is_empty());
    }
}
