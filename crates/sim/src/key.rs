//! Interned semantic cell keys.
//!
//! Every layer of the stack identifies a simulation cell by the same
//! semantic string — `"{design:?}|{shape:?}|{kernel:?}"`, rendered by
//! [`SimJob::semantic_key`](crate::SimJob::semantic_key). Before this
//! module existed, that string was rendered and hashed *repeatedly* per
//! request: once for the runner's memoization probe, once per serving
//! coalescing comparison, and once per router ring lookup, each hashing
//! the full ~200-byte key with SipHash or FNV from scratch.
//!
//! [`CellKey`] renders the key **once** and carries a precomputed 64-bit
//! hash — [`net::hash::ring_point`](crate::net::hash::ring_point), the
//! same FNV-1a + avalanche finalizer the consistent-hash ring uses. The
//! one value then serves three masters with zero re-hashing:
//!
//! - `HashMap`/[`LruCache`](crate::LruCache) probes: the [`Hash`] impl
//!   feeds the precomputed value straight to the hasher.
//! - Serving-layer coalescing: equality short-circuits on the hash before
//!   comparing bytes, and clones are `Arc` bumps, not string copies.
//! - Router placement: [`hash64`](CellKey::hash64) *is* the ring point,
//!   so [`HashRing::route_point`](crate::net::HashRing::route_point)
//!   needs no further work.
//!
//! Interning is **aliasing-free**: equality always compares the full key
//! text (the hash only short-circuits inequality), so two distinct cells
//! colliding on the 64-bit hash still key separate cache slots. And the
//! string form is still what every JSON document and wire frame carries —
//! golden files and the wire protocol are byte-identical to the
//! pre-interning encoding.

use crate::net::hash::ring_point;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An interned semantic cell key: the rendered key text plus its
/// precomputed 64-bit hash (which doubles as the consistent-hash ring
/// point). Cheap to clone (`Arc` bump), cheap to compare (hash
/// short-circuit), cheap to re-probe (no re-hashing).
#[derive(Debug, Clone)]
pub struct CellKey {
    text: Arc<str>,
    hash: u64,
}

impl CellKey {
    /// Interns a rendered semantic key, hashing it exactly once.
    #[must_use]
    pub fn new(text: impl Into<Arc<str>>) -> CellKey {
        let text = text.into();
        let hash = ring_point(text.as_bytes());
        CellKey { text, hash }
    }

    /// The rendered key text — exactly the legacy string key, byte for
    /// byte; this is what JSON documents and wire frames serialize.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The precomputed 64-bit hash: `mix64(fnv1a_64(text))`, identical to
    /// the consistent-hash [`ring_point`] of the key text, so the router
    /// places requests without re-hashing.
    #[must_use]
    pub const fn hash64(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for CellKey {
    fn eq(&self, other: &Self) -> bool {
        // The hash check rejects almost all non-equal pairs in one
        // comparison; the byte comparison keeps colliding keys distinct
        // (no aliasing on hash collisions).
        self.hash == other.hash && (Arc::ptr_eq(&self.text, &other.text) || self.text == other.text)
    }
}

impl Eq for CellKey {}

impl Hash for CellKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<String> for CellKey {
    fn from(text: String) -> Self {
        CellKey::new(text)
    }
}

impl From<&str> for CellKey {
    fn from(text: &str) -> Self {
        CellKey::new(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn interning_preserves_the_text_and_precomputes_the_ring_point() {
        let key = CellKey::new("BASELINE|Gemm { m: 512 }|Kernel");
        assert_eq!(key.as_str(), "BASELINE|Gemm { m: 512 }|Kernel");
        assert_eq!(key.hash64(), ring_point(key.as_str().as_bytes()));
        assert_eq!(key.to_string(), key.as_str());
        let again = CellKey::from(key.as_str().to_string());
        assert_eq!(key, again);
        assert_eq!(key.hash64(), again.hash64());
    }

    #[test]
    fn equality_compares_bytes_not_just_hashes() {
        let a = CellKey::new("cell-a");
        let b = CellKey::new("cell-b");
        assert_ne!(a, b);
        // A forged collision must still compare unequal on the text.
        let forged = CellKey {
            text: Arc::from("cell-x"),
            hash: a.hash64(),
        };
        assert_ne!(a, forged, "hash collisions must not alias");
        // Clones share the interned text and compare by pointer.
        let clone = a.clone();
        assert_eq!(a, clone);
    }

    #[test]
    fn map_hashing_uses_the_precomputed_value() {
        let key = CellKey::new("some-cell");
        let mut direct = DefaultHasher::new();
        key.hash(&mut direct);
        let mut expected = DefaultHasher::new();
        expected.write_u64(key.hash64());
        assert_eq!(direct.finish(), expected.finish());
    }

    #[test]
    fn cell_keys_index_lru_caches() {
        let mut cache = crate::LruCache::new(2);
        cache.insert(CellKey::new("a"), 1);
        cache.insert(CellKey::new("b"), 2);
        assert_eq!(cache.get(&CellKey::new("a")), Some(&1));
        cache.insert(CellKey::new("c"), 3);
        assert!(!cache.contains(&CellKey::new("b")), "LRU evicted");
        assert_eq!(
            cache
                .keys_by_recency()
                .iter()
                .map(CellKey::as_str)
                .collect::<Vec<_>>(),
            vec!["c", "a"]
        );
    }
}
