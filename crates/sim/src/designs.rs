use rasa_cpu::CpuConfig;
use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};
use std::fmt;

/// One evaluated design point: a systolic-array configuration (PE variant +
/// control scheme) paired with the host CPU configuration.
///
/// The paper evaluates the baseline plus seven RASA designs whose names
/// concatenate the applied optimizations (e.g. `RASA-DM-PIPE`); the named
/// constructors below reproduce that set, and [`DesignPoint::paper_designs`]
/// returns them in the order Fig. 5 presents them.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    name: String,
    systolic: SystolicConfig,
    cpu: CpuConfig,
}

impl DesignPoint {
    /// Creates a custom design point.
    #[must_use]
    pub fn new(name: impl Into<String>, systolic: SystolicConfig, cpu: CpuConfig) -> Self {
        DesignPoint {
            name: name.into(),
            systolic,
            cpu,
        }
    }

    fn paper(pe: PeVariant, scheme: ControlScheme) -> Self {
        let systolic =
            SystolicConfig::paper(pe, scheme).expect("paper design combinations are always valid");
        DesignPoint {
            name: systolic.label(),
            systolic,
            cpu: CpuConfig::skylake_like(),
        }
    }

    /// The baseline: 32×16 baseline PEs, fully serialized `rasa_mm`s.
    #[must_use]
    pub fn baseline() -> Self {
        DesignPoint::paper(PeVariant::Baseline, ControlScheme::Base)
    }

    /// RASA-PIPE: basic pipelining (overlap Drain with the next Weight Load).
    #[must_use]
    pub fn rasa_pipe() -> Self {
        DesignPoint::paper(PeVariant::Baseline, ControlScheme::Pipe)
    }

    /// RASA-WLBP: weight-load bypass on clean weight-register reuse.
    #[must_use]
    pub fn rasa_wlbp() -> Self {
        DesignPoint::paper(PeVariant::Baseline, ControlScheme::Wlbp)
    }

    /// RASA-DM-PIPE: double-multiplier PEs with basic pipelining.
    #[must_use]
    pub fn rasa_dm_pipe() -> Self {
        DesignPoint::paper(PeVariant::Dm, ControlScheme::Pipe)
    }

    /// RASA-DM-WLBP: double-multiplier PEs with weight-load bypass.
    #[must_use]
    pub fn rasa_dm_wlbp() -> Self {
        DesignPoint::paper(PeVariant::Dm, ControlScheme::Wlbp)
    }

    /// RASA-DB-WLS: double-buffered PEs with weight-load skip (prefetch).
    #[must_use]
    pub fn rasa_db_wls() -> Self {
        DesignPoint::paper(PeVariant::Db, ControlScheme::Wls)
    }

    /// RASA-DMDB-WLBP: double multiplier and double buffering, bypass only.
    #[must_use]
    pub fn rasa_dmdb_wlbp() -> Self {
        DesignPoint::paper(PeVariant::Dmdb, ControlScheme::Wlbp)
    }

    /// RASA-DMDB-WLS: the most aggressive design (double multiplier, double
    /// buffering, weight-load skip) — the one Fig. 7 sweeps.
    #[must_use]
    pub fn rasa_dmdb_wls() -> Self {
        DesignPoint::paper(PeVariant::Dmdb, ControlScheme::Wls)
    }

    /// The baseline plus the seven RASA designs of the Fig. 5 runtime
    /// comparison, in presentation order.
    #[must_use]
    pub fn paper_designs() -> Vec<DesignPoint> {
        vec![
            DesignPoint::baseline(),
            DesignPoint::rasa_pipe(),
            DesignPoint::rasa_wlbp(),
            DesignPoint::rasa_dm_pipe(),
            DesignPoint::rasa_dm_wlbp(),
            DesignPoint::rasa_db_wls(),
            DesignPoint::rasa_dmdb_wlbp(),
            DesignPoint::rasa_dmdb_wls(),
        ]
    }

    /// Resolves one of the eight named paper designs from its Fig. 5 name
    /// (e.g. `"RASA-DMDB-WLS"`). The wire protocol ships designs by name,
    /// so this is how a shard worker reconstructs the design point a
    /// remote request asks for; custom design points are not resolvable.
    #[must_use]
    pub fn by_name(name: &str) -> Option<DesignPoint> {
        DesignPoint::paper_designs()
            .into_iter()
            .find(|design| design.name() == name)
    }

    /// The three RASA-Data design points compared in Fig. 6 (each paired
    /// with its best-performing control scheme, as in the paper).
    #[must_use]
    pub fn fig6_designs() -> Vec<DesignPoint> {
        vec![
            DesignPoint::rasa_db_wls(),
            DesignPoint::rasa_dm_wlbp(),
            DesignPoint::rasa_dmdb_wls(),
        ]
    }

    /// The design name (e.g. `RASA-DMDB-WLS`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The systolic-array configuration.
    #[must_use]
    pub const fn systolic(&self) -> &SystolicConfig {
        &self.systolic
    }

    /// The host CPU configuration.
    #[must_use]
    pub const fn cpu(&self) -> &CpuConfig {
        &self.cpu
    }

    /// Returns a copy with a different CPU configuration (for sensitivity
    /// studies on the host core).
    #[must_use]
    pub fn with_cpu(mut self, cpu: CpuConfig) -> Self {
        self.cpu = cpu;
        self
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} | {}]", self.name, self.systolic, self.cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_designs_are_the_documented_eight() {
        let designs = DesignPoint::paper_designs();
        assert_eq!(designs.len(), 8);
        let names: Vec<_> = designs.iter().map(DesignPoint::name).collect();
        assert_eq!(
            names,
            vec![
                "BASELINE",
                "RASA-PIPE",
                "RASA-WLBP",
                "RASA-DM-PIPE",
                "RASA-DM-WLBP",
                "RASA-DB-WLS",
                "RASA-DMDB-WLBP",
                "RASA-DMDB-WLS",
            ]
        );
    }

    #[test]
    fn design_configurations_are_consistent() {
        let baseline = DesignPoint::baseline();
        assert_eq!(baseline.systolic().rows(), 32);
        assert_eq!(baseline.cpu().rob_size, 97);
        let dmdb = DesignPoint::rasa_dmdb_wls();
        assert_eq!(dmdb.systolic().rows(), 16);
        assert_eq!(dmdb.systolic().num_multipliers(), 512);
        assert!(dmdb.to_string().contains("RASA-DMDB-WLS"));
    }

    #[test]
    fn fig6_designs_match_paper_selection() {
        let names: Vec<_> = DesignPoint::fig6_designs()
            .iter()
            .map(|d| d.name().to_string())
            .collect();
        assert_eq!(names, vec!["RASA-DB-WLS", "RASA-DM-WLBP", "RASA-DMDB-WLS"]);
    }

    #[test]
    fn with_cpu_overrides_host() {
        let mut cpu = CpuConfig::skylake_like();
        cpu.rob_size = 224;
        let d = DesignPoint::baseline().with_cpu(cpu);
        assert_eq!(d.cpu().rob_size, 224);
        assert_eq!(d.name(), "BASELINE");
    }

    #[test]
    fn custom_design_point() {
        let d = DesignPoint::new(
            "CUSTOM",
            SystolicConfig::paper_baseline(),
            CpuConfig::skylake_like(),
        );
        assert_eq!(d.name(), "CUSTOM");
    }
}
