//! Shard-warm request routing with per-shard bounded in-flight windows.
//!
//! A [`Router`] owns a [`HashRing`] over N shard addresses and forwards
//! every request to the shard that owns its **semantic shape key** — the
//! same key the shard's runner memoizes cells under — so repeated shapes
//! always land where the LRU cell cache is already warm (see
//! [`WireRequest::shape_key`]).
//!
//! Two mechanisms bound and protect the fan-out:
//!
//! - **Per-shard in-flight windows** re-apply the PR 3 admission-control
//!   semantics per backend: at most `inflight_per_shard` requests may be
//!   outstanding to one shard; excess callers either block until a slot
//!   frees ([`AdmissionControl::Block`]) or are turned away with a
//!   retryable `overloaded` error ([`AdmissionControl::Reject`]). A slow
//!   shard therefore backpressures its own traffic instead of absorbing
//!   unbounded connections.
//! - **Dead-shard failover**: a transport failure marks the shard dead and
//!   the request is retried on the next shard in the ring's clockwise
//!   [`preference order`](HashRing::preference_order) — deterministic, and
//!   minimal-churn (only the dead shard's keys move). Requests are
//!   idempotent pure simulations, so retrying on another shard can never
//!   produce a different answer, only a colder cache.
//!   [`Router::revive_dead`] probes dead shards and puts recovered ones
//!   back on the ring.
//!
//! [`Router::bind`] additionally exposes the router itself as a frame
//! server (the `rasa-router` binary), answering health probes with a
//! [`RouterHealth`] aggregate that nests every live shard's
//! [`HealthStatus`] — the per-shard cache-churn view the distributed soak
//! reports.

use crate::cache::LruCache;
use crate::json::{FromJson, JsonError, JsonValue, ToJson};
use crate::key::CellKey;
use crate::net::hash::HashRing;
use crate::net::listener::FrameListener;
use crate::net::wire::{
    ErrorCode, Frame, FrameKind, HealthStatus, WireFailure, WireRequest, WireResponse,
};
use crate::net::NetError;
use crate::prof::{self, Stage};
use crate::serve::AdmissionControl;
use crate::SimError;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Configuration of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// Maximum requests concurrently outstanding to one shard.
    pub inflight_per_shard: usize,
    /// What happens when a shard's window is full: block the caller until
    /// a slot frees, or reject with a retryable `overloaded` error.
    pub admission: AdmissionControl,
    /// The default matmul cap the shards run with. Must match the shards'
    /// [`ServeConfig::matmul_cap`](crate::serve::ServeConfig::matmul_cap)
    /// so the routing key equals the shard's memoization key.
    pub matmul_cap: Option<usize>,
    /// Bound on the router's own result cache (LRU over cell keys), probed
    /// before any shard is contacted. `0` disables the cache. Cells are
    /// deterministic pure functions of their key (see DETERMINISM.md), so
    /// cached results never need invalidation.
    pub result_cache_capacity: usize,
}

/// Default bound on the router-side result cache.
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 256;

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vnodes: 64,
            inflight_per_shard: 32,
            admission: AdmissionControl::Block,
            matmul_cap: crate::serve::ServeConfig::default().matmul_cap,
            result_cache_capacity: DEFAULT_RESULT_CACHE_CAPACITY,
        }
    }
}

/// A monotonic snapshot of a router's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Requests answered with a response frame.
    pub routed: u64,
    /// Requests answered with a remote error frame.
    pub remote_errors: u64,
    /// Requests that had to leave their home shard for a failover target.
    pub failovers: u64,
    /// Times a shard was marked dead after a transport failure.
    pub dead_marked: u64,
    /// Times a dead shard answered a probe and was revived.
    pub revived: u64,
    /// Requests that waited for a full in-flight window (block mode).
    pub window_blocked: u64,
    /// Requests turned away by a full in-flight window (reject mode).
    pub window_rejected: u64,
    /// Requests answered from the router's own result cache — no shard
    /// was contacted (these still count as `routed`).
    pub cache_hits: u64,
    /// Requests that missed the router's result cache (or found it
    /// disabled) and went to a shard.
    pub cache_misses: u64,
    /// Responses attributed to each shard, by shard id.
    pub per_shard: Vec<u64>,
}

impl RouterStats {
    /// Fraction of routed requests answered from the router's result
    /// cache; `0.0` when nothing was probed.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

impl ToJson for RouterStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("routed".into(), JsonValue::number_from_u64(self.routed)),
            (
                "remote_errors".into(),
                JsonValue::number_from_u64(self.remote_errors),
            ),
            (
                "failovers".into(),
                JsonValue::number_from_u64(self.failovers),
            ),
            (
                "dead_marked".into(),
                JsonValue::number_from_u64(self.dead_marked),
            ),
            ("revived".into(), JsonValue::number_from_u64(self.revived)),
            (
                "window_blocked".into(),
                JsonValue::number_from_u64(self.window_blocked),
            ),
            (
                "window_rejected".into(),
                JsonValue::number_from_u64(self.window_rejected),
            ),
            (
                "cache_hits".into(),
                JsonValue::number_from_u64(self.cache_hits),
            ),
            (
                "cache_misses".into(),
                JsonValue::number_from_u64(self.cache_misses),
            ),
            (
                "per_shard".into(),
                JsonValue::Array(
                    self.per_shard
                        .iter()
                        .map(|&n| JsonValue::number_from_u64(n))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for RouterStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JsonError::decode(format!("field '{name}' is not a u64")))
        };
        let per_shard = value
            .get("per_shard")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| JsonError::decode("field 'per_shard' is not an array"))?
            .iter()
            .map(|n| {
                n.as_u64()
                    .ok_or_else(|| JsonError::decode("per_shard entry is not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RouterStats {
            routed: field("routed")?,
            remote_errors: field("remote_errors")?,
            failovers: field("failovers")?,
            dead_marked: field("dead_marked")?,
            revived: field("revived")?,
            window_blocked: field("window_blocked")?,
            window_rejected: field("window_rejected")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            per_shard,
        })
    }
}

/// What a router reports to a health probe: its own counters plus a fresh
/// health snapshot of every shard that answered one.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterHealth {
    /// The router's counters at snapshot time.
    pub stats: RouterStats,
    /// Shard ids currently marked dead.
    pub dead: Vec<u32>,
    /// Health snapshots of the shards that answered the probe.
    pub shards: Vec<HealthStatus>,
}

impl ToJson for RouterHealth {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("stats".into(), self.stats.to_json()),
            (
                "dead".into(),
                JsonValue::Array(
                    self.dead
                        .iter()
                        .map(|&s| JsonValue::number_from_u64(s.into()))
                        .collect(),
                ),
            ),
            (
                "shards".into(),
                JsonValue::Array(self.shards.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for RouterHealth {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let dead = value
            .get("dead")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| JsonError::decode("field 'dead' is not an array"))?
            .iter()
            .map(|n| {
                n.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| JsonError::decode("dead entry is not a u32"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let shards = value
            .get("shards")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| JsonError::decode("field 'shards' is not an array"))?
            .iter()
            .map(HealthStatus::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RouterHealth {
            stats: RouterStats::from_json(
                value
                    .get("stats")
                    .ok_or_else(|| JsonError::decode("missing field 'stats'"))?,
            )?,
            dead,
            shards,
        })
    }
}

/// The in-flight window of one backend: a counting semaphore with the
/// serve layer's admission-control semantics.
struct Window {
    in_flight: Mutex<usize>,
    space: Condvar,
    capacity: usize,
}

impl Window {
    fn new(capacity: usize) -> Window {
        Window {
            in_flight: Mutex::new(0),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Takes a slot. Returns whether the caller had to wait, or `None`
    /// when the window is full and `admission` is `Reject`.
    fn acquire(&self, admission: AdmissionControl) -> Option<bool> {
        let mut in_flight = self.in_flight.lock().expect("router window lock");
        let mut waited = false;
        while *in_flight >= self.capacity {
            match admission {
                AdmissionControl::Reject => return None,
                AdmissionControl::Block => {
                    waited = true;
                    in_flight = self.space.wait(in_flight).expect("router window wait");
                }
            }
        }
        *in_flight += 1;
        Some(waited)
    }

    fn release(&self) {
        let mut in_flight = self.in_flight.lock().expect("router window lock");
        *in_flight = in_flight.saturating_sub(1);
        drop(in_flight);
        self.space.notify_one();
    }
}

/// One shard backend: its address, liveness, window and connection pool.
struct Backend {
    shard: u32,
    addr: String,
    alive: AtomicBool,
    window: Window,
    /// Idle connections to the shard. A request pops one (or dials a new
    /// one), uses it exclusively, and returns it on clean completion.
    pool: Mutex<Vec<TcpStream>>,
    /// Retired reply-payload buffers, recycled into the next exchange's
    /// decode. Like the connection pool, its size is bounded by the
    /// number of concurrent exchanges (itself bounded by the in-flight
    /// window).
    scratch: Mutex<Vec<Vec<u8>>>,
    routed: AtomicU64,
}

impl Backend {
    /// One request/response exchange on a pooled or fresh connection,
    /// decoding the reply into a recycled buffer. Hand the reply back via
    /// [`reclaim`](Self::reclaim) once parsed.
    fn exchange(&self, frame: &Frame) -> Result<Frame, NetError> {
        let pooled = self.pool.lock().expect("router pool lock").pop();
        let mut stream = match pooled {
            Some(stream) => stream,
            None => TcpStream::connect(&self.addr).map_err(|e| NetError::Io {
                kind: e.kind(),
                reason: format!("connect {}: {e}", self.addr),
            })?,
        };
        frame.write_to(&mut stream)?;
        let mut buf = self
            .scratch
            .lock()
            .expect("router scratch lock")
            .pop()
            .unwrap_or_default();
        let reply = Frame::read_from_pooled(&mut stream, &mut buf)?;
        self.pool.lock().expect("router pool lock").push(stream);
        Ok(reply)
    }

    /// Returns a parsed reply's payload buffer to the scratch pool.
    fn reclaim(&self, reply: Frame) {
        self.scratch
            .lock()
            .expect("router scratch lock")
            .push(reply.into_payload());
    }
}

struct Counters {
    routed: AtomicU64,
    remote_errors: AtomicU64,
    failovers: AtomicU64,
    dead_marked: AtomicU64,
    revived: AtomicU64,
    window_blocked: AtomicU64,
    window_rejected: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

struct RouterCore {
    config: RouterConfig,
    ring: HashRing,
    backends: Vec<Backend>,
    counters: Counters,
    /// The router's own result cache, probed before any shard. `None`
    /// when disabled by configuration.
    result_cache: Option<Mutex<LruCache<CellKey, Arc<WireResponse>>>>,
}

/// A consistent-hashing request router over N shard backends.
pub struct Router {
    core: Arc<RouterCore>,
    listener: Option<FrameListener>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.core.backends.len())
            .field("listening", &self.local_addr())
            .field("config", &self.core.config)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Builds an in-process router over the given shard addresses (index =
    /// shard id). No listener is bound; use this form from tests, library
    /// callers and the soak harness.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidExperiment`] when `shard_addrs` is empty.
    pub fn new(shard_addrs: &[String], config: RouterConfig) -> Result<Router, SimError> {
        if shard_addrs.is_empty() {
            return Err(SimError::InvalidExperiment {
                reason: "a router needs at least one shard address".to_string(),
            });
        }
        let ring = HashRing::new(shard_addrs.len(), config.vnodes);
        let backends = shard_addrs
            .iter()
            .enumerate()
            .map(|(shard, addr)| Backend {
                shard: u32::try_from(shard).expect("shard count fits in u32"),
                addr: addr.clone(),
                alive: AtomicBool::new(true),
                window: Window::new(config.inflight_per_shard),
                pool: Mutex::new(Vec::new()),
                scratch: Mutex::new(Vec::new()),
                routed: AtomicU64::new(0),
            })
            .collect();
        let config_cache_capacity = config.result_cache_capacity;
        Ok(Router {
            core: Arc::new(RouterCore {
                config,
                ring,
                backends,
                counters: Counters {
                    routed: AtomicU64::new(0),
                    remote_errors: AtomicU64::new(0),
                    failovers: AtomicU64::new(0),
                    dead_marked: AtomicU64::new(0),
                    revived: AtomicU64::new(0),
                    window_blocked: AtomicU64::new(0),
                    window_rejected: AtomicU64::new(0),
                    cache_hits: AtomicU64::new(0),
                    cache_misses: AtomicU64::new(0),
                },
                result_cache: (config_cache_capacity > 0)
                    .then(|| Mutex::new(LruCache::new(config_cache_capacity))),
            }),
            listener: None,
        })
    }

    /// Builds the router **and** binds `addr` as a frame server for it —
    /// the form the `rasa-router` binary runs. Inbound request frames are
    /// routed; health probes are answered with a [`RouterHealth`].
    ///
    /// # Errors
    ///
    /// Everything [`new`](Router::new) rejects, plus bind failures.
    pub fn bind(
        addr: &str,
        shard_addrs: &[String],
        config: RouterConfig,
    ) -> Result<Router, SimError> {
        let mut router = Router::new(shard_addrs, config)?;
        let core = Arc::clone(&router.core);
        let listener = FrameListener::bind(
            addr,
            "rasa-router",
            Arc::new(move |frame| answer(frame, &core)),
        )
        .map_err(SimError::from)?;
        router.listener = Some(listener);
        Ok(router)
    }

    /// The frame server's bound address. `None` for an in-process router.
    #[must_use]
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().map(FrameListener::local_addr)
    }

    /// Routes one request to its shard (with failover) and returns the
    /// shard's answer.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for shard-reported failures (including window
    /// rejection in reject mode, as a retryable `overloaded`),
    /// [`NetError::Unavailable`] when every shard is dead or the named
    /// design does not exist (no key can be computed).
    pub fn route(&self, request: &WireRequest) -> Result<WireResponse, NetError> {
        self.core.route(request)
    }

    /// The home shard id for a request, before liveness filtering. Useful
    /// for asserting shard-warm placement in tests and reports.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] when the named design does not exist.
    pub fn home_shard(&self, request: &WireRequest) -> Result<u32, NetError> {
        let key = request.shape_key(self.core.config.matmul_cap)?;
        Ok(self
            .core
            .ring
            .route_point(key.hash64())
            .expect("constructor guarantees a non-empty ring"))
    }

    /// Probes every dead shard with a health frame and revives the ones
    /// that answer. Returns the revived shard ids.
    pub fn revive_dead(&self) -> Vec<u32> {
        self.core.revive_dead()
    }

    /// A point-in-time snapshot of the router's counters.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.core.stats()
    }

    /// The router's health aggregate: its counters plus a fresh snapshot
    /// from every shard that answers a probe (a shard that fails the
    /// probe is marked dead and omitted).
    #[must_use]
    pub fn health(&self) -> RouterHealth {
        self.core.health()
    }

    /// Stops the frame server, if one was bound (the explicit form of
    /// drop). An in-process router has nothing to stop.
    pub fn shutdown(mut self) {
        if let Some(mut listener) = self.listener.take() {
            listener.stop_and_join();
        }
    }
}

impl RouterCore {
    fn route(&self, request: &WireRequest) -> Result<WireResponse, NetError> {
        let key = request.shape_key(self.config.matmul_cap)?;
        if let Some(cached) = self.probe_result_cache(&key, request) {
            return Ok(cached);
        }
        let order = self.ring.preference_order_point(key.hash64());
        // Serialized once: the frame is identical across failover
        // attempts, so re-encoding it per attempt would be pure waste.
        let request_frame = Frame::json(FrameKind::Request, &request.to_json());
        let mut last_io: Option<NetError> = None;
        for (attempt, &shard) in order.iter().enumerate() {
            let backend = &self.backends[shard as usize];
            if !backend.alive.load(Ordering::SeqCst) {
                continue;
            }
            match backend.window.acquire(self.config.admission) {
                Some(true) => {
                    self.counters.window_blocked.fetch_add(1, Ordering::SeqCst);
                }
                Some(false) => {}
                None => {
                    self.counters.window_rejected.fetch_add(1, Ordering::SeqCst);
                    return Err(NetError::Remote {
                        code: ErrorCode::Overloaded,
                        message: format!(
                            "router in-flight window for shard {shard} is at capacity {}",
                            self.config.inflight_per_shard
                        ),
                    });
                }
            }
            let outcome = backend.exchange(&request_frame);
            backend.window.release();
            match outcome {
                Ok(reply) => {
                    if attempt > 0 {
                        self.counters.failovers.fetch_add(1, Ordering::SeqCst);
                    }
                    let response = match self.parse_reply(&reply, request, backend) {
                        Ok(response) => response,
                        Err(error) => {
                            // A protocol violation (wrong frame kind, id
                            // mismatch, unparseable payload) means the
                            // pooled stream is desynced: whatever bytes
                            // follow belong to the reply we failed to
                            // understand. Exchange already returned the
                            // connection to the pool, so drop every pooled
                            // stream for this backend before surfacing the
                            // error — a desynced stream must not serve the
                            // next request.
                            if matches!(error, NetError::Protocol { .. }) {
                                backend.pool.lock().expect("router pool lock").clear();
                            }
                            return Err(error);
                        }
                    };
                    backend.reclaim(reply);
                    self.store_result(&key, &response);
                    return Ok(response);
                }
                // Transport failure: the shard is gone (or unreachable).
                // Mark it dead and fail over clockwise. The request never
                // reached a simulation, or reached one whose answer is a
                // pure function of the request — either way the retry is
                // safe.
                Err(NetError::Io { .. }) => {
                    if backend.alive.swap(false, Ordering::SeqCst) {
                        self.counters.dead_marked.fetch_add(1, Ordering::SeqCst);
                    }
                    backend.pool.lock().expect("router pool lock").clear();
                    last_io = Some(NetError::Io {
                        kind: std::io::ErrorKind::Other,
                        reason: format!("shard {shard} ({}) failed", backend.addr),
                    });
                }
                Err(other) => return Err(other),
            }
        }
        Err(NetError::Unavailable {
            reason: match last_io {
                Some(error) => format!("every shard in the preference order failed; last: {error}"),
                None => "every shard is marked dead".to_string(),
            },
        })
    }

    /// Probes the router-side result cache. A hit replays the cached
    /// response restamped for this request — the id becomes the caller's
    /// and the report is relabelled to the requested workload name,
    /// exactly what a shard with a warm cell would have answered — so no
    /// shard is contacted at all.
    fn probe_result_cache(&self, key: &CellKey, request: &WireRequest) -> Option<WireResponse> {
        let cache = self.result_cache.as_ref()?;
        let probe = prof::time(Stage::CacheProbe);
        let cached = cache
            .lock()
            .expect("router result cache lock")
            .get(key)
            .map(Arc::clone);
        drop(probe);
        match cached {
            Some(response) => {
                self.counters.cache_hits.fetch_add(1, Ordering::SeqCst);
                self.counters.routed.fetch_add(1, Ordering::SeqCst);
                let mut replay = (*response).clone();
                replay.id = request.id;
                if replay.report.workload != request.workload.name() {
                    replay.report.workload = request.workload.name().to_string();
                }
                Some(replay)
            }
            None => {
                self.counters.cache_misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Records a shard's answer in the result cache (the id and workload
    /// label are restamped per request on replay, so storing one
    /// exemplar per cell key is enough).
    fn store_result(&self, key: &CellKey, response: &WireResponse) {
        if let Some(cache) = &self.result_cache {
            cache
                .lock()
                .expect("router result cache lock")
                .insert(key.clone(), Arc::new(response.clone()));
        }
    }

    fn parse_reply(
        &self,
        reply: &Frame,
        request: &WireRequest,
        backend: &Backend,
    ) -> Result<WireResponse, NetError> {
        match reply.kind {
            FrameKind::Response => {
                let response = WireResponse::from_json(&reply.payload_json()?).map_err(|e| {
                    NetError::Frame {
                        reason: format!("undecodable response payload: {e}"),
                    }
                })?;
                if response.id != request.id {
                    return Err(NetError::Protocol {
                        reason: format!(
                            "response id {} does not match request id {}",
                            response.id, request.id
                        ),
                    });
                }
                backend.routed.fetch_add(1, Ordering::SeqCst);
                self.counters.routed.fetch_add(1, Ordering::SeqCst);
                Ok(response)
            }
            FrameKind::Error => {
                let failure = WireFailure::from_json(&reply.payload_json()?).map_err(|e| {
                    NetError::Frame {
                        reason: format!("undecodable error payload: {e}"),
                    }
                })?;
                self.counters.remote_errors.fetch_add(1, Ordering::SeqCst);
                Err(NetError::Remote {
                    code: failure.code,
                    message: failure.message,
                })
            }
            FrameKind::Request | FrameKind::Health => Err(NetError::Protocol {
                reason: format!("shard answered a request with a {:?} frame", reply.kind),
            }),
        }
    }

    fn revive_dead(&self) -> Vec<u32> {
        let mut revived = Vec::new();
        for backend in &self.backends {
            if backend.alive.load(Ordering::SeqCst) {
                continue;
            }
            if backend.exchange(&Frame::health_probe()).is_ok() {
                backend.alive.store(true, Ordering::SeqCst);
                self.counters.revived.fetch_add(1, Ordering::SeqCst);
                revived.push(backend.shard);
            }
        }
        revived
    }

    fn stats(&self) -> RouterStats {
        RouterStats {
            routed: self.counters.routed.load(Ordering::SeqCst),
            remote_errors: self.counters.remote_errors.load(Ordering::SeqCst),
            failovers: self.counters.failovers.load(Ordering::SeqCst),
            dead_marked: self.counters.dead_marked.load(Ordering::SeqCst),
            revived: self.counters.revived.load(Ordering::SeqCst),
            window_blocked: self.counters.window_blocked.load(Ordering::SeqCst),
            window_rejected: self.counters.window_rejected.load(Ordering::SeqCst),
            cache_hits: self.counters.cache_hits.load(Ordering::SeqCst),
            cache_misses: self.counters.cache_misses.load(Ordering::SeqCst),
            per_shard: self
                .backends
                .iter()
                .map(|b| b.routed.load(Ordering::SeqCst))
                .collect(),
        }
    }

    fn health(&self) -> RouterHealth {
        let mut shards = Vec::new();
        for backend in &self.backends {
            if !backend.alive.load(Ordering::SeqCst) {
                continue;
            }
            match backend
                .exchange(&Frame::health_probe())
                .and_then(|reply| match reply.kind {
                    FrameKind::Health => {
                        HealthStatus::from_json(&reply.payload_json()?).map_err(|e| {
                            NetError::Frame {
                                reason: format!("undecodable health payload: {e}"),
                            }
                        })
                    }
                    other => Err(NetError::Protocol {
                        reason: format!("shard answered a probe with a {other:?} frame"),
                    }),
                }) {
                Ok(health) => shards.push(health),
                Err(NetError::Io { .. }) => {
                    if backend.alive.swap(false, Ordering::SeqCst) {
                        self.counters.dead_marked.fetch_add(1, Ordering::SeqCst);
                    }
                }
                Err(_) => {}
            }
        }
        RouterHealth {
            stats: self.stats(),
            dead: self
                .backends
                .iter()
                .filter(|b| !b.alive.load(Ordering::SeqCst))
                .map(|b| b.shard)
                .collect(),
            shards,
        }
    }
}

/// The frame handler of a bound router: route requests, aggregate health.
fn answer(frame: &Frame, core: &Arc<RouterCore>) -> Frame {
    match frame.kind {
        FrameKind::Health => Frame::json(FrameKind::Health, &core.health().to_json()),
        FrameKind::Request => {
            let request = match frame.payload_json().and_then(|json| {
                WireRequest::from_json(&json).map_err(|e| NetError::Frame {
                    reason: e.to_string(),
                })
            }) {
                Ok(request) => request,
                Err(error) => {
                    return Frame::json(
                        FrameKind::Error,
                        &WireFailure::new(0, ErrorCode::BadRequest, error.to_string()).to_json(),
                    );
                }
            };
            match core.route(&request) {
                Ok(response) => Frame::json(FrameKind::Response, &response.to_json()),
                Err(error) => {
                    let code = match &error {
                        NetError::Remote { code, .. } => *code,
                        NetError::Unavailable { .. } | NetError::Io { .. } => {
                            ErrorCode::Unavailable
                        }
                        _ => ErrorCode::Internal,
                    };
                    Frame::json(
                        FrameKind::Error,
                        &WireFailure::new(request.id, code, error.to_string()).to_json(),
                    )
                }
            }
        }
        FrameKind::Response | FrameKind::Error => Frame::json(
            FrameKind::Error,
            &WireFailure::new(
                0,
                ErrorCode::BadRequest,
                format!("unexpected {:?} frame on a router", frame.kind),
            )
            .to_json(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::shard::{ShardConfig, ShardServer};
    use crate::serve::ServeConfig;
    use crate::DesignPoint;
    use rasa_workloads::LayerSpec;

    fn spawn_shards(count: u32) -> (Vec<ShardServer>, Vec<String>) {
        let designs = vec![DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
        let mut shards = Vec::new();
        let mut addrs = Vec::new();
        for shard_id in 0..count {
            let config = ShardConfig {
                shard_id,
                serve: ServeConfig {
                    workers_per_design: 1,
                    matmul_cap: Some(8),
                    ..ServeConfig::default()
                },
            };
            let shard = ShardServer::bind("127.0.0.1:0", config, &designs).unwrap();
            addrs.push(shard.local_addr().to_string());
            shards.push(shard);
        }
        (shards, addrs)
    }

    fn router_config() -> RouterConfig {
        RouterConfig {
            matmul_cap: Some(8),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn router_routes_to_the_home_shard() {
        let (shards, addrs) = spawn_shards(3);
        let router = Router::new(&addrs, router_config()).unwrap();
        for i in 0..6 {
            let request = WireRequest::new(
                i,
                "BASELINE",
                LayerSpec::fc(format!("L{i}"), 64, 64 + 32 * (i as usize % 3), 128),
            );
            let home = router.home_shard(&request).unwrap();
            let response = router.route(&request).unwrap();
            assert_eq!(response.id, i);
            assert_eq!(response.shard, home, "request must land on its home shard");
            assert_eq!(response.report.workload, format!("L{i}"), "relabelled");
        }
        let stats = router.stats();
        assert_eq!(stats.routed, 6);
        assert_eq!(stats.failovers, 0);
        // The three repeated shapes (i = 3, 4, 5 reuse the shapes of
        // i = 0, 1, 2) are answered from the router's result cache and
        // never reach a shard.
        assert_eq!(stats.cache_misses, 3);
        assert_eq!(stats.cache_hits, 3);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.per_shard.iter().sum::<u64>(), 3);
        for shard in shards {
            shard.shutdown();
        }
    }

    #[test]
    fn protocol_violations_poison_the_backend_connection_pool() {
        // A rogue shard that echoes every frame back verbatim: answering
        // a request with a Request frame is a protocol violation, and the
        // stream that produced it is desynced by definition.
        let rogue = FrameListener::bind(
            "127.0.0.1:0",
            "rogue",
            Arc::new(|frame: &Frame| frame.clone()),
        )
        .unwrap();
        let addrs = vec![rogue.local_addr().to_string()];
        let router = Router::new(&addrs, router_config()).unwrap();

        let request = WireRequest::new(7, "BASELINE", LayerSpec::fc("L", 64, 64, 128));
        let err = router.route(&request).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }), "got {err}");
        assert!(
            router.core.backends[0]
                .pool
                .lock()
                .expect("router pool lock")
                .is_empty(),
            "a desynced stream must not be returned to the pool"
        );
    }

    #[test]
    fn result_cache_hits_replay_shard_identical_bytes() {
        let (shards, addrs) = spawn_shards(2);
        let caching = Router::new(&addrs, router_config()).unwrap();
        let direct = Router::new(
            &addrs,
            RouterConfig {
                result_cache_capacity: 0,
                ..router_config()
            },
        )
        .unwrap();

        // Warm the caching router, then compare a cache hit against a real
        // shard round trip for the same request: byte-identical JSON.
        let request = WireRequest::new(11, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let warm = caching.route(&request).unwrap();
        let hit = caching.route(&request).unwrap();
        let round_trip = direct.route(&request).unwrap();
        assert_eq!(caching.stats().cache_hits, 1);
        assert_eq!(direct.stats().cache_hits, 0, "disabled cache never hits");
        assert_eq!(
            direct.stats().cache_misses,
            0,
            "disabled cache never probes"
        );
        assert_eq!(
            hit.to_json().to_string_compact(),
            round_trip.to_json().to_string_compact(),
            "a cache hit must be indistinguishable from a shard round trip"
        );
        assert_eq!(
            warm.to_json().to_string_compact(),
            hit.to_json().to_string_compact()
        );

        // A same-shape request under a different workload name and id is
        // still a hit, restamped exactly as the shard would have.
        let relabelled =
            WireRequest::new(12, "BASELINE", LayerSpec::fc("DLRM-1-alias", 64, 128, 128));
        let hit = caching.route(&relabelled).unwrap();
        let round_trip = direct.route(&relabelled).unwrap();
        assert_eq!(caching.stats().cache_hits, 2);
        assert_eq!(
            hit.to_json().to_string_compact(),
            round_trip.to_json().to_string_compact()
        );
        for shard in shards {
            shard.shutdown();
        }
    }

    #[test]
    fn router_fails_over_and_revives() {
        let (mut shards, addrs) = spawn_shards(2);
        // The same request is routed repeatedly and must reach a shard
        // every time for the failover machinery to engage — disable the
        // result cache, which would otherwise answer the replays itself.
        let router = Router::new(
            &addrs,
            RouterConfig {
                result_cache_capacity: 0,
                ..router_config()
            },
        )
        .unwrap();
        let request = WireRequest::new(1, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let home = router.home_shard(&request).unwrap();

        // Kill the home shard: the request must still complete, on the
        // other shard, and the death must be recorded.
        shards.remove(home as usize).shutdown();
        let response = router.route(&request).unwrap();
        assert_ne!(response.shard, home);
        let stats = router.stats();
        assert_eq!(stats.routed, 1);
        assert_eq!(stats.dead_marked, 1);
        assert_eq!(stats.failovers, 1);
        assert_eq!(router.health().dead, vec![home]);

        // Nothing to revive while the shard is down...
        assert!(router.revive_dead().is_empty());
        // ...but a resurrected shard at the same address comes back.
        let designs = vec![DesignPoint::baseline(), DesignPoint::rasa_dmdb_wls()];
        let resurrected = ShardServer::bind(
            &addrs[home as usize],
            ShardConfig {
                shard_id: home,
                serve: ServeConfig {
                    workers_per_design: 1,
                    matmul_cap: Some(8),
                    ..ServeConfig::default()
                },
            },
            &designs,
        )
        .unwrap();
        assert_eq!(router.revive_dead(), vec![home]);
        let response = router.route(&request).unwrap();
        assert_eq!(response.shard, home, "revived shard gets its keys back");
        resurrected.shutdown();
        for shard in shards {
            shard.shutdown();
        }
    }

    #[test]
    fn router_surfaces_remote_errors_and_unavailability() {
        let (shards, addrs) = spawn_shards(2);
        let router = Router::new(&addrs, router_config()).unwrap();
        let bad = WireRequest::new(5, "NO-SUCH", LayerSpec::fc("DLRM-1", 64, 128, 128));
        // An unknown design never reaches a shard: no key can be computed.
        let err = router.route(&bad).unwrap_err();
        assert!(matches!(
            err,
            NetError::Remote {
                code: ErrorCode::UnknownDesign,
                ..
            }
        ));
        for shard in shards {
            shard.shutdown();
        }
        // With every shard gone, routing reports unavailability.
        let request = WireRequest::new(6, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let err = router.route(&request).unwrap_err();
        assert!(matches!(err, NetError::Unavailable { .. }), "{err}");
        assert_eq!(router.stats().dead_marked, 2);
    }

    #[test]
    fn bound_router_serves_frames() {
        let (shards, addrs) = spawn_shards(2);
        let router = Router::bind("127.0.0.1:0", &addrs, router_config()).unwrap();
        let addr = router.local_addr().unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();

        let request = WireRequest::new(9, "RASA-DMDB-WLS", LayerSpec::fc("BERT-1", 64, 128, 128));
        Frame::json(FrameKind::Request, &request.to_json())
            .write_to(&mut conn)
            .unwrap();
        let reply = Frame::read_from(&mut conn).unwrap();
        assert_eq!(reply.kind, FrameKind::Response);
        let response = WireResponse::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(response.id, 9);
        assert_eq!(response.report.design, "RASA-DMDB-WLS");

        // The router's health aggregates both shards.
        Frame::health_probe().write_to(&mut conn).unwrap();
        let reply = Frame::read_from(&mut conn).unwrap();
        assert_eq!(reply.kind, FrameKind::Health);
        let health = RouterHealth::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(health.stats.routed, 1);
        assert_eq!(health.shards.len(), 2);
        assert!(health.dead.is_empty());

        // RouterHealth JSON round-trips.
        let text = health.to_json().to_string_compact();
        let back = RouterHealth::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, health);

        router.shutdown();
        for shard in shards {
            shard.shutdown();
        }
    }

    #[test]
    fn reject_mode_windows_turn_requests_away() {
        // A window of capacity 1 in reject mode: a concurrent second
        // request must be rejected, not queued. Exercise the window
        // directly (deterministic, no timing).
        let window = Window::new(1);
        assert_eq!(window.acquire(AdmissionControl::Reject), Some(false));
        assert_eq!(window.acquire(AdmissionControl::Reject), None);
        window.release();
        assert_eq!(window.acquire(AdmissionControl::Reject), Some(false));
        window.release();
    }

    #[test]
    fn empty_shard_list_is_rejected() {
        let err = Router::new(&[], router_config()).unwrap_err();
        assert!(matches!(err, SimError::InvalidExperiment { .. }));
    }
}
