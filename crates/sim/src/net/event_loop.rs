//! The readiness-based transport behind [`FrameListener`]: one event-loop
//! thread multiplexing every connection over non-blocking sockets, plus a
//! small worker pool running the frame handler.
//!
//! On Linux the loop blocks in `epoll_wait` (via the hand-rolled bindings
//! in [`crate::net::sys`]); elsewhere it falls back to a portable
//! level-triggered tick that attempts non-blocking I/O on every registered
//! socket. Both paths share all connection logic:
//!
//! - Each connection owns a [`FrameDecoder`], so partial header or payload
//!   bytes survive across readiness events — the mid-frame desync of the
//!   old blocking reader is impossible by construction.
//! - Replies accumulate in a per-connection write buffer and drain as the
//!   socket accepts them; the buffer is bounded, and a connection that
//!   backlogs past the bound (or pipelines more than [`PENDING_LIMIT`]
//!   frames) has its read interest dropped until it drains — backpressure
//!   instead of unbounded memory.
//! - Complete frames are handed to the worker pool; exactly one frame per
//!   connection is in flight at a time, which preserves the wire
//!   protocol's request/response lockstep. Replies return to the loop via
//!   a channel and a wakeup.
//!
//! The loop never blocks on a socket and workers never touch sockets, so
//! one slow or dead peer cannot stall any other connection.
//!
//! [`FrameListener`]: crate::net::listener::FrameListener
//! [`FrameDecoder`]: crate::net::wire::FrameDecoder

use crate::json::ToJson;
use crate::net::listener::FrameHandler;
use crate::net::wire::{ErrorCode, Frame, FrameDecoder, FrameKind, WireFailure, MAX_FRAME_LEN};
use crate::net::NetError;
use crate::prof::{self, Stage};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

#[cfg(target_os = "linux")]
use crate::net::sys;
#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;
#[cfg(target_os = "linux")]
use std::os::unix::net::UnixStream;

/// How long one `epoll_wait` blocks before re-checking the shutdown flag.
#[cfg(target_os = "linux")]
const POLL_TIMEOUT_MS: i32 = 50;

/// The portable fallback's tick: the loop sleeps at most this long (in
/// the completion channel's `recv_timeout`) before re-scanning every
/// socket. Short enough to keep reply latency low without epoll.
const FALLBACK_TICK: Duration = Duration::from_millis(2);

/// Size of the shared read scratch buffer — one read burst per readiness
/// event lands here before being fed to the connection's decoder.
const READ_CHUNK: usize = 64 * 1024;

/// Maximum decoded-but-undispatched frames per connection before its read
/// interest is dropped (a lockstep client keeps this at ≤ 1; only a
/// pipelining or misbehaving peer ever approaches the bound).
const PENDING_LIMIT: usize = 64;

/// Maximum buffered unsent reply bytes per connection before its read
/// interest is dropped: one maximum frame plus framing headroom.
const WRITE_BACKLOG_LIMIT: usize = MAX_FRAME_LEN + 64;

/// Epoll token of the accept socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll token of the waker's read end.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Abstract interest bit: the loop wants to read from the connection.
const WANT_READ: u32 = 0b01;
/// Abstract interest bit: the loop has unsent bytes for the connection.
const WANT_WRITE: u32 = 0b10;

/// Packs a slab index and its generation into an epoll token.
const fn token(index: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | (index as u64)
}

/// Number of handler worker threads: `RASA_NET_WORKERS` when set, else
/// twice the available parallelism clamped to [8, 32].
fn worker_count() -> usize {
    if let Ok(value) = std::env::var("RASA_NET_WORKERS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n.min(256);
            }
        }
    }
    thread::available_parallelism().map_or(8, |n| (n.get() * 2).clamp(8, 32))
}

/// A complete request frame handed to the worker pool.
struct Work {
    index: usize,
    generation: u32,
    frame: Frame,
}

/// A handler reply returning to the loop, with the request's payload
/// buffer riding along for recycling into the connection's decoder.
struct Done {
    index: usize,
    generation: u32,
    reply: Frame,
    recycled: Vec<u8>,
}

/// Wakes the loop out of its readiness wait when a worker finishes.
struct Waker {
    inner: WakerInner,
}

enum WakerInner {
    /// One byte written to a socketpair registered in epoll.
    #[cfg(target_os = "linux")]
    Socket(UnixStream),
    /// The fallback loop ticks on its own; no wakeup needed.
    Tick,
}

impl Waker {
    fn wake(&self) {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::Socket(stream) => {
                // A full pipe means a wakeup is already pending — ignore.
                let _ = (&*stream).write(&[1u8][..]);
            }
            WakerInner::Tick => {}
        }
    }
}

/// The readiness source: epoll on Linux, a plain tick elsewhere (or when
/// the fallback is forced for testing).
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Fallback,
}

#[cfg(target_os = "linux")]
struct EpollPoller {
    epoll: sys::Epoll,
    /// Read end of the waker socketpair, drained on [`WAKER_TOKEN`].
    waker_read: UnixStream,
}

/// One registered connection.
struct Conn {
    stream: TcpStream,
    generation: u32,
    /// Incremental decoder — partial frames survive across events.
    decoder: FrameDecoder,
    /// Decoded frames waiting for a worker slot.
    pending: VecDeque<Frame>,
    /// Whether a frame is currently with the worker pool.
    inflight: bool,
    /// Unsent reply bytes (drained from `out_pos`).
    out: Vec<u8>,
    out_pos: usize,
    /// Set after a protocol violation: stop reading, flush, then close.
    closing: bool,
    /// The interest mask currently registered with the poller.
    registered: u32,
}

impl Conn {
    fn new(stream: TcpStream, generation: u32) -> Conn {
        Conn {
            stream,
            generation,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            inflight: false,
            out: Vec::new(),
            out_pos: 0,
            closing: false,
            registered: WANT_READ,
        }
    }

    /// Whether backpressure has paused reads for this connection.
    fn paused(&self) -> bool {
        self.pending.len() >= PENDING_LIMIT || self.backlog() >= WRITE_BACKLOG_LIMIT
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn has_backlog(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Writes as much buffered output as the socket accepts right now.
    /// Returns `false` on a fatal transport error.
    fn try_flush(&mut self) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.out_pos == self.out.len() {
            // Fully drained: keep the capacity, reset the window.
            self.out.clear();
            self.out_pos = 0;
        }
        true
    }

    /// The interest mask the connection's state calls for.
    fn wanted_interest(&self) -> u32 {
        let mut want = 0;
        if !self.closing && !self.paused() {
            want |= WANT_READ;
        }
        if self.has_backlog() {
            want |= WANT_WRITE;
        }
        want
    }
}

/// Generation-checked connection storage: slots are reused, tokens are
/// not — a stale epoll event or worker reply for a closed connection
/// fails its generation check and is dropped.
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u32,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
        }
    }

    fn insert(&mut self, stream: TcpStream) -> (usize, u32) {
        let generation = self.next_generation;
        self.next_generation = self.next_generation.wrapping_add(1);
        let conn = Conn::new(stream, generation);
        match self.free.pop() {
            Some(index) => {
                self.slots[index] = Some(conn);
                (index, generation)
            }
            None => {
                self.slots.push(Some(conn));
                (self.slots.len() - 1, generation)
            }
        }
    }

    fn get_mut(&mut self, index: usize) -> Option<&mut Conn> {
        self.slots.get_mut(index).and_then(Option::as_mut)
    }

    fn remove(&mut self, index: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(index).and_then(Option::take);
        if conn.is_some() {
            self.free.push(index);
        }
        conn
    }

    fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

/// A bound readiness-based frame server: the event-loop thread, its
/// worker pool, and the shared shutdown machinery.
pub(crate) struct EventLoop {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    loop_thread: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    open_connections: Arc<AtomicUsize>,
}

impl EventLoop {
    /// Binds `addr` and starts the loop and worker threads. With
    /// `force_fallback` the portable tick poller is used even where epoll
    /// is available (exercised in tests so the fallback stays honest).
    pub(crate) fn bind(
        addr: &str,
        name: &str,
        handler: FrameHandler,
        force_fallback: bool,
    ) -> Result<EventLoop, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Io {
            kind: e.kind(),
            reason: format!("bind {addr}: {e}"),
        })?;
        listener.set_nonblocking(true).map_err(NetError::from)?;
        let local = listener.local_addr().map_err(NetError::from)?;

        let (poller, waker) = Self::build_poller(force_fallback)?;
        #[cfg(target_os = "linux")]
        if let Poller::Epoll(ep) = &poller {
            ep.epoll
                .add(listener.as_raw_fd(), LISTENER_TOKEN, sys::EPOLLIN)
                .map_err(NetError::from)?;
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let open_connections = Arc::new(AtomicUsize::new(0));
        let (work_tx, work_rx) = mpsc::channel::<Work>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let work_rx = Arc::new(Mutex::new(work_rx));

        let mut workers = Vec::new();
        for i in 0..worker_count() {
            let rx = Arc::clone(&work_rx);
            let tx = done_tx.clone();
            let worker_handler = Arc::clone(&handler);
            let worker_waker = Arc::clone(&waker);
            let handle = thread::Builder::new()
                .name(format!("{name}-worker-{i}"))
                .spawn(move || loop {
                    let work = {
                        let Ok(guard) = rx.lock() else { break };
                        guard.recv()
                    };
                    let Ok(work) = work else { break };
                    let reply = worker_handler(&work.frame);
                    let recycled = work.frame.into_payload();
                    let done = Done {
                        index: work.index,
                        generation: work.generation,
                        reply,
                        recycled,
                    };
                    if tx.send(done).is_err() {
                        break;
                    }
                    worker_waker.wake();
                })
                .map_err(NetError::from)?;
            workers.push(handle);
        }
        drop(done_tx);

        let state = LoopState {
            listener,
            poller,
            slab: Slab::new(),
            scratch: vec![0u8; READ_CHUNK],
            work_tx,
            open_connections: Arc::clone(&open_connections),
        };
        let loop_shutdown = Arc::clone(&shutdown);
        let loop_thread = thread::Builder::new()
            .name(format!("{name}-loop"))
            .spawn(move || run(state, &loop_shutdown, &done_rx))
            .map_err(NetError::from)?;

        Ok(EventLoop {
            addr: local,
            shutdown,
            waker,
            loop_thread: Some(loop_thread),
            workers,
            open_connections,
        })
    }

    fn build_poller(force_fallback: bool) -> Result<(Poller, Arc<Waker>), NetError> {
        #[cfg(target_os = "linux")]
        if !force_fallback {
            if let Ok(epoll) = sys::Epoll::new() {
                let (waker_read, waker_write) = UnixStream::pair().map_err(NetError::from)?;
                waker_read.set_nonblocking(true).map_err(NetError::from)?;
                waker_write.set_nonblocking(true).map_err(NetError::from)?;
                epoll
                    .add(waker_read.as_raw_fd(), WAKER_TOKEN, sys::EPOLLIN)
                    .map_err(NetError::from)?;
                let poller = Poller::Epoll(EpollPoller { epoll, waker_read });
                let waker = Arc::new(Waker {
                    inner: WakerInner::Socket(waker_write),
                });
                return Ok((poller, waker));
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = force_fallback;
        Ok((
            Poller::Fallback,
            Arc::new(Waker {
                inner: WakerInner::Tick,
            }),
        ))
    }

    /// The bound address (with the resolved port when binding port 0).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many connections the loop currently holds open. (Read by the
    /// listener facade's tests; production callers observe connection
    /// counts from the client side.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn open_connections(&self) -> usize {
        self.open_connections.load(Ordering::SeqCst)
    }

    /// Stops the loop and joins every thread. Idempotent.
    pub(crate) fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Everything the loop thread owns. Dropping it (on loop exit) closes
/// every connection, the listener, and the work channel — which is what
/// tells the workers to exit.
struct LoopState {
    listener: TcpListener,
    poller: Poller,
    slab: Slab,
    scratch: Vec<u8>,
    work_tx: mpsc::Sender<Work>,
    open_connections: Arc<AtomicUsize>,
}

fn run(mut state: LoopState, shutdown: &AtomicBool, done_rx: &mpsc::Receiver<Done>) {
    #[cfg(target_os = "linux")]
    let mut events = vec![sys::EpollEvent::zeroed(); 256];
    while !shutdown.load(Ordering::SeqCst) {
        // Absorb every finished handler reply first: completions unblock
        // dispatch slots and un-pause backpressured connections.
        while let Ok(done) = done_rx.try_recv() {
            state.complete(done);
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        #[cfg(target_os = "linux")]
        if matches!(state.poller, Poller::Epoll(_)) {
            let n = state.wait_events(&mut events);
            let io_work = prof::time(Stage::NetIo);
            for event in &events[..n] {
                let (bits, tok) = (event.events, event.data);
                if tok == LISTENER_TOKEN {
                    state.accept_burst();
                } else if tok == WAKER_TOKEN {
                    state.drain_waker();
                } else {
                    let index = (tok & u64::from(u32::MAX)) as usize;
                    let generation = (tok >> 32) as u32;
                    let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                    let readable = bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0;
                    let writable = bits & sys::EPOLLOUT != 0;
                    state.service(index, generation, readable, writable, hangup);
                }
            }
            drop(io_work);
            continue;
        }
        // Portable fallback: block briefly on the completion channel (the
        // tick doubles as the poll timeout), then scan every socket.
        let poll = prof::time(Stage::NetPoll);
        let first = done_rx.recv_timeout(FALLBACK_TICK);
        drop(poll);
        if let Ok(done) = first {
            state.complete(done);
            while let Ok(done) = done_rx.try_recv() {
                state.complete(done);
            }
        }
        let io_work = prof::time(Stage::NetIo);
        state.scan_all();
        drop(io_work);
    }
}

impl LoopState {
    /// Blocks in `epoll_wait` for up to [`POLL_TIMEOUT_MS`].
    #[cfg(target_os = "linux")]
    fn wait_events(&mut self, events: &mut [sys::EpollEvent]) -> usize {
        let Poller::Epoll(ep) = &self.poller else {
            return 0;
        };
        let poll = prof::time(Stage::NetPoll);
        match ep.epoll.wait(events, POLL_TIMEOUT_MS) {
            Ok(n) => n,
            Err(_) => {
                // A failing wait would otherwise spin; back off briefly.
                drop(poll);
                thread::sleep(Duration::from_millis(1));
                0
            }
        }
    }

    /// Drains the waker socketpair so it can signal again.
    fn drain_waker(&mut self) {
        #[cfg(target_os = "linux")]
        if let Poller::Epoll(ep) = &self.poller {
            let mut buf = [0u8; 64];
            while matches!((&ep.waker_read).read(&mut buf), Ok(n) if n > 0) {}
        }
    }

    /// Accepts until the listener would block.
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let (index, generation) = self.slab.insert(stream);
                    self.open_connections.fetch_add(1, Ordering::SeqCst);
                    #[cfg(target_os = "linux")]
                    if let Poller::Epoll(ep) = &self.poller {
                        let conn = self.slab.get_mut(index).expect("just inserted");
                        if ep
                            .epoll
                            .add(
                                conn.stream.as_raw_fd(),
                                token(index, generation),
                                sys::EPOLLIN,
                            )
                            .is_err()
                        {
                            self.close(index);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Handles one readiness event for a connection, generation-checked.
    fn service(
        &mut self,
        index: usize,
        generation: u32,
        readable: bool,
        writable: bool,
        hangup: bool,
    ) {
        {
            let Some(conn) = self.slab.get_mut(index) else {
                return;
            };
            if conn.generation != generation {
                return;
            }
            // A hung-up peer that can make no read progress (reads paused
            // or already closing) would re-fire forever: close it now.
            if hangup && (conn.closing || conn.paused()) {
                self.close(index);
                return;
            }
        }
        if readable {
            self.read_burst(index);
        }
        if readable || writable {
            self.flush_and_settle(index);
        }
    }

    /// Reads until the socket would block, feeding the decoder and
    /// dispatching complete frames. Stops early under backpressure.
    fn read_burst(&mut self, index: usize) {
        loop {
            enum Outcome {
                Close,
                Stop,
                Progress(usize),
            }
            let outcome = {
                let Some(conn) = self.slab.get_mut(index) else {
                    return;
                };
                if conn.closing || conn.paused() {
                    Outcome::Stop
                } else {
                    match conn.stream.read(&mut self.scratch) {
                        Ok(0) => Outcome::Close,
                        Ok(n) => Outcome::Progress(n),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Outcome::Stop,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => Outcome::Close,
                    }
                }
            };
            match outcome {
                Outcome::Close => {
                    self.close(index);
                    return;
                }
                Outcome::Stop => return,
                Outcome::Progress(n) => {
                    self.ingest(index, n);
                    if n < self.scratch.len() {
                        // A short read usually means the socket is drained;
                        // level-triggered polling re-fires if it is not.
                        return;
                    }
                }
            }
        }
    }

    /// Feeds `n` fresh scratch bytes to the connection's decoder, queueing
    /// complete frames and answering protocol violations with an error
    /// frame before flagging the connection for close.
    fn ingest(&mut self, index: usize, n: usize) {
        let mut off = 0;
        while off < n {
            let step = {
                let Some(conn) = self.slab.get_mut(index) else {
                    return;
                };
                match conn.decoder.feed(&self.scratch[off..n]) {
                    Ok((used, frame)) => {
                        if let Some(frame) = frame {
                            conn.pending.push_back(frame);
                        }
                        Ok(used)
                    }
                    Err(error) => Err(error),
                }
            };
            match step {
                Ok(used) => off += used,
                Err(error) => {
                    // After a framing violation the stream cannot be
                    // resynced: answer what can be answered, then close
                    // once queued work and the write buffer drain.
                    let Some(conn) = self.slab.get_mut(index) else {
                        return;
                    };
                    let failure = WireFailure::new(0, ErrorCode::BadRequest, error.to_string());
                    Frame::json(FrameKind::Error, &failure.to_json()).append_to(&mut conn.out);
                    conn.closing = true;
                    break;
                }
            }
        }
        self.dispatch(index);
    }

    /// Hands the next pending frame to the worker pool if the
    /// connection's single in-flight slot is free.
    fn dispatch(&mut self, index: usize) {
        let Some(conn) = self.slab.get_mut(index) else {
            return;
        };
        if conn.inflight {
            return;
        }
        let Some(frame) = conn.pending.pop_front() else {
            return;
        };
        conn.inflight = true;
        let generation = conn.generation;
        let _ = self.work_tx.send(Work {
            index,
            generation,
            frame,
        });
    }

    /// Applies a worker's reply: recycle the request buffer, queue the
    /// encoded reply, free the in-flight slot, dispatch the next frame.
    fn complete(&mut self, done: Done) {
        {
            let Some(conn) = self.slab.get_mut(done.index) else {
                return;
            };
            if conn.generation != done.generation {
                return;
            }
            conn.decoder.recycle(done.recycled);
            done.reply.append_to(&mut conn.out);
            conn.inflight = false;
        }
        self.dispatch(done.index);
        self.flush_and_settle(done.index);
    }

    /// Flushes what the socket accepts, closes drained closing
    /// connections, and reconciles the registered interest mask.
    fn flush_and_settle(&mut self, index: usize) {
        let flushed = {
            let Some(conn) = self.slab.get_mut(index) else {
                return;
            };
            conn.try_flush()
        };
        if !flushed {
            self.close(index);
            return;
        }
        let finished = {
            let Some(conn) = self.slab.get_mut(index) else {
                return;
            };
            conn.closing && !conn.inflight && conn.pending.is_empty() && !conn.has_backlog()
        };
        if finished {
            self.close(index);
            return;
        }
        self.update_interest(index);
    }

    /// Re-registers the connection when its wanted interest mask changed
    /// (read dropped under backpressure, write added for a backlog).
    fn update_interest(&mut self, index: usize) {
        let Some(conn) = self.slab.get_mut(index) else {
            return;
        };
        let want = conn.wanted_interest();
        if want == conn.registered {
            return;
        }
        conn.registered = want;
        #[cfg(target_os = "linux")]
        {
            let mut bits = 0;
            if want & WANT_READ != 0 {
                bits |= sys::EPOLLIN;
            }
            if want & WANT_WRITE != 0 {
                bits |= sys::EPOLLOUT;
            }
            let generation = conn.generation;
            let fd = conn.stream.as_raw_fd();
            if let Poller::Epoll(ep) = &self.poller {
                let _ = ep.epoll.modify(fd, token(index, generation), bits);
            }
        }
    }

    /// Removes and closes one connection.
    fn close(&mut self, index: usize) {
        if let Some(conn) = self.slab.remove(index) {
            #[cfg(target_os = "linux")]
            if let Poller::Epoll(ep) = &self.poller {
                let _ = ep.epoll.delete(conn.stream.as_raw_fd());
            }
            self.open_connections.fetch_sub(1, Ordering::SeqCst);
            drop(conn);
        }
    }

    /// Fallback path: accept, then attempt I/O on every live connection.
    fn scan_all(&mut self) {
        self.accept_burst();
        for index in 0..self.slab.slot_count() {
            if self.slab.get_mut(index).is_none() {
                continue;
            }
            self.read_burst(index);
            self.flush_and_settle(index);
        }
    }
}
