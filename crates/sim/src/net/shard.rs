//! One TCP shard worker: a [`GemmServer`] behind a blocking accept loop.
//!
//! A [`ShardServer`] binds a listener, answers every connection on its own
//! thread, and translates wire frames to [`GemmServer::submit`] calls. It
//! inherits the server's whole serving stack unchanged — per-design worker
//! pools, shape coalescing, admission control, the bounded LRU cell cache
//! — which is what makes a shard "warm": the router keeps sending the same
//! shape keys here, and they keep hitting this shard's cache.
//!
//! The `rasa-shardd` binary is a thin wrapper over this type.

use crate::json::{FromJson, ToJson};
use crate::net::listener::FrameListener;
use crate::net::wire::{
    ErrorCode, Frame, FrameKind, HealthStatus, WireFailure, WireRequest, WireResponse,
};
use crate::net::NetError;
use crate::serve::{GemmRequest, GemmServer, ServeConfig};
use crate::{DesignPoint, SimError};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a [`ShardServer`].
#[derive(Debug, Clone, Default)]
pub struct ShardConfig {
    /// This shard's id, echoed in responses and health frames so clients
    /// can attribute answers and cache churn per shard.
    pub shard_id: u32,
    /// Configuration of the wrapped [`GemmServer`].
    pub serve: ServeConfig,
}

struct ShardShared {
    server: GemmServer,
    shard_id: u32,
    /// Frames answered over the wire (requests, probes, error replies).
    served: AtomicU64,
}

/// A running TCP shard worker. Dropping it (or calling
/// [`shutdown`](ShardServer::shutdown)) stops the accept loop, joins every
/// connection handler and shuts the wrapped server down.
pub struct ShardServer {
    shared: Arc<ShardShared>,
    listener: FrameListener,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("shard_id", &self.shared.shard_id)
            .field("addr", &self.local_addr())
            .finish_non_exhaustive()
    }
}

impl ShardServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving the given designs.
    ///
    /// # Errors
    ///
    /// [`SimError::Net`] when the bind fails, or any error of
    /// [`GemmServer::new`] (e.g. a zero worker count).
    pub fn bind(
        addr: &str,
        config: ShardConfig,
        designs: &[DesignPoint],
    ) -> Result<ShardServer, SimError> {
        let server = GemmServer::new(config.serve, designs)?;
        let shared = Arc::new(ShardShared {
            server,
            shard_id: config.shard_id,
            served: AtomicU64::new(0),
        });
        let handler_shared = Arc::clone(&shared);
        let listener = FrameListener::bind(
            addr,
            &format!("rasa-shard-{}", config.shard_id),
            Arc::new(move |frame| {
                handler_shared.served.fetch_add(1, Ordering::SeqCst);
                answer(frame, &handler_shared)
            }),
        )
        .map_err(SimError::from)?;
        Ok(ShardServer { shared, listener })
    }

    /// The bound address (with the resolved port when binding port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }

    /// This shard's id.
    #[must_use]
    pub fn shard_id(&self) -> u32 {
        self.shared.shard_id
    }

    /// A point-in-time health snapshot, identical to what a health frame
    /// reports over the wire.
    #[must_use]
    pub fn health(&self) -> HealthStatus {
        self.shared.health()
    }

    /// Stops accepting, joins every connection handler and shuts the
    /// wrapped server down (the explicit form of drop).
    pub fn shutdown(mut self) {
        self.listener.stop_and_join();
    }
}

impl ShardShared {
    fn health(&self) -> HealthStatus {
        HealthStatus {
            shard: self.shard_id,
            designs: self.server.designs().to_vec(),
            served: self.served.load(Ordering::SeqCst),
            serve: self.server.stats(),
            cache: self.server.cache_stats(),
        }
    }
}

/// Builds the reply frame for one inbound frame. Never panics: every
/// failure becomes an error frame.
fn answer(frame: &Frame, shared: &Arc<ShardShared>) -> Frame {
    match frame.kind {
        FrameKind::Health => Frame::json(FrameKind::Health, &shared.health().to_json()),
        FrameKind::Request => match decode_request(frame) {
            Ok(request) => answer_request(&request, shared),
            Err(failure) => Frame::json(FrameKind::Error, &failure.to_json()),
        },
        // A shard only ever receives requests and probes.
        FrameKind::Response | FrameKind::Error => Frame::json(
            FrameKind::Error,
            &WireFailure::new(
                0,
                ErrorCode::BadRequest,
                format!("unexpected {:?} frame on a shard", frame.kind),
            )
            .to_json(),
        ),
    }
}

fn decode_request(frame: &Frame) -> Result<WireRequest, WireFailure> {
    let json = frame
        .payload_json()
        .map_err(|e| WireFailure::new(0, ErrorCode::BadRequest, e.to_string()))?;
    WireRequest::from_json(&json)
        .map_err(|e| WireFailure::new(0, ErrorCode::BadRequest, e.to_string()))
}

fn answer_request(request: &WireRequest, shared: &Arc<ShardShared>) -> Frame {
    let job = match request.to_job() {
        Ok(job) => job,
        Err(NetError::Remote { code, message }) => {
            return Frame::json(
                FrameKind::Error,
                &WireFailure::new(request.id, code, message).to_json(),
            );
        }
        Err(other) => {
            return Frame::json(
                FrameKind::Error,
                &WireFailure::new(request.id, ErrorCode::Internal, other.to_string()).to_json(),
            );
        }
    };
    let mut gemm = GemmRequest::new(job.design, job.workload);
    if let Some(kernel) = job.kernel {
        gemm = gemm.with_kernel(kernel);
    }
    let outcome = shared
        .server
        .submit(gemm)
        .and_then(crate::serve::ResponseHandle::wait);
    match outcome {
        Ok(response) => Frame::json(
            FrameKind::Response,
            &WireResponse {
                id: request.id,
                shard: shared.shard_id,
                batch_size: response.batch_size,
                report: (*response.report).clone(),
            }
            .to_json(),
        ),
        Err(SimError::Overloaded { design, capacity }) => Frame::json(
            FrameKind::Error,
            &WireFailure::new(
                request.id,
                ErrorCode::Overloaded,
                format!("queue for design '{design}' is at capacity {capacity}"),
            )
            .to_json(),
        ),
        Err(error) => Frame::json(
            FrameKind::Error,
            &WireFailure::new(request.id, ErrorCode::Simulation, error.to_string()).to_json(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use rasa_workloads::LayerSpec;
    use std::net::TcpStream;

    fn tiny_config() -> ShardConfig {
        ShardConfig {
            shard_id: 7,
            serve: ServeConfig {
                workers_per_design: 1,
                matmul_cap: Some(8),
                ..ServeConfig::default()
            },
        }
    }

    fn request_over(stream: &mut TcpStream, frame: &Frame) -> Frame {
        frame.write_to(stream).unwrap();
        Frame::read_from(stream).unwrap()
    }

    #[test]
    fn shard_answers_requests_health_and_errors() {
        let designs = vec![DesignPoint::baseline()];
        let shard = ShardServer::bind("127.0.0.1:0", tiny_config(), &designs).unwrap();
        let mut conn = TcpStream::connect(shard.local_addr()).unwrap();

        // A real request round-trips with the shard id and echoed id.
        let request = WireRequest::new(42, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let reply = request_over(
            &mut conn,
            &Frame::json(FrameKind::Request, &request.to_json()),
        );
        assert_eq!(reply.kind, FrameKind::Response);
        let response = WireResponse::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(response.id, 42);
        assert_eq!(response.shard, 7);
        assert_eq!(response.report.workload, "DLRM-1");

        // A health probe reports the same snapshot as the local call.
        let reply = request_over(&mut conn, &Frame::health_probe());
        assert_eq!(reply.kind, FrameKind::Health);
        let health = HealthStatus::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(health.shard, 7);
        assert_eq!(health.designs, vec!["BASELINE".to_string()]);
        assert!(health.served >= 1);
        assert_eq!(health.serve.completed, 1);

        // An unknown design is a typed error frame, and the connection
        // survives it.
        let bad = WireRequest::new(43, "NO-SUCH", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let reply = request_over(&mut conn, &Frame::json(FrameKind::Request, &bad.to_json()));
        assert_eq!(reply.kind, FrameKind::Error);
        let failure = WireFailure::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(failure.id, 43);
        assert_eq!(failure.code, ErrorCode::UnknownDesign);

        // A structurally broken request is BadRequest.
        let reply = request_over(
            &mut conn,
            &Frame::json(FrameKind::Request, &JsonValue::parse("{}").unwrap()),
        );
        assert_eq!(reply.kind, FrameKind::Error);
        let failure = WireFailure::from_json(&reply.payload_json().unwrap()).unwrap();
        assert_eq!(failure.code, ErrorCode::BadRequest);

        shard.shutdown();
    }

    #[test]
    fn shard_shutdown_joins_with_open_connections() {
        let designs = vec![DesignPoint::baseline()];
        let shard = ShardServer::bind("127.0.0.1:0", tiny_config(), &designs).unwrap();
        // An idle connection must not wedge shutdown.
        let idle = TcpStream::connect(shard.local_addr()).unwrap();
        shard.shutdown();
        drop(idle);
    }
}
