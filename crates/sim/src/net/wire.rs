//! The length-prefixed framed wire protocol of the networked serving tier.
//!
//! Every message on a connection is one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     body length, big-endian u32 (= 2 + payload length)
//! 4       1     protocol version byte (WIRE_VERSION, currently 0x01)
//! 5       1     frame kind (Request 0x01 / Response 0x02 / Error 0x03 /
//!               Health 0x04)
//! 6       n     payload: a `rasa_sim::json` document, UTF-8
//! ```
//!
//! The length prefix counts the version and kind bytes plus the payload,
//! so the smallest legal frame declares a length of 2 (an empty payload —
//! a health probe). A reader rejects frames whose declared payload exceeds
//! [`MAX_FRAME_LEN`] *before* allocating, so a corrupt or hostile peer
//! cannot make a shard balloon its memory, and rejects any version byte it
//! does not speak with [`NetError::BadVersion`] — the version is the first
//! byte after the length precisely so that future protocol revisions can
//! be detected before any payload parsing. The full byte-level spec with a
//! worked hex example lives in `docs/WIRE_PROTOCOL.md`.

use crate::json::{FromJson, JsonError, JsonValue, ToJson};
use crate::key::CellKey;
use crate::net::NetError;
use crate::prof::{self, Stage};
use crate::serve::ServeStats;
use crate::{CacheStats, DesignPoint, SimJob, SimReport};
use rasa_trace::GemmKernelConfig;
use rasa_workloads::LayerSpec;
use std::io::{IoSlice, Read, Write};

/// The protocol version this build speaks (the frame's fifth byte).
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame's payload in bytes. A declared length above this
/// is rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Bytes of framing before the payload: length prefix + version + kind.
pub const HEADER_LEN: usize = 6;

/// What a frame carries; the sixth byte of the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A client/router → shard simulation request ([`WireRequest`]).
    Request,
    /// A shard → client/router answer ([`WireResponse`]).
    Response,
    /// A failure answer ([`WireFailure`]) — the peer stays connected.
    Error,
    /// A health probe (empty payload) or its reply ([`HealthStatus`]).
    Health,
}

impl FrameKind {
    /// The on-wire byte of this kind.
    #[must_use]
    pub const fn as_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0x01,
            FrameKind::Response => 0x02,
            FrameKind::Error => 0x03,
            FrameKind::Health => 0x04,
        }
    }

    /// Decodes a kind byte.
    #[must_use]
    pub const fn from_byte(byte: u8) -> Option<FrameKind> {
        match byte {
            0x01 => Some(FrameKind::Request),
            0x02 => Some(FrameKind::Response),
            0x03 => Some(FrameKind::Error),
            0x04 => Some(FrameKind::Health),
            _ => None,
        }
    }
}

/// One framed message: a kind plus an opaque JSON payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The payload bytes (a `rasa_sim::json` document; empty for health
    /// probes).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame wrapping a JSON document of the given kind.
    #[must_use]
    pub fn json(kind: FrameKind, document: &JsonValue) -> Frame {
        Frame::json_pooled(kind, document, Vec::new())
    }

    /// [`json`](Self::json) serializing into a recycled payload buffer
    /// (its contents are discarded, its capacity is reused). Connection
    /// loops pass the previous frame's payload back in via
    /// [`into_payload`](Self::into_payload), so steady-state serving
    /// allocates no fresh frame buffers.
    #[must_use]
    pub fn json_pooled(kind: FrameKind, document: &JsonValue, recycled: Vec<u8>) -> Frame {
        let serialize = prof::time(Stage::JsonSerialize);
        // Round-trip through String to reuse the recycled capacity; the
        // payload was produced by this serializer, so it is valid UTF-8.
        let mut text = String::from_utf8(recycled).unwrap_or_default();
        text.clear();
        document.write_compact(&mut text);
        drop(serialize);
        Frame {
            kind,
            payload: text.into_bytes(),
        }
    }

    /// Consumes the frame, handing its payload buffer back for reuse.
    #[must_use]
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }

    /// An empty-payload health probe.
    #[must_use]
    pub fn health_probe() -> Frame {
        Frame {
            kind: FrameKind::Health,
            payload: Vec::new(),
        }
    }

    /// Serializes the frame: 4-byte big-endian length, version byte, kind
    /// byte, payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let body_len = 2 + self.payload.len();
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(
            &u32::try_from(body_len)
                .expect("frame fits in u32")
                .to_be_bytes(),
        );
        out.push(WIRE_VERSION);
        out.push(self.kind.as_byte());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one frame from the start of `bytes`, returning the frame
    /// and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`NetError::Frame`] for a truncated buffer, an impossible declared
    /// length or an unknown kind byte; [`NetError::FrameTooLarge`] when
    /// the declared payload exceeds [`MAX_FRAME_LEN`];
    /// [`NetError::BadVersion`] for any version byte other than
    /// [`WIRE_VERSION`].
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), NetError> {
        if bytes.len() < 4 {
            return Err(NetError::Frame {
                reason: format!("truncated length prefix: {} of 4 bytes", bytes.len()),
            });
        }
        let body_len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        Frame::check_body_len(body_len)?;
        let total = 4 + body_len;
        if bytes.len() < total {
            return Err(NetError::Frame {
                reason: format!("truncated frame: {} of {} bytes", bytes.len(), total),
            });
        }
        let (version, kind) = (bytes[4], bytes[5]);
        Frame::check_version(version)?;
        let kind = FrameKind::from_byte(kind).ok_or_else(|| NetError::Frame {
            reason: format!("unknown frame kind byte 0x{kind:02x}"),
        })?;
        Ok((
            Frame {
                kind,
                payload: bytes[HEADER_LEN..total].to_vec(),
            },
            total,
        ))
    }

    /// Reads exactly one frame from a stream.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the stream ends or fails mid-frame, plus the
    /// same validation errors as [`decode`](Self::decode).
    pub fn read_from(reader: &mut impl Read) -> Result<Frame, NetError> {
        Frame::read_from_pooled(reader, &mut Vec::new())
    }

    /// [`read_from`](Self::read_from) decoding into a recycled payload
    /// buffer sized by the length prefix (contents discarded, capacity
    /// reused). On success the buffer moves into the returned frame (take
    /// it back with [`into_payload`](Self::into_payload)); on error —
    /// including the idle-poll timeouts connection loops ride on — the
    /// buffer stays with the caller, so pooling survives errors. The
    /// [`MAX_FRAME_LEN`] guard still runs *before* the buffer grows.
    ///
    /// # Errors
    ///
    /// Same as [`read_from`](Self::read_from).
    pub fn read_from_pooled(
        reader: &mut impl Read,
        recycled: &mut Vec<u8>,
    ) -> Result<Frame, NetError> {
        // The 6 framing bytes are read in one exact read, then the payload
        // lands directly in the pooled buffer — no post-hoc drain shuffle.
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header).map_err(NetError::from)?;
        let decode = prof::time(Stage::FrameDecode);
        let body_len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
        Frame::check_body_len(body_len)?;
        Frame::check_version(header[4])?;
        let kind = FrameKind::from_byte(header[5]).ok_or_else(|| NetError::Frame {
            reason: format!("unknown frame kind byte 0x{:02x}", header[5]),
        })?;
        recycled.clear();
        recycled.resize(body_len - 2, 0);
        reader.read_exact(recycled).map_err(NetError::from)?;
        drop(decode);
        Ok(Frame {
            kind,
            payload: std::mem::take(recycled),
        })
    }

    /// Writes the frame to a stream and flushes it. The 6 framing bytes
    /// and the payload go out in a single vectored write — no
    /// concatenated copy of the frame is ever built.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on any transport failure.
    pub fn write_to(&self, writer: &mut impl Write) -> Result<(), NetError> {
        let encode = prof::time(Stage::FrameEncode);
        let body_len = 2 + self.payload.len();
        let len = u32::try_from(body_len)
            .expect("frame fits in u32")
            .to_be_bytes();
        let header = [
            len[0],
            len[1],
            len[2],
            len[3],
            WIRE_VERSION,
            self.kind.as_byte(),
        ];
        write_all_vectored(writer, &header, &self.payload).map_err(NetError::from)?;
        writer.flush().map_err(NetError::from)?;
        drop(encode);
        Ok(())
    }

    /// Parses the payload as a JSON document.
    ///
    /// # Errors
    ///
    /// [`NetError::Frame`] when the payload is not UTF-8 JSON.
    pub fn payload_json(&self) -> Result<JsonValue, NetError> {
        let text = std::str::from_utf8(&self.payload).map_err(|_| NetError::Frame {
            reason: "frame payload is not UTF-8".to_string(),
        })?;
        JsonValue::parse(text).map_err(|e| NetError::Frame {
            reason: format!("frame payload is not JSON: {e}"),
        })
    }

    /// Appends the frame's encoded bytes — 4-byte big-endian length,
    /// version byte, kind byte, payload — to `out` without flushing
    /// anything. This is the event loop's encoder: replies accumulate in
    /// a per-connection write buffer and drain as the socket reports
    /// writability, so a slow reader never blocks the loop.
    pub fn append_to(&self, out: &mut Vec<u8>) {
        let encode = prof::time(Stage::FrameEncode);
        let body_len = 2 + self.payload.len();
        out.extend_from_slice(
            &u32::try_from(body_len)
                .expect("frame fits in u32")
                .to_be_bytes(),
        );
        out.push(WIRE_VERSION);
        out.push(self.kind.as_byte());
        out.extend_from_slice(&self.payload);
        drop(encode);
    }

    fn check_body_len(body_len: usize) -> Result<(), NetError> {
        if body_len < 2 {
            return Err(NetError::Frame {
                reason: format!("declared body length {body_len} is below the 2-byte header"),
            });
        }
        if body_len - 2 > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge {
                len: body_len - 2,
                max: MAX_FRAME_LEN,
            });
        }
        Ok(())
    }

    fn check_version(version: u8) -> Result<(), NetError> {
        if version == WIRE_VERSION {
            Ok(())
        } else {
            Err(NetError::BadVersion { got: version })
        }
    }
}

/// Writes `header` then `payload` completely, preferring a single
/// vectored write per iteration so the kernel sees one contiguous frame
/// without us building a concatenated copy.
fn write_all_vectored(
    writer: &mut impl Write,
    header: &[u8],
    payload: &[u8],
) -> std::io::Result<()> {
    let mut header_done = 0;
    let mut payload_done = 0;
    while header_done < header.len() || payload_done < payload.len() {
        let bufs = [
            IoSlice::new(&header[header_done..]),
            IoSlice::new(&payload[payload_done..]),
        ];
        let mut wrote = writer.write_vectored(&bufs)?;
        if wrote == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        let header_left = header.len() - header_done;
        let from_header = wrote.min(header_left);
        header_done += from_header;
        wrote -= from_header;
        payload_done += wrote.min(payload.len() - payload_done);
    }
    Ok(())
}

/// An incremental, resumable frame decoder: the state machine form of
/// [`Frame::read_from_pooled`].
///
/// A connection owns one decoder for its whole lifetime and feeds it
/// whatever bytes the transport produces — a readiness event's read burst,
/// or a blocking read that may time out mid-frame. Partial header or
/// payload bytes **survive across calls**, which eliminates the classic
/// blocking-reader desync by construction: a poll timeout that lands
/// after part of a length prefix has been consumed resumes exactly where
/// it stopped instead of silently discarding the prefix and re-parsing
/// payload bytes as a header.
///
/// The decoder enforces the same validation as the one-shot parser — the
/// [`MAX_FRAME_LEN`] guard runs when the 6-byte header completes, *before*
/// any payload allocation — and produces byte-identical frames
/// (`tests/net_wire.rs` proves parity under random split points).
///
/// Payload buffers are pooled: hand a completed frame's allocation back
/// with [`recycle`](Self::recycle) and the next payload decodes into it.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// The 6 framing bytes, accumulated across calls.
    header: [u8; HEADER_LEN],
    /// How many header bytes have arrived (0..=[`HEADER_LEN`]).
    header_filled: usize,
    /// The validated kind once the header is complete; `None` while the
    /// header is still being accumulated.
    kind: Option<FrameKind>,
    /// The payload in flight, pre-sized to the declared length.
    payload: Vec<u8>,
    /// How many payload bytes have arrived.
    payload_filled: usize,
    /// A recycled buffer awaiting the next frame's payload.
    spare: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder with no buffered bytes.
    #[must_use]
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Whether the decoder is holding a partially received frame. A clean
    /// connection close is only clean when this is `false`.
    #[must_use]
    pub fn is_mid_frame(&self) -> bool {
        self.header_filled > 0 || self.kind.is_some()
    }

    /// Hands a payload buffer back for reuse (contents discarded, capacity
    /// kept). Connection loops pass each dispatched frame's allocation
    /// back via [`Frame::into_payload`] so steady-state serving decodes
    /// every frame into the same buffer.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() > self.spare.capacity() {
            buf.clear();
            self.spare = buf;
        }
    }

    /// Consumes as many of `bytes` as one frame needs, returning how many
    /// were consumed and the frame if it completed. Callers loop while
    /// consumed < `bytes.len()` to drain a burst holding several frames.
    ///
    /// # Errors
    ///
    /// The same validation errors as [`Frame::decode`], raised as soon as
    /// the header completes. After an error the stream cannot be resynced
    /// — the connection must be closed.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(usize, Option<Frame>), NetError> {
        let decode = prof::time(Stage::FrameDecode);
        let mut consumed = 0;
        if self.kind.is_none() {
            let take = (HEADER_LEN - self.header_filled).min(bytes.len());
            self.header[self.header_filled..self.header_filled + take]
                .copy_from_slice(&bytes[..take]);
            self.header_filled += take;
            consumed += take;
            if self.header_filled < HEADER_LEN {
                return Ok((consumed, None));
            }
            self.finish_header()?;
        }
        let take = (self.payload.len() - self.payload_filled).min(bytes.len() - consumed);
        self.payload[self.payload_filled..self.payload_filled + take]
            .copy_from_slice(&bytes[consumed..consumed + take]);
        self.payload_filled += take;
        consumed += take;
        drop(decode);
        if self.payload_filled == self.payload.len() {
            return Ok((consumed, Some(self.complete())));
        }
        Ok((consumed, None))
    }

    /// One resumable read step for blocking transports: issues a single
    /// `read` into whichever gap (header or payload) is open. Unlike
    /// [`Frame::read_from_pooled`], a timeout mid-frame
    /// (`WouldBlock`/`TimedOut`) leaves all partial bytes in place, so the
    /// caller can poll a shutdown flag and resume exactly where the stream
    /// stopped.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on transport failure or timeout (state is
    /// preserved for timeouts; an `UnexpectedEof` means the peer closed —
    /// mid-frame if [`is_mid_frame`](Self::is_mid_frame) was true), plus
    /// the same validation errors as [`Frame::decode`].
    pub fn read_step(&mut self, reader: &mut impl Read) -> Result<Option<Frame>, NetError> {
        if self.kind.is_none() {
            let n = reader
                .read(&mut self.header[self.header_filled..])
                .map_err(NetError::from)?;
            if n == 0 {
                return Err(FrameDecoder::eof());
            }
            self.header_filled += n;
            if self.header_filled < HEADER_LEN {
                return Ok(None);
            }
            let decode = prof::time(Stage::FrameDecode);
            self.finish_header()?;
            drop(decode);
            if self.payload.is_empty() {
                return Ok(Some(self.complete()));
            }
            return Ok(None);
        }
        let n = reader
            .read(&mut self.payload[self.payload_filled..])
            .map_err(NetError::from)?;
        if n == 0 {
            return Err(FrameDecoder::eof());
        }
        self.payload_filled += n;
        if self.payload_filled == self.payload.len() {
            return Ok(Some(self.complete()));
        }
        Ok(None)
    }

    /// Validates the completed header and prepares the payload buffer
    /// (recycled capacity when available). Runs the [`MAX_FRAME_LEN`]
    /// guard before any allocation.
    fn finish_header(&mut self) -> Result<(), NetError> {
        let body_len = u32::from_be_bytes([
            self.header[0],
            self.header[1],
            self.header[2],
            self.header[3],
        ]) as usize;
        Frame::check_body_len(body_len)?;
        Frame::check_version(self.header[4])?;
        let kind = FrameKind::from_byte(self.header[5]).ok_or_else(|| NetError::Frame {
            reason: format!("unknown frame kind byte 0x{:02x}", self.header[5]),
        })?;
        self.kind = Some(kind);
        let mut buf = std::mem::take(&mut self.spare);
        buf.clear();
        buf.resize(body_len - 2, 0);
        self.payload = buf;
        self.payload_filled = 0;
        Ok(())
    }

    /// Emits the completed frame and resets for the next one.
    fn complete(&mut self) -> Frame {
        let kind = self.kind.take().expect("complete requires a full header");
        self.header_filled = 0;
        self.payload_filled = 0;
        Frame {
            kind,
            payload: std::mem::take(&mut self.payload),
        }
    }

    fn eof() -> NetError {
        NetError::Io {
            kind: std::io::ErrorKind::UnexpectedEof,
            reason: "peer closed the connection".to_string(),
        }
    }
}

/// Machine-readable failure categories carried by error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request payload did not decode.
    BadRequest,
    /// The request named a design the shard does not serve.
    UnknownDesign,
    /// Admission control turned the request away; retrying later is safe.
    Overloaded,
    /// The simulation itself failed.
    Simulation,
    /// No shard is reachable for the request's shape.
    Unavailable,
    /// Any other server-side failure.
    Internal,
}

impl ErrorCode {
    /// The stable string carried on the wire.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownDesign => "unknown_design",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Simulation => "simulation",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
        }
    }

    /// Decodes the wire string; unknown codes map to `Internal` so that a
    /// newer peer's codes degrade gracefully instead of failing decode.
    #[must_use]
    pub fn from_str_lossy(s: &str) -> ErrorCode {
        match s {
            "bad_request" => ErrorCode::BadRequest,
            "unknown_design" => ErrorCode::UnknownDesign,
            "overloaded" => ErrorCode::Overloaded,
            "simulation" => ErrorCode::Simulation,
            "unavailable" => ErrorCode::Unavailable,
            _ => ErrorCode::Internal,
        }
    }

    /// Whether a client may transparently retry after this code.
    #[must_use]
    pub const fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::Unavailable)
    }
}

/// A simulation request as shipped over the wire.
///
/// Designs travel **by name** (resolved against the eight named paper
/// designs via [`DesignPoint::by_name`] on the shard); the workload and
/// the optional kernel override travel structurally. `id` is echoed back
/// in the response so a client can detect protocol desync.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the answer.
    pub id: u64,
    /// Name of one of the paper design points (e.g. `RASA-DMDB-WLS`).
    pub design: String,
    /// The workload to simulate.
    pub workload: LayerSpec,
    /// Kernel override (`None` = the shard's default kernel and cap).
    pub kernel: Option<GemmKernelConfig>,
}

impl WireRequest {
    /// A request for `workload` on the design named `design`.
    #[must_use]
    pub fn new(id: u64, design: impl Into<String>, workload: LayerSpec) -> Self {
        WireRequest {
            id,
            design: design.into(),
            workload,
            kernel: None,
        }
    }

    /// Overrides the kernel configuration.
    #[must_use]
    pub fn with_kernel(mut self, kernel: GemmKernelConfig) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Resolves the named design and builds the corresponding [`SimJob`].
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`ErrorCode::UnknownDesign`] when the
    /// name matches none of the paper designs.
    pub fn to_job(&self) -> Result<SimJob, NetError> {
        let design = DesignPoint::by_name(&self.design).ok_or_else(|| NetError::Remote {
            code: ErrorCode::UnknownDesign,
            message: format!("'{}' is not a paper design point", self.design),
        })?;
        let mut job = SimJob::new(design, self.workload.clone());
        if let Some(kernel) = self.kernel {
            job = job.with_kernel(kernel);
        }
        Ok(job)
    }

    /// The interned semantic shape key the router consistent-hashes on —
    /// identical to the cell key the shard's runner memoizes under (see
    /// [`SimJob::cell_key`]), so a shape always lands on the shard whose
    /// LRU cell cache is warm for it. The key carries its precomputed
    /// 64-bit ring point ([`CellKey::hash64`]), so routing never re-hashes
    /// the rendered text.
    ///
    /// # Errors
    ///
    /// Same as [`to_job`](Self::to_job).
    pub fn shape_key(&self, default_matmul_cap: Option<usize>) -> Result<CellKey, NetError> {
        Ok(self.to_job()?.cell_key(default_matmul_cap))
    }
}

impl ToJson for WireRequest {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("id".into(), JsonValue::number_from_u64(self.id)),
            ("design".into(), JsonValue::string(&self.design)),
            ("workload".into(), self.workload.to_json()),
            (
                "kernel".into(),
                self.kernel
                    .as_ref()
                    .map_or(JsonValue::Null, ToJson::to_json),
            ),
        ])
    }
}

impl FromJson for WireRequest {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let kernel = match value.get("kernel") {
            None | Some(JsonValue::Null) => None,
            Some(node) => Some(GemmKernelConfig::from_json(node)?),
        };
        Ok(WireRequest {
            id: value
                .get("id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JsonError::decode("field 'id' is not a u64"))?,
            design: value
                .get("design")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| JsonError::decode("field 'design' is not a string"))?
                .to_string(),
            workload: LayerSpec::from_json(
                value
                    .get("workload")
                    .ok_or_else(|| JsonError::decode("missing field 'workload'"))?,
            )?,
            kernel,
        })
    }
}

/// A successful answer to a [`WireRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// The request's correlation id, echoed back.
    pub id: u64,
    /// Which shard simulated (or recalled) the cell.
    pub shard: u32,
    /// How many coalesced requests shared the simulation on the shard.
    pub batch_size: usize,
    /// The simulation result.
    pub report: SimReport,
}

impl ToJson for WireResponse {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("id".into(), JsonValue::number_from_u64(self.id)),
            (
                "shard".into(),
                JsonValue::number_from_u64(self.shard.into()),
            ),
            (
                "batch_size".into(),
                JsonValue::number_from_usize(self.batch_size),
            ),
            ("report".into(), self.report.to_json()),
        ])
    }
}

impl FromJson for WireResponse {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let shard_u64 = value
            .get("shard")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| JsonError::decode("field 'shard' is not a u64"))?;
        Ok(WireResponse {
            id: value
                .get("id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JsonError::decode("field 'id' is not a u64"))?,
            shard: u32::try_from(shard_u64)
                .map_err(|_| JsonError::decode("field 'shard' exceeds u32"))?,
            batch_size: value
                .get("batch_size")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| JsonError::decode("field 'batch_size' is not a usize"))?,
            report: SimReport::from_json(
                value
                    .get("report")
                    .ok_or_else(|| JsonError::decode("missing field 'report'"))?,
            )?,
        })
    }
}

/// The payload of an error frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFailure {
    /// The failed request's correlation id (0 when the request could not
    /// even be decoded).
    pub id: u64,
    /// Machine-readable failure category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl WireFailure {
    /// Builds a failure answer.
    #[must_use]
    pub fn new(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        WireFailure {
            id,
            code,
            message: message.into(),
        }
    }
}

impl ToJson for WireFailure {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("id".into(), JsonValue::number_from_u64(self.id)),
            ("code".into(), JsonValue::string(self.code.as_str())),
            ("message".into(), JsonValue::string(&self.message)),
        ])
    }
}

impl FromJson for WireFailure {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(WireFailure {
            id: value
                .get("id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JsonError::decode("field 'id' is not a u64"))?,
            code: ErrorCode::from_str_lossy(
                value
                    .get("code")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| JsonError::decode("field 'code' is not a string"))?,
            ),
            message: value
                .get("message")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| JsonError::decode("field 'message' is not a string"))?
                .to_string(),
        })
    }
}

/// The payload of a health reply: one shard's identity and counters (the
/// router aggregates these across shards for its own health answers).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthStatus {
    /// The shard's id (routers report `u32::MAX`).
    pub shard: u32,
    /// The designs the shard serves, in pool order.
    pub designs: Vec<String>,
    /// Requests answered over the wire since start.
    pub served: u64,
    /// The wrapped server's serving counters.
    pub serve: ServeStats,
    /// The wrapped server's cell-cache counters (hits, misses, evictions —
    /// the per-shard cache-churn numbers the distributed soak reports).
    pub cache: CacheStats,
}

impl ToJson for HealthStatus {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "shard".into(),
                JsonValue::number_from_u64(self.shard.into()),
            ),
            (
                "designs".into(),
                JsonValue::Array(self.designs.iter().map(JsonValue::string).collect()),
            ),
            ("served".into(), JsonValue::number_from_u64(self.served)),
            ("serve".into(), self.serve.to_json()),
            ("cache".into(), self.cache.to_json()),
        ])
    }
}

impl FromJson for HealthStatus {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let shard_u64 = value
            .get("shard")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| JsonError::decode("field 'shard' is not a u64"))?;
        let designs = value
            .get("designs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| JsonError::decode("field 'designs' is not an array"))?
            .iter()
            .map(|d| {
                d.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| JsonError::decode("design entry is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HealthStatus {
            shard: u32::try_from(shard_u64)
                .map_err(|_| JsonError::decode("field 'shard' exceeds u32"))?,
            designs,
            served: value
                .get("served")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JsonError::decode("field 'served' is not a u64"))?,
            serve: ServeStats::from_json(
                value
                    .get("serve")
                    .ok_or_else(|| JsonError::decode("missing field 'serve'"))?,
            )?,
            cache: CacheStats::from_json(
                value
                    .get("cache")
                    .ok_or_else(|| JsonError::decode("missing field 'cache'"))?,
            )?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_numeric::ConvShape;

    #[test]
    fn frame_encode_decode_round_trips() {
        for (kind, payload) in [
            (FrameKind::Request, b"{\"id\":1}".to_vec()),
            (FrameKind::Response, vec![0xceu8, 0xbb]), // UTF-8 "λ"
            (FrameKind::Error, Vec::new()),
            (FrameKind::Health, Vec::new()),
        ] {
            let frame = Frame { kind, payload };
            let bytes = frame.encode();
            let (decoded, consumed) = Frame::decode(&bytes).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn frame_layout_is_the_documented_bytes() {
        let frame = Frame {
            kind: FrameKind::Health,
            payload: b"ok".to_vec(),
        };
        assert_eq!(frame.encode(), vec![0, 0, 0, 4, 0x01, 0x04, b'o', b'k']);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let bytes = Frame::health_probe().encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, NetError::Frame { .. }), "cut at {cut}: {err}");
        }
        // Stream form: the reader must also fail cleanly on a short read.
        for cut in 0..bytes.len() {
            let mut reader = &bytes[..cut];
            let err = Frame::read_from(&mut reader).unwrap_err();
            assert!(matches!(err, NetError::Io { .. }), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn undersized_and_oversized_lengths_are_rejected() {
        // Declared body length below the 2-byte version+kind header.
        for body_len in [0u32, 1] {
            let mut bytes = body_len.to_be_bytes().to_vec();
            bytes.extend_from_slice(&[WIRE_VERSION, 0x04]);
            assert!(matches!(Frame::decode(&bytes), Err(NetError::Frame { .. })));
        }
        // Declared payload above MAX_FRAME_LEN — rejected before allocation.
        let huge = u32::try_from(MAX_FRAME_LEN + 3).unwrap();
        let mut bytes = huge.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[WIRE_VERSION, 0x04]);
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { .. }), "{err}");
        let mut reader = bytes.as_slice();
        let err = Frame::read_from(&mut reader).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { .. }), "{err}");
    }

    #[test]
    fn bad_version_and_bad_kind_are_rejected() {
        let mut bytes = Frame::health_probe().encode();
        bytes[4] = 2; // future version
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(matches!(err, NetError::BadVersion { got: 2 }), "{err}");

        let mut bytes = Frame::health_probe().encode();
        bytes[5] = 0x7f; // unknown kind
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(matches!(err, NetError::Frame { .. }), "{err}");
        assert!(err.to_string().contains("0x7f"));
    }

    #[test]
    fn frames_round_trip_through_streams() {
        let request = WireRequest::new(7, "BASELINE", LayerSpec::fc("DLRM-1", 512, 1024, 1024));
        let frame = Frame::json(FrameKind::Request, &request.to_json());
        let mut buffer = Vec::new();
        frame.write_to(&mut buffer).unwrap();
        let mut reader = buffer.as_slice();
        let back = Frame::read_from(&mut reader).unwrap();
        assert_eq!(back, frame);
        let decoded = WireRequest::from_json(&back.payload_json().unwrap()).unwrap();
        assert_eq!(decoded, request);
    }

    #[test]
    fn wire_request_json_round_trips_fc_conv_and_kernel() {
        let fc = WireRequest::new(1, "RASA-DMDB-WLS", LayerSpec::fc("BERT-1", 256, 768, 3072));
        let conv = WireRequest::new(
            2,
            "BASELINE",
            LayerSpec::conv("ResNet50-2", ConvShape::new(32, 64, 56, 56, 64, 3, 3, 1, 1)),
        )
        .with_kernel(GemmKernelConfig::amx_like().with_max_matmuls(64));
        for request in [fc, conv] {
            let text = request.to_json().to_string_compact();
            let back = WireRequest::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, request);
            assert_eq!(
                back.workload.gemm_shape(),
                request.workload.gemm_shape(),
                "lowered shape must survive the wire"
            );
        }
    }

    #[test]
    fn request_resolves_designs_by_name_only() {
        let ok = WireRequest::new(1, "RASA-DB-WLS", LayerSpec::fc("DLRM-1", 512, 1024, 1024));
        assert_eq!(ok.to_job().unwrap().design.name(), "RASA-DB-WLS");
        let bad = WireRequest::new(1, "NOT-A-DESIGN", LayerSpec::fc("DLRM-1", 512, 1024, 1024));
        let err = bad.to_job().unwrap_err();
        assert!(matches!(
            err,
            NetError::Remote {
                code: ErrorCode::UnknownDesign,
                ..
            }
        ));
    }

    #[test]
    fn shape_key_matches_the_runners_cell_key() {
        let request = WireRequest::new(9, "BASELINE", LayerSpec::fc("DLRM-1", 512, 1024, 1024));
        let runner = crate::ExperimentRunner::builder()
            .with_matmul_cap(Some(64))
            .build()
            .unwrap();
        let key = request.shape_key(Some(64)).unwrap();
        assert_eq!(key, runner.job_key(&request.to_job().unwrap()));
        // Re-batched layers at the same lowered shape share the key — the
        // property shard-warm routing relies on.
        let rebatched = WireRequest::new(
            10,
            "BASELINE",
            LayerSpec::fc("DLRM-1", 512, 1024, 1024).with_batch(512),
        );
        assert_eq!(rebatched.shape_key(Some(64)).unwrap(), key);
    }

    #[test]
    fn decoder_matches_one_shot_parser_byte_by_byte() {
        let request = WireRequest::new(7, "BASELINE", LayerSpec::fc("DLRM-1", 512, 1024, 1024));
        let frames = [
            Frame::json(FrameKind::Request, &request.to_json()),
            Frame::health_probe(),
            Frame {
                kind: FrameKind::Response,
                payload: b"{\"id\":7}".to_vec(),
            },
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            frame.append_to(&mut stream);
        }
        // Feed the concatenated stream one byte at a time; every frame
        // must come out identical to the one-shot parser's result.
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for byte in &stream {
            let (consumed, frame) = decoder.feed(std::slice::from_ref(byte)).unwrap();
            assert_eq!(consumed, 1);
            if let Some(frame) = frame {
                decoded.push(frame);
            }
        }
        assert!(!decoder.is_mid_frame());
        assert_eq!(decoded.len(), frames.len());
        let mut offset = 0;
        for (incremental, expected) in decoded.iter().zip(&frames) {
            let (one_shot, consumed) = Frame::decode(&stream[offset..]).unwrap();
            offset += consumed;
            assert_eq!(incremental, &one_shot);
            assert_eq!(incremental, expected);
        }
    }

    #[test]
    fn decoder_drains_multi_frame_bursts_and_recycles_buffers() {
        let mut stream = Vec::new();
        let frames = [
            Frame {
                kind: FrameKind::Request,
                payload: b"{\"id\":1}".to_vec(),
            },
            Frame {
                kind: FrameKind::Request,
                payload: b"{\"id\":2}".to_vec(),
            },
        ];
        for frame in &frames {
            frame.append_to(&mut stream);
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        // One burst holding both frames: the caller's drain loop.
        while offset < stream.len() {
            let (consumed, frame) = decoder.feed(&stream[offset..]).unwrap();
            offset += consumed;
            if let Some(frame) = frame {
                // Recycle each payload as the connection loop would.
                decoded.push(frame.kind);
                decoder.recycle(frame.into_payload());
            }
        }
        assert_eq!(decoded, vec![FrameKind::Request, FrameKind::Request]);
        // The recycled capacity must actually be reused: decode another
        // frame and check its payload buffer carries the pooled capacity.
        let mut tail = Vec::new();
        frames[0].append_to(&mut tail);
        let (_, frame) = decoder.feed(&tail).unwrap();
        assert!(frame.unwrap().into_payload().capacity() >= frames[0].payload.len());
    }

    #[test]
    fn decoder_rejects_bad_headers_before_any_payload() {
        // Oversized declared payload: rejected at header completion.
        let huge = u32::try_from(MAX_FRAME_LEN + 3).unwrap();
        let mut bytes = huge.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[WIRE_VERSION, 0x04]);
        let err = FrameDecoder::new().feed(&bytes).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { .. }), "{err}");

        // Future version byte.
        let mut bytes = Frame::health_probe().encode();
        bytes[4] = 9;
        let err = FrameDecoder::new().feed(&bytes).unwrap_err();
        assert!(matches!(err, NetError::BadVersion { got: 9 }), "{err}");

        // Unknown kind byte.
        let mut bytes = Frame::health_probe().encode();
        bytes[5] = 0x7f;
        let err = FrameDecoder::new().feed(&bytes).unwrap_err();
        assert!(matches!(err, NetError::Frame { .. }), "{err}");
    }

    #[test]
    fn decoder_read_step_survives_timeouts_mid_frame() {
        use std::io::Read;

        /// A reader yielding one byte per call, with a `WouldBlock`
        /// timeout before every byte — the slow-writer-straddling-a-poll
        /// shape that desynced the old blocking reader.
        struct OneByteWithTimeouts {
            bytes: Vec<u8>,
            at: usize,
            timeout_next: bool,
        }
        impl Read for OneByteWithTimeouts {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.timeout_next {
                    self.timeout_next = false;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.timeout_next = true;
                if self.at == self.bytes.len() {
                    return Ok(0);
                }
                buf[0] = self.bytes[self.at];
                self.at += 1;
                Ok(1)
            }
        }

        let frame = Frame {
            kind: FrameKind::Request,
            payload: b"{\"id\":9}".to_vec(),
        };
        let mut reader = OneByteWithTimeouts {
            bytes: frame.encode(),
            at: 0,
            timeout_next: true,
        };
        let mut decoder = FrameDecoder::new();
        let mut timeouts = 0;
        let decoded = loop {
            match decoder.read_step(&mut reader) {
                Ok(Some(frame)) => break frame,
                Ok(None) => {}
                Err(NetError::Io {
                    kind: std::io::ErrorKind::WouldBlock,
                    ..
                }) => {
                    timeouts += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        };
        assert_eq!(decoded, frame);
        assert!(timeouts >= decoded.encode().len() as u64);
        assert!(!decoder.is_mid_frame());
        // EOF after the frame is a clean close.
        reader.timeout_next = false;
        let err = decoder.read_step(&mut reader).unwrap_err();
        assert!(matches!(
            err,
            NetError::Io {
                kind: std::io::ErrorKind::UnexpectedEof,
                ..
            }
        ));
    }

    #[test]
    fn failure_and_health_payloads_round_trip() {
        let failure = WireFailure::new(3, ErrorCode::Overloaded, "queue full");
        let text = failure.to_json().to_string_compact();
        let back = WireFailure::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, failure);
        assert!(failure.code.is_retryable());
        assert!(!ErrorCode::Simulation.is_retryable());
        assert_eq!(ErrorCode::from_str_lossy("warp_drive"), ErrorCode::Internal);

        let health = HealthStatus {
            shard: 2,
            designs: vec!["BASELINE".into(), "RASA-DMDB-WLS".into()],
            served: 41,
            serve: ServeStats {
                submitted: 41,
                completed: 41,
                batches: 40,
                ..ServeStats::default()
            },
            cache: CacheStats {
                hits: 30,
                misses: 11,
                entries: 11,
                evictions: 0,
                capacity: 64,
            },
        };
        let text = health.to_json().to_string_compact();
        let back = HealthStatus::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, health);
    }
}
