//! Hand-rolled Linux `epoll` bindings for the readiness event loop.
//!
//! The crate takes no dependencies, so the bindings are direct
//! `extern "C"` declarations against the C library that is already linked
//! into every Rust binary — no `libc` crate, no new vendored stand-in.
//! Only the four calls the event loop needs are declared
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `close`), wrapped in a
//! safe [`Epoll`] type that owns the instance fd.
//!
//! Everything here is Linux-only; other platforms use the portable
//! level-triggered poll fallback in `net::event_loop`, which needs no
//! syscall bindings at all.

#![cfg(target_os = "linux")]

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;

/// Readiness flag: the fd has bytes to read (or a pending accept).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Readiness flag: the fd can accept writes without blocking.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Readiness flag: the fd is in an error state.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Readiness flag: the peer hung up.
pub(crate) const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// The kernel's `struct epoll_event`. On x86 the kernel ABI declares it
/// packed (no padding between `events` and `data`); other architectures
/// use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// An empty slot for the wait buffer.
    pub(crate) const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// A safe owner of one epoll instance.
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes a flag word and returns an fd or -1;
        // no pointers are involved.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` with the given interest mask; `token` comes back in
    /// every event for it.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest mask of an already registered `fd`.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Safe to call on an fd that is about to close.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels required a non-null event for DEL; passing one
        // keeps the call portable across anything still running.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `event` outlives the call and matches the kernel ABI
        // layout declared above; the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses, filling `events` from the front. Returns how many events
    /// arrived; 0 on timeout or interruption.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: `events` is a valid writable buffer of `max` entries for
        // the duration of the call.
        let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(usize::try_from(rc).expect("epoll_wait count fits usize"))
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is a live epoll instance owned by this value.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readable_and_writable_sockets() {
        let epoll = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        epoll.add(b.as_raw_fd(), 42, EPOLLIN).unwrap();

        // Nothing written yet: a short wait times out.
        let mut events = [EpollEvent::zeroed(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (token, bits) = (events[0].data, events[0].events);
        assert_eq!(token, 42);
        assert_ne!(bits & EPOLLIN, 0);

        // Level-triggered: the byte is still unread, so it fires again.
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);

        // Switch interest to writability — an idle socket is writable.
        epoll.modify(b.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (token, bits) = (events[0].data, events[0].events);
        assert_eq!(token, 7);
        assert_ne!(bits & EPOLLOUT, 0);

        epoll.delete(b.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
