//! Deterministic consistent hashing for shard-warm routing.
//!
//! The router places every shard on a ring at `vnodes` pseudo-random
//! positions (FNV-1a 64 of `"{shard}#{replica}"`, passed through a 64-bit
//! avalanche finalizer) and routes a request's
//! semantic shape key (see [`SimJob::semantic_key`](crate::SimJob::semantic_key))
//! to the first shard clockwise from the key's hash. Two properties make
//! this the right structure here:
//!
//! - **Warm caches:** the same shape key always hashes to the same shard,
//!   so a shard's bounded LRU cell cache sees a stable subset of shapes
//!   and its hit rate survives traffic skew.
//! - **Minimal churn on failure:** when a shard dies, only the keys that
//!   mapped to it move (to the next shard clockwise); every other key
//!   keeps its warm shard. [`HashRing::preference_order`] exposes exactly
//!   that clockwise failover order.
//!
//! Everything is deterministic — no randomness, no per-process seeds — so
//! a router restart (or a second router) routes identically.

use std::collections::BTreeMap;

/// FNV-1a 64-bit hash of `bytes` — small, dependency-free and stable
/// across platforms and processes, which is all the ring needs (this is a
/// placement hash, not a cryptographic one).
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A 64-bit avalanche finalizer (the murmur3 `fmix64` constants). FNV-1a
/// of short, similar strings ("0#1", "0#2", …) differs mostly in its low
/// bits; ring positions are compared as full integers (high bits first),
/// so without this mix the virtual nodes cluster and some shards end up
/// owning almost none of the key space.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// The ring position of an arbitrary byte string: `mix64(fnv1a_64(bytes))`.
///
/// This is also the 64-bit hash an interned [`CellKey`](crate::CellKey)
/// precomputes, so a key rendered once can probe every cache *and* the
/// ring without being re-hashed.
#[must_use]
pub fn ring_point(bytes: &[u8]) -> u64 {
    mix64(fnv1a_64(bytes))
}

/// A consistent-hash ring over shard ids with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring position → shard id. A `BTreeMap` gives the clockwise scan.
    ring: BTreeMap<u64, u32>,
    /// Number of distinct shards on the ring.
    shards: usize,
}

impl HashRing {
    /// Builds a ring for shard ids `0..shards`, each at `vnodes` positions.
    ///
    /// `vnodes` is clamped to at least 1. With tens of virtual nodes per
    /// shard the key space splits roughly evenly even for small shard
    /// counts; the routers default to 64.
    #[must_use]
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut ring = BTreeMap::new();
        for shard in 0..shards {
            let shard = u32::try_from(shard).expect("shard count fits in u32");
            for replica in 0..vnodes {
                let point = ring_point(format!("{shard}#{replica}").as_bytes());
                // On the astronomically unlikely collision the lower shard
                // id wins, deterministically, on every router.
                ring.entry(point).or_insert(shard);
            }
        }
        HashRing { ring, shards }
    }

    /// Number of distinct shards the ring was built over.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard for `key`: the first ring position clockwise from
    /// the key's hash. `None` only for an empty ring.
    #[must_use]
    pub fn route(&self, key: &str) -> Option<u32> {
        self.route_point(ring_point(key.as_bytes()))
    }

    /// [`route`](Self::route) for a precomputed [`ring_point`] — the
    /// zero-rehash path an interned [`CellKey`](crate::CellKey) takes.
    #[must_use]
    pub fn route_point(&self, point: u64) -> Option<u32> {
        self.ring
            .range(point..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &shard)| shard)
    }

    /// The home shard for `key`, skipping shards for which `alive` returns
    /// false — the clockwise failover scan. `None` when every shard is
    /// dead (or the ring is empty).
    #[must_use]
    pub fn route_alive(&self, key: &str, alive: impl Fn(u32) -> bool) -> Option<u32> {
        self.preference_order(key).into_iter().find(|&s| alive(s))
    }

    /// Every distinct shard in clockwise order from `key`'s hash: the
    /// first entry is the home shard, each subsequent entry is the next
    /// failover target. Deterministic for a given ring and key.
    #[must_use]
    pub fn preference_order(&self, key: &str) -> Vec<u32> {
        self.preference_order_point(ring_point(key.as_bytes()))
    }

    /// [`preference_order`](Self::preference_order) for a precomputed
    /// [`ring_point`] — the zero-rehash failover scan.
    #[must_use]
    pub fn preference_order_point(&self, point: u64) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.shards);
        for (_, &shard) in self.ring.range(point..).chain(self.ring.range(..point)) {
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
        // The finalizer is a bijection that must not fix small inputs.
        assert_ne!(mix64(1), 1);
        assert_ne!(mix64(mix64(7)), mix64(7));
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(4, 64);
        let again = HashRing::new(4, 64);
        for i in 0..200 {
            let key = format!("design-{i}|shape-{}", i % 7);
            let shard = ring.route(&key).unwrap();
            assert!(shard < 4);
            assert_eq!(again.route(&key), Some(shard), "rebuilt ring must agree");
        }
        assert!(HashRing::new(0, 64).route("anything").is_none());
    }

    #[test]
    fn vnodes_spread_keys_across_shards() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.route(&format!("key-{i}")).unwrap() as usize] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 100,
                "shard {shard} got {count}/1000 keys — ring is badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn preference_order_lists_every_shard_once() {
        let ring = HashRing::new(5, 32);
        for i in 0..50 {
            let order = ring.preference_order(&format!("key-{i}"));
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "duplicates in {order:?}");
            assert_eq!(order[0], ring.route(&format!("key-{i}")).unwrap());
        }
    }

    #[test]
    fn killing_a_shard_moves_only_its_keys() {
        let ring = HashRing::new(4, 64);
        let keys: Vec<String> = (0..500).map(|i| format!("key-{i}")).collect();
        let before: Vec<u32> = keys.iter().map(|k| ring.route(k).unwrap()).collect();
        let dead = 2u32;
        for (key, &home) in keys.iter().zip(&before) {
            let rerouted = ring.route_alive(key, |s| s != dead).unwrap();
            if home == dead {
                assert_ne!(rerouted, dead);
                assert_eq!(
                    rerouted,
                    ring.preference_order(key)[1],
                    "clockwise failover"
                );
            } else {
                assert_eq!(rerouted, home, "surviving shards keep their keys");
            }
        }
        assert!(ring.route_alive("key-0", |_| false).is_none());
    }
}
