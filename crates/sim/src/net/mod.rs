//! Networked sharded serving tier.
//!
//! This module turns the in-process [`GemmServer`](crate::serve::GemmServer)
//! into a small distributed system while preserving the byte-stability
//! guarantees of the rest of the crate:
//!
//! - [`wire`] — the length-prefixed framed protocol (version byte, frame
//!   kinds, max-frame guard) and the JSON payload types that ride in it.
//! - [`hash`] — the FNV-1a consistent-hash ring that maps a request's
//!   semantic shape key to a shard, so repeated shapes always land where
//!   the LRU cell cache is already warm.
//! - [`shard`] — [`ShardServer`]: one TCP worker wrapping a `GemmServer`
//!   behind the shared frame-server front end.
//! - [`router`] — [`Router`]: consistent-hash routing across N shards with
//!   per-shard bounded in-flight windows (the PR 3 admission-control
//!   semantics, applied per backend) and dead-shard failover.
//! - [`client`] — [`NetClient`]: a blocking client library with bounded
//!   retry/backoff and endpoint rotation.
//!
//! Servers run on a **readiness-based event loop** by default: one thread
//! multiplexes every connection over non-blocking sockets (a hand-rolled
//! epoll binding on Linux, a portable level-triggered poll fallback
//! elsewhere), each connection carrying an incremental
//! [`wire::FrameDecoder`] so partial frames survive across readiness
//! events, with complete frames dispatched to a worker pool. The legacy
//! blocking thread-per-connection transport remains available via
//! `RASA_NET_TRANSPORT=blocking`. There is still no async runtime and no
//! new dependency — the crate keeps its zero-dependency stance. Responses
//! carry full [`SimReport`](crate::SimReport)s whose JSON is
//! byte-identical to what the same job produces in process
//! (`tests/net_wire.rs` proves it), on every transport.
//!
//! See `docs/ARCHITECTURE.md` for where this tier sits in the crate map
//! (including the transport section: event loop, buffer lifecycle,
//! fallback matrix) and `docs/WIRE_PROTOCOL.md` for the byte-level frame
//! spec.

pub mod client;
mod event_loop;
pub mod hash;
mod listener;
pub mod router;
pub mod shard;
mod sys;
pub mod wire;

pub use client::{ClientConfig, ClientStats, NetClient};
pub use hash::HashRing;
pub use router::{Router, RouterConfig, RouterHealth, RouterStats, DEFAULT_RESULT_CACHE_CAPACITY};
pub use shard::{ShardConfig, ShardServer};
pub use wire::{
    ErrorCode, Frame, FrameDecoder, FrameKind, HealthStatus, WireFailure, WireRequest,
    WireResponse, MAX_FRAME_LEN, WIRE_VERSION,
};

use crate::SimError;
use std::fmt;
use std::io;

/// Errors produced by the networked serving tier.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The transport failed (connect, read or write).
    Io {
        /// The originating I/O error kind.
        kind: io::ErrorKind,
        /// Human-readable description of the transport failure.
        reason: String,
    },
    /// A frame violated the protocol (truncated, bad length, unknown kind
    /// or unparseable payload).
    Frame {
        /// Human-readable description of the framing violation.
        reason: String,
    },
    /// The peer declared a frame larger than [`wire::MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The peer speaks a protocol version this build does not.
    BadVersion {
        /// The version byte the peer sent.
        got: u8,
    },
    /// The peer answered with a frame the protocol state does not allow
    /// (e.g. a health reply to a simulation request).
    Protocol {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The peer answered with an error frame.
    Remote {
        /// The machine-readable failure category from the error frame.
        code: wire::ErrorCode,
        /// The human-readable message from the error frame.
        message: String,
    },
    /// No shard could be reached after exhausting retries and failover.
    Unavailable {
        /// Human-readable description of what was exhausted.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { kind, reason } => write!(f, "transport error ({kind:?}): {reason}"),
            NetError::Frame { reason } => write!(f, "framing error: {reason}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::BadVersion { got } => write!(
                f,
                "peer speaks wire version {got}, this build speaks {}",
                wire::WIRE_VERSION
            ),
            NetError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            NetError::Remote { code, message } => {
                write!(f, "remote error [{}]: {message}", code.as_str())
            }
            NetError::Unavailable { reason } => write!(f, "no shard available: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(value: io::Error) -> Self {
        NetError::Io {
            kind: value.kind(),
            reason: value.to_string(),
        }
    }
}

impl From<NetError> for SimError {
    fn from(value: NetError) -> Self {
        SimError::Net {
            reason: value.to_string(),
        }
    }
}

impl NetError {
    /// Whether a client may transparently retry the same request, possibly
    /// against another shard: transport failures and retryable remote
    /// codes are; protocol violations and simulation failures are not.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io { .. } | NetError::Unavailable { .. } => true,
            NetError::Remote { code, .. } => code.is_retryable(),
            NetError::Frame { .. }
            | NetError::FrameTooLarge { .. }
            | NetError::BadVersion { .. }
            | NetError::Protocol { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_errors_display_and_convert() {
        let io_err = NetError::from(io::Error::new(io::ErrorKind::ConnectionRefused, "nope"));
        assert!(io_err.to_string().contains("transport"));
        assert!(io_err.is_retryable());

        let remote = NetError::Remote {
            code: wire::ErrorCode::Overloaded,
            message: "queue full".into(),
        };
        assert!(remote.is_retryable());
        let remote = NetError::Remote {
            code: wire::ErrorCode::Simulation,
            message: "bad shape".into(),
        };
        assert!(!remote.is_retryable());

        let version = NetError::BadVersion { got: 9 };
        assert!(!version.is_retryable());
        assert!(version.to_string().contains("version 9"));

        let sim: SimError = version.into();
        assert!(matches!(sim, SimError::Net { .. }));
        assert!(sim.to_string().contains("network serving error"));
    }
}
