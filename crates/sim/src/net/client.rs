//! A blocking client for shards and routers, with bounded retry/backoff.
//!
//! [`NetClient`] keeps one connection to one of its configured endpoints
//! (normally a single router; a list of shard addresses also works for
//! router-less deployments). On a transport failure it reconnects and
//! transparently retries the request with exponential backoff, up to
//! [`ClientConfig::max_retries`] times. Redials prefer the endpoint that
//! last worked — after a transient drop the client goes straight back to
//! the peer that was just serving it — and rotate to the next endpoint
//! only when a dial itself fails.
//! Only **retryable** failures are retried (transport errors, `overloaded`
//! and `unavailable` remote codes — see [`NetError::is_retryable`]); a
//! simulation error or protocol violation is returned immediately.
//!
//! Retrying a simulation request is always safe: the answer is a pure
//! function of the request, so a duplicate execution can change nothing
//! but cache temperature. This is what lets the distributed soak lose a
//! worker mid-run and still complete every request.

use crate::json::JsonValue;
use crate::json::{FromJson, ToJson};
use crate::net::wire::{Frame, FrameKind, WireFailure, WireRequest, WireResponse};
use crate::net::NetError;
use std::net::TcpStream;
use std::time::Duration;

/// Configuration of a [`NetClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Transparent retries per request after the first attempt.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 4,
            base_backoff: Duration::from_millis(20),
        }
    }
}

/// Monotonic counters of one [`NetClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Requests answered successfully.
    pub completed: u64,
    /// Transparent retry attempts (each is one extra exchange).
    pub retries: u64,
    /// Connections (re-)established.
    pub connects: u64,
    /// Requests that failed even after all retries.
    pub failed: u64,
}

/// A blocking wire-protocol client with endpoint rotation and retry.
pub struct NetClient {
    endpoints: Vec<String>,
    /// Index of the endpoint to dial next: stays put across successful
    /// dials (sticky to the last endpoint that worked), advances only
    /// when a dial fails.
    next_endpoint: usize,
    conn: Option<TcpStream>,
    config: ClientConfig,
    stats: ClientStats,
    /// Recycled request-serialization buffer: each request frame is
    /// encoded into the previous one's allocation.
    encode_buf: Vec<u8>,
    /// Recycled reply buffer: each reply frame is decoded into the
    /// previous one's allocation.
    decode_buf: Vec<u8>,
}

impl NetClient {
    /// A client over the given endpoints with default retry behaviour.
    /// Connections are established lazily on the first request.
    ///
    /// # Panics
    ///
    /// When `endpoints` is empty.
    #[must_use]
    pub fn new(endpoints: Vec<String>) -> NetClient {
        NetClient::with_config(endpoints, ClientConfig::default())
    }

    /// A client with explicit retry configuration.
    ///
    /// # Panics
    ///
    /// When `endpoints` is empty.
    #[must_use]
    pub fn with_config(endpoints: Vec<String>, config: ClientConfig) -> NetClient {
        assert!(
            !endpoints.is_empty(),
            "a client needs at least one endpoint"
        );
        NetClient {
            endpoints,
            next_endpoint: 0,
            conn: None,
            config,
            stats: ClientStats::default(),
            encode_buf: Vec::new(),
            decode_buf: Vec::new(),
        }
    }

    /// A point-in-time snapshot of the client's counters.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Sends one simulation request and blocks for its answer, retrying
    /// retryable failures with exponential backoff and endpoint rotation.
    ///
    /// # Errors
    ///
    /// The last failure once retries are exhausted, or immediately for
    /// non-retryable failures ([`NetError::Remote`] simulation errors,
    /// protocol violations, version mismatches).
    pub fn request(&mut self, request: &WireRequest) -> Result<WireResponse, NetError> {
        let frame = Frame::json_pooled(
            FrameKind::Request,
            &request.to_json(),
            std::mem::take(&mut self.encode_buf),
        );
        let outcome = self.exchange_with_retry(&frame);
        self.encode_buf = frame.into_payload();
        let reply = outcome?;
        let kind = reply.kind;
        let json = reply.payload_json();
        self.decode_buf = reply.into_payload();
        match kind {
            FrameKind::Response => {
                let response = WireResponse::from_json(&json?).map_err(|e| NetError::Frame {
                    reason: format!("undecodable response payload: {e}"),
                })?;
                if response.id != request.id {
                    // A desynced stream must not serve the next request:
                    // drop the connection so the next attempt redials.
                    self.conn = None;
                    return Err(NetError::Protocol {
                        reason: format!(
                            "response id {} does not match request id {}",
                            response.id, request.id
                        ),
                    });
                }
                self.stats.completed += 1;
                Ok(response)
            }
            FrameKind::Error => {
                let failure = WireFailure::from_json(&json?).map_err(|e| NetError::Frame {
                    reason: format!("undecodable error payload: {e}"),
                })?;
                self.stats.failed += 1;
                Err(NetError::Remote {
                    code: failure.code,
                    message: failure.message,
                })
            }
            FrameKind::Request | FrameKind::Health => Err(NetError::Protocol {
                reason: format!("peer answered a request with a {kind:?} frame"),
            }),
        }
    }

    /// Sends a health probe and returns the raw JSON payload of the reply
    /// — a `HealthStatus` document when the peer is a shard, a
    /// `RouterHealth` document when it is a router.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures, after the same retry policy as
    /// [`request`](Self::request).
    pub fn health(&mut self) -> Result<JsonValue, NetError> {
        let reply = self.exchange_with_retry(&Frame::health_probe())?;
        let kind = reply.kind;
        let json = reply.payload_json();
        self.decode_buf = reply.into_payload();
        match kind {
            FrameKind::Health => json,
            other => Err(NetError::Protocol {
                reason: format!("peer answered a probe with a {other:?} frame"),
            }),
        }
    }

    /// One exchange with the retry/backoff/rotation policy applied to
    /// **transport** failures and retryable error frames. Error frames
    /// are returned (not unwrapped) so the caller keeps the typed code.
    fn exchange_with_retry(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        let mut backoff = self.config.base_backoff;
        let mut last = None;
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
            match self.exchange_once(frame) {
                Ok(reply) => {
                    // A retryable error frame (e.g. overloaded) is retried
                    // like a transport failure; any other reply returns.
                    let retryable =
                        if reply.kind == FrameKind::Error && attempt < self.config.max_retries {
                            reply
                                .payload_json()
                                .ok()
                                .and_then(|json| WireFailure::from_json(&json).ok())
                                .filter(|failure| failure.code.is_retryable())
                        } else {
                            None
                        };
                    match retryable {
                        Some(failure) => {
                            last = Some(NetError::Remote {
                                code: failure.code,
                                message: failure.message,
                            });
                            // The reply frame is consumed here, not
                            // returned — reclaim its buffer so the pool
                            // survives the retry.
                            self.decode_buf = reply.into_payload();
                        }
                        None => return Ok(reply),
                    }
                }
                Err(error) if error.is_retryable() => {
                    last = Some(error);
                }
                Err(error) => return Err(error),
            }
        }
        self.stats.failed += 1;
        Err(NetError::Unavailable {
            reason: match last {
                Some(error) => format!(
                    "{} attempts exhausted; last failure: {error}",
                    self.config.max_retries + 1
                ),
                None => "no attempt could be made".to_string(),
            },
        })
    }

    /// One request/response exchange on the current connection, dialing
    /// when there is none. Redials go to the endpoint that last connected
    /// successfully; rotation to the next endpoint happens only when a
    /// dial fails — so a transient mid-exchange drop sends the client
    /// straight back to the peer that was just serving it.
    fn exchange_once(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        if self.conn.is_none() {
            let endpoint = &self.endpoints[self.next_endpoint % self.endpoints.len()];
            match TcpStream::connect(endpoint) {
                Ok(stream) => {
                    self.stats.connects += 1;
                    self.conn = Some(stream);
                }
                Err(e) => {
                    let error = NetError::Io {
                        kind: e.kind(),
                        reason: format!("connect {endpoint}: {e}"),
                    };
                    self.next_endpoint = (self.next_endpoint + 1) % self.endpoints.len();
                    return Err(error);
                }
            }
        }
        let stream = self.conn.as_mut().expect("connection just ensured");
        let outcome = match frame.write_to(stream) {
            Ok(()) => Frame::read_from_pooled(stream, &mut self.decode_buf),
            Err(error) => Err(error),
        };
        if outcome.is_err() {
            self.conn = None;
        }
        outcome
    }

    /// Test hook simulating a transient connection drop (e.g. a peer
    /// restart) without touching the endpoint cursor.
    #[cfg(test)]
    fn drop_connection_for_test(&mut self) {
        self.conn = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::shard::{ShardConfig, ShardServer};
    use crate::serve::ServeConfig;
    use crate::DesignPoint;
    use rasa_workloads::LayerSpec;

    fn spawn_shard(shard_id: u32) -> ShardServer {
        ShardServer::bind(
            "127.0.0.1:0",
            ShardConfig {
                shard_id,
                serve: ServeConfig {
                    workers_per_design: 1,
                    matmul_cap: Some(8),
                    ..ServeConfig::default()
                },
            },
            &[DesignPoint::baseline()],
        )
        .unwrap()
    }

    #[test]
    fn client_requests_and_probes() {
        let shard = spawn_shard(3);
        let mut client = NetClient::new(vec![shard.local_addr().to_string()]);
        let request = WireRequest::new(11, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let response = client.request(&request).unwrap();
        assert_eq!(response.id, 11);
        assert_eq!(response.shard, 3);
        let health = client.health().unwrap();
        assert_eq!(health.get("shard").and_then(JsonValue::as_u64), Some(3));
        let stats = client.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.connects, 1, "both exchanges share one connection");
        assert_eq!(stats.retries, 0);
        shard.shutdown();
    }

    #[test]
    fn client_rotates_endpoints_past_a_dead_peer() {
        let shard = spawn_shard(0);
        // A port from a just-dropped listener: connecting to it fails.
        let dead_addr = {
            let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            dead.local_addr().unwrap().to_string()
        };
        let mut client = NetClient::with_config(
            vec![dead_addr, shard.local_addr().to_string()],
            ClientConfig {
                max_retries: 2,
                base_backoff: Duration::ZERO,
            },
        );
        let request = WireRequest::new(1, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let response = client.request(&request).unwrap();
        assert_eq!(response.id, 1);
        let after_first = client.stats();
        assert!(after_first.retries >= 1, "first endpoint was dead");

        // Redial stickiness: after a transient drop the client must go
        // straight back to the endpoint that just worked — one fresh
        // connect, no retries, no detour through the dead endpoint.
        client.drop_connection_for_test();
        let request = WireRequest::new(2, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let response = client.request(&request).unwrap();
        assert_eq!(response.id, 2);
        let after_second = client.stats();
        assert_eq!(
            after_second.connects,
            after_first.connects + 1,
            "exactly one redial"
        );
        assert_eq!(
            after_second.retries, after_first.retries,
            "the redial preferred the last-successful endpoint"
        );
        shard.shutdown();
    }

    #[test]
    fn client_reports_non_retryable_errors_immediately() {
        let shard = spawn_shard(0);
        let mut client = NetClient::new(vec![shard.local_addr().to_string()]);
        let request = WireRequest::new(2, "NO-SUCH", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let err = client.request(&request).unwrap_err();
        assert!(matches!(err, NetError::Remote { .. }));
        assert_eq!(client.stats().retries, 0, "unknown design is not retried");
        assert_eq!(client.stats().failed, 1);
        shard.shutdown();
    }

    #[test]
    fn client_exhausts_retries_against_a_dead_world() {
        let dead_addr = {
            let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            dead.local_addr().unwrap().to_string()
        };
        let mut client = NetClient::with_config(
            vec![dead_addr],
            ClientConfig {
                max_retries: 1,
                base_backoff: Duration::ZERO,
            },
        );
        let request = WireRequest::new(3, "BASELINE", LayerSpec::fc("DLRM-1", 64, 128, 128));
        let err = client.request(&request).unwrap_err();
        assert!(matches!(err, NetError::Unavailable { .. }), "{err}");
        assert_eq!(client.stats().failed, 1);
    }
}
