//! Internal frame-server front end shared by [`ShardServer`] and
//! [`Router`]: bind, accept, answer every inbound frame through a
//! handler, prompt join on shutdown.
//!
//! Two transports live behind the same [`FrameListener`] API:
//!
//! - **Readiness** (the default): the epoll/poll event loop in
//!   [`crate::net::event_loop`] — one thread multiplexing every
//!   connection over non-blocking sockets, scaling past
//!   thread-per-connection.
//! - **Blocking**: the legacy one-thread-per-connection loop, kept as a
//!   fallback. Its historical framing bug is fixed: the per-connection
//!   [`FrameDecoder`] makes partial reads resumable, so a poll timeout
//!   mid-frame no longer discards consumed bytes, and finished connection
//!   handles are reaped on every accept instead of leaking.
//!
//! The transport is selected per process with the `RASA_NET_TRANSPORT`
//! environment variable (`readiness`/`epoll`, `poll` for the portable
//! tick fallback, `blocking`), defaulting to readiness — the public
//! `ShardServer`/`Router`/`NetClient` API and the wire bytes are
//! identical on every transport.
//!
//! [`ShardServer`]: crate::net::ShardServer
//! [`Router`]: crate::net::Router
//! [`FrameDecoder`]: crate::net::wire::FrameDecoder

use crate::json::ToJson;
use crate::net::event_loop::EventLoop;
use crate::net::wire::{ErrorCode, Frame, FrameDecoder, WireFailure};
use crate::net::NetError;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How long a blocking connection handler waits in `read` before
/// re-checking the shutdown flag. Small enough for prompt shutdown, large
/// enough to stay off the scheduler between requests.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The frame→frame request handler a server plugs into the loop.
pub(crate) type FrameHandler = Arc<dyn Fn(&Frame) -> Frame + Send + Sync>;

/// Which transport a [`FrameListener`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transport {
    /// The readiness event loop on its platform poller (epoll on Linux).
    Readiness,
    /// The readiness event loop forced onto the portable tick fallback.
    PollFallback,
    /// The legacy blocking thread-per-connection loop.
    Blocking,
}

impl Transport {
    /// Reads `RASA_NET_TRANSPORT`; unknown or unset values mean the
    /// readiness default.
    pub(crate) fn from_env() -> Transport {
        match std::env::var("RASA_NET_TRANSPORT").as_deref() {
            Ok("blocking") => Transport::Blocking,
            Ok("poll") => Transport::PollFallback,
            _ => Transport::Readiness,
        }
    }
}

/// A bound TCP listener answering every inbound frame through a handler.
pub(crate) struct FrameListener {
    inner: ListenerImpl,
}

enum ListenerImpl {
    Event(EventLoop),
    Blocking(BlockingListener),
}

impl FrameListener {
    /// Binds `addr` on the environment-selected transport and starts
    /// accepting. `name` labels the threads.
    pub(crate) fn bind(addr: &str, name: &str, handler: FrameHandler) -> Result<Self, NetError> {
        FrameListener::bind_with(addr, name, handler, Transport::from_env())
    }

    /// [`bind`](Self::bind) on an explicit transport (tests exercise all
    /// of them; production callers go through the env default).
    pub(crate) fn bind_with(
        addr: &str,
        name: &str,
        handler: FrameHandler,
        transport: Transport,
    ) -> Result<Self, NetError> {
        let inner = match transport {
            Transport::Readiness => {
                ListenerImpl::Event(EventLoop::bind(addr, name, handler, false)?)
            }
            Transport::PollFallback => {
                ListenerImpl::Event(EventLoop::bind(addr, name, handler, true)?)
            }
            Transport::Blocking => {
                ListenerImpl::Blocking(BlockingListener::bind(addr, name, handler)?)
            }
        };
        Ok(FrameListener { inner })
    }

    /// The bound address (with the resolved port when binding port 0).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            ListenerImpl::Event(event) => event.local_addr(),
            ListenerImpl::Blocking(blocking) => blocking.addr,
        }
    }

    /// How many connections are currently open.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn open_connections(&self) -> usize {
        match &self.inner {
            ListenerImpl::Event(event) => event.open_connections(),
            ListenerImpl::Blocking(blocking) => blocking.open_connections.load(Ordering::SeqCst),
        }
    }

    /// How many per-connection thread handles the blocking transport is
    /// currently tracking (0 on the event loop, which has none). The
    /// reaping regression test pins this as bounded under churn.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn tracked_handles(&self) -> usize {
        match &self.inner {
            ListenerImpl::Event(_) => 0,
            ListenerImpl::Blocking(blocking) => blocking
                .connections
                .lock()
                .expect("listener conn lock")
                .len(),
        }
    }

    /// Stops accepting and joins every thread. Idempotent; called from the
    /// owning server's `Drop`.
    pub(crate) fn stop_and_join(&mut self) {
        match &mut self.inner {
            ListenerImpl::Event(event) => event.stop_and_join(),
            ListenerImpl::Blocking(blocking) => blocking.stop_and_join(),
        }
    }
}

impl Drop for FrameListener {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The legacy blocking transport: one accept thread, one handler thread
/// per connection.
struct BlockingListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    open_connections: Arc<AtomicUsize>,
}

impl BlockingListener {
    fn bind(addr: &str, name: &str, handler: FrameHandler) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Io {
            kind: e.kind(),
            reason: format!("bind {addr}: {e}"),
        })?;
        let local = listener.local_addr().map_err(NetError::from)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let open_connections = Arc::new(AtomicUsize::new(0));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let accept_open = Arc::clone(&open_connections);
        let thread_name = name.to_string();
        let accept_thread = thread::Builder::new()
            .name(format!("{name}-accept"))
            .spawn(move || {
                accept_loop(
                    &listener,
                    &thread_name,
                    &accept_shutdown,
                    &accept_connections,
                    &accept_open,
                    &handler,
                );
            })
            .map_err(NetError::from)?;
        Ok(BlockingListener {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
            open_connections,
        })
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a dummy connection to our own
        // listener wakes it so it can observe the flag and exit.
        let _wake = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.connections.lock().expect("listener conn lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    name: &str,
    shutdown: &Arc<AtomicBool>,
    connections: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    open_connections: &Arc<AtomicUsize>,
    handler: &FrameHandler,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn_shutdown = Arc::clone(shutdown);
        let conn_handler = Arc::clone(handler);
        let conn_open = Arc::clone(open_connections);
        conn_open.fetch_add(1, Ordering::SeqCst);
        let Ok(handle) = thread::Builder::new()
            .name(format!("{name}-conn"))
            .spawn(move || {
                handle_connection(stream, &conn_shutdown, conn_handler.as_ref());
                conn_open.fetch_sub(1, Ordering::SeqCst);
            })
        else {
            open_connections.fetch_sub(1, Ordering::SeqCst);
            continue;
        };
        // Reap finished handles on every accept so a long-lived server
        // tracks live connections, not its whole connection history.
        let mut handles = connections.lock().expect("listener conn lock");
        handles.retain(|handle| !handle.is_finished());
        handles.push(handle);
    }
}

/// Serves one connection until the peer hangs up or the server shuts down.
///
/// The connection's [`FrameDecoder`] makes partial reads resumable: a poll
/// timeout that lands mid-frame (a slow writer straddling
/// [`POLL_INTERVAL`]) keeps every consumed byte and resumes exactly where
/// the stream stopped, instead of silently discarding a partial length
/// prefix and desyncing the framing.
fn handle_connection(stream: TcpStream, shutdown: &AtomicBool, handler: &dyn Fn(&Frame) -> Frame) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = stream;
    // The connection's decoder owns the recycled decode buffer: each
    // dispatched frame's payload is handed back after the reply, so
    // steady-state serving decodes every frame into the same allocation.
    let mut decoder = FrameDecoder::new();
    loop {
        match decoder.read_step(&mut reader) {
            Ok(Some(frame)) => {
                let reply = handler(&frame);
                decoder.recycle(frame.into_payload());
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
            // More bytes needed for the frame in progress: keep reading.
            Ok(None) => {}
            // A poll timeout — between frames or mid-frame, the decoder
            // holds whatever partial bytes arrived: check the flag and
            // resume.
            Err(NetError::Io { kind, .. })
                if kind == io::ErrorKind::WouldBlock || kind == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            // EOF, transport failure or an unparseable frame: answer what
            // can be answered, then drop the connection (framing is byte
            // oriented — after a bad frame the stream cannot be resynced).
            Err(error) => {
                if !matches!(&error, NetError::Io { .. }) {
                    let failure = WireFailure::new(0, ErrorCode::BadRequest, error.to_string());
                    let _ = Frame::json(crate::net::wire::FrameKind::Error, &failure.to_json())
                        .write_to(&mut writer);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::wire::FrameKind;
    use std::io::{Read, Write};

    /// An echo handler: answers every frame with the same payload as a
    /// Response frame.
    fn echo_handler() -> FrameHandler {
        Arc::new(|frame: &Frame| Frame {
            kind: FrameKind::Response,
            payload: frame.payload.clone(),
        })
    }

    fn request_frame(text: &str) -> Frame {
        Frame {
            kind: FrameKind::Request,
            payload: text.as_bytes().to_vec(),
        }
    }

    const ALL_TRANSPORTS: [Transport; 3] = [
        Transport::Readiness,
        Transport::PollFallback,
        Transport::Blocking,
    ];

    #[test]
    fn every_transport_answers_framed_requests() {
        for transport in ALL_TRANSPORTS {
            let mut listener =
                FrameListener::bind_with("127.0.0.1:0", "test-echo", echo_handler(), transport)
                    .unwrap();
            let mut stream = TcpStream::connect(listener.local_addr()).unwrap();
            for i in 0..3 {
                let frame = request_frame(&format!("{{\"seq\":{i}}}"));
                frame.write_to(&mut stream).unwrap();
                let reply = Frame::read_from(&mut stream).unwrap();
                assert_eq!(reply.kind, FrameKind::Response, "{transport:?}");
                assert_eq!(reply.payload, frame.payload, "{transport:?}");
            }
            drop(stream);
            listener.stop_and_join();
        }
    }

    /// The mid-frame-timeout desync regression: one frame written a byte
    /// at a time with gaps well past the 50 ms poll interval, placed to
    /// straddle the length prefix, the kind byte and the payload. The old
    /// blocking reader discarded partially consumed prefixes on timeout
    /// and desynced; both new paths must answer correctly.
    #[test]
    fn slow_writers_straddling_poll_timeouts_do_not_desync() {
        for transport in ALL_TRANSPORTS {
            let mut listener =
                FrameListener::bind_with("127.0.0.1:0", "test-slow", echo_handler(), transport)
                    .unwrap();
            let mut stream = TcpStream::connect(listener.local_addr()).unwrap();
            let frame = request_frame("{\"slow\":true}");
            let bytes = frame.encode();
            // Gaps after the 2nd byte (mid length prefix), the 5th byte
            // (between version and kind) and the 8th byte (mid payload):
            // every gap exceeds the blocking transport's poll interval.
            for (at, byte) in bytes.iter().enumerate() {
                stream.write_all(std::slice::from_ref(byte)).unwrap();
                stream.flush().unwrap();
                if matches!(at, 1 | 4 | 7) {
                    std::thread::sleep(Duration::from_millis(70));
                }
            }
            let reply = Frame::read_from(&mut stream).unwrap();
            assert_eq!(reply.kind, FrameKind::Response, "{transport:?}");
            assert_eq!(reply.payload, frame.payload, "{transport:?}");
            // The connection is still usable afterwards — framing stayed
            // in sync.
            let follow_up = request_frame("{\"after\":1}");
            follow_up.write_to(&mut stream).unwrap();
            let reply = Frame::read_from(&mut stream).unwrap();
            assert_eq!(reply.payload, follow_up.payload, "{transport:?}");
            drop(stream);
            listener.stop_and_join();
        }
    }

    /// The handle-leak regression: connection churn against the blocking
    /// transport must not grow the tracked handle vector without bound —
    /// finished handles are reaped on every accept.
    #[test]
    fn blocking_transport_reaps_finished_connection_handles() {
        let mut listener = FrameListener::bind_with(
            "127.0.0.1:0",
            "test-churn",
            echo_handler(),
            Transport::Blocking,
        )
        .unwrap();
        let churn = 40;
        for i in 0..churn {
            let mut stream = TcpStream::connect(listener.local_addr()).unwrap();
            let frame = request_frame(&format!("{{\"churn\":{i}}}"));
            frame.write_to(&mut stream).unwrap();
            let reply = Frame::read_from(&mut stream).unwrap();
            assert_eq!(reply.payload, frame.payload);
            drop(stream);
        }
        // Each handler thread needs a poll interval to notice its EOF;
        // wait for the population to settle, then one more accept reaps.
        std::thread::sleep(POLL_INTERVAL + Duration::from_millis(50));
        let mut stream = TcpStream::connect(listener.local_addr()).unwrap();
        let frame = request_frame("{\"final\":true}");
        frame.write_to(&mut stream).unwrap();
        let _ = Frame::read_from(&mut stream).unwrap();
        let tracked = listener.tracked_handles();
        assert!(
            tracked <= 4,
            "{churn} sequential connections left {tracked} tracked handles — the reap is broken"
        );
        drop(stream);
        listener.stop_and_join();
    }

    /// A corrupt frame on the event loop gets an error-frame answer and
    /// the connection is closed — matching the blocking transport's
    /// contract.
    #[test]
    fn event_loop_answers_corrupt_frames_then_closes() {
        for transport in [Transport::Readiness, Transport::PollFallback] {
            let mut listener =
                FrameListener::bind_with("127.0.0.1:0", "test-corrupt", echo_handler(), transport)
                    .unwrap();
            let mut stream = TcpStream::connect(listener.local_addr()).unwrap();
            // A frame with a bad version byte.
            let mut bytes = request_frame("{}").encode();
            bytes[4] = 9;
            stream.write_all(&bytes).unwrap();
            let reply = Frame::read_from(&mut stream).unwrap();
            assert_eq!(reply.kind, FrameKind::Error, "{transport:?}");
            // ... then EOF: the server closed the connection.
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "{transport:?}");
            listener.stop_and_join();
        }
    }

    /// The event loop serves many concurrent connections from one thread;
    /// open_connections tracks the population and returns to zero.
    #[test]
    fn event_loop_counts_open_connections() {
        let mut listener = FrameListener::bind_with(
            "127.0.0.1:0",
            "test-count",
            echo_handler(),
            Transport::Readiness,
        )
        .unwrap();
        let mut streams = Vec::new();
        for _ in 0..20 {
            streams.push(TcpStream::connect(listener.local_addr()).unwrap());
        }
        // Drive one request over each to prove they are all registered.
        for (i, stream) in streams.iter_mut().enumerate() {
            let frame = request_frame(&format!("{{\"conn\":{i}}}"));
            frame.write_to(stream).unwrap();
            let reply = Frame::read_from(stream).unwrap();
            assert_eq!(reply.payload, frame.payload);
        }
        assert_eq!(listener.open_connections(), 20);
        drop(streams);
        // The loop notices the EOFs within a few poll intervals.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while listener.open_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(listener.open_connections(), 0);
        listener.stop_and_join();
    }
}
