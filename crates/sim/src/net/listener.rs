//! Internal blocking frame-server loop shared by [`ShardServer`] and
//! [`Router`]: bind, accept, one handler thread per connection, prompt
//! join on shutdown.
//!
//! [`ShardServer`]: crate::net::ShardServer
//! [`Router`]: crate::net::Router

use crate::json::ToJson;
use crate::net::wire::{ErrorCode, Frame, WireFailure};
use crate::net::NetError;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How long a connection handler waits in `read` before re-checking the
/// shutdown flag. Small enough for prompt shutdown, large enough to stay
/// off the scheduler between requests.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The frame→frame request handler a server plugs into the loop.
pub(crate) type FrameHandler = Arc<dyn Fn(&Frame) -> Frame + Send + Sync>;

/// A bound TCP listener answering every inbound frame through a handler.
pub(crate) struct FrameListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl FrameListener {
    /// Binds `addr` and starts accepting. `name` labels the threads.
    pub(crate) fn bind(addr: &str, name: &str, handler: FrameHandler) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Io {
            kind: e.kind(),
            reason: format!("bind {addr}: {e}"),
        })?;
        let local = listener.local_addr().map_err(NetError::from)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let thread_name = name.to_string();
        let accept_thread = thread::Builder::new()
            .name(format!("{name}-accept"))
            .spawn(move || {
                accept_loop(
                    &listener,
                    &thread_name,
                    &accept_shutdown,
                    &accept_connections,
                    &handler,
                );
            })
            .map_err(NetError::from)?;
        Ok(FrameListener {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (with the resolved port when binding port 0).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every thread. Idempotent; called from the
    /// owning server's `Drop`.
    pub(crate) fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a dummy connection to our own
        // listener wakes it so it can observe the flag and exit.
        let _wake = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.connections.lock().expect("listener conn lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for FrameListener {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    name: &str,
    shutdown: &Arc<AtomicBool>,
    connections: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    handler: &FrameHandler,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn_shutdown = Arc::clone(shutdown);
        let conn_handler = Arc::clone(handler);
        let Ok(handle) = thread::Builder::new()
            .name(format!("{name}-conn"))
            .spawn(move || handle_connection(stream, &conn_shutdown, conn_handler.as_ref()))
        else {
            continue;
        };
        connections.lock().expect("listener conn lock").push(handle);
    }
}

/// Serves one connection until the peer hangs up or the server shuts down.
fn handle_connection(stream: TcpStream, shutdown: &AtomicBool, handler: &dyn Fn(&Frame) -> Frame) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = stream;
    // The connection's decode buffer: the previous request frame's payload
    // is recycled into the next read, so steady-state serving decodes
    // every frame into the same allocation.
    let mut decode_buf = Vec::new();
    loop {
        match Frame::read_from_pooled(&mut reader, &mut decode_buf) {
            Ok(frame) => {
                let reply = handler(&frame);
                decode_buf = frame.into_payload();
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
            // A poll timeout between frames: check the flag and keep
            // listening. (read_exact maps timeouts to either kind,
            // depending on platform.)
            Err(NetError::Io { kind, .. })
                if kind == io::ErrorKind::WouldBlock || kind == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            // EOF, transport failure or an unparseable frame: answer what
            // can be answered, then drop the connection (framing is byte
            // oriented — after a bad frame the stream cannot be resynced).
            Err(error) => {
                if !matches!(&error, NetError::Io { .. }) {
                    let failure = WireFailure::new(0, ErrorCode::BadRequest, error.to_string());
                    let _ = Frame::json(crate::net::wire::FrameKind::Error, &failure.to_json())
                        .write_to(&mut writer);
                }
                return;
            }
        }
    }
}
