//! Pluggable search strategies.
//!
//! A [`SearchStrategy`] drives a [`SearchSession`]: it decides *which*
//! genotypes to evaluate and in what order, while the session owns the
//! evaluation pipeline and the frontier. Three strategies ship built in —
//! [`ExhaustiveGrid`], seeded [`RandomSampling`] and a seeded
//! [`Evolutionary`] loop (per-axis mutation plus tournament selection).
//! All three are deterministic: for a fixed strategy configuration and
//! workload, repeated runs request the identical evaluation sequence and
//! therefore produce the identical outcome.

use super::{EvaluatedDesign, SearchSession};
use crate::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A design-space exploration policy over a [`SearchSession`].
pub trait SearchStrategy: std::fmt::Debug {
    /// Stable strategy name (used in logs, JSON documents and the CLI).
    fn name(&self) -> &'static str;

    /// Checks the strategy parameters without running anything.
    /// [`DesignSearch::run`](super::DesignSearch::run) calls this before
    /// the baseline anchor is simulated, so misconfigured runs fail before
    /// any simulation work is spent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for unusable parameters.
    fn validate(&self) -> Result<(), SimError> {
        Ok(())
    }

    /// Runs the strategy to completion on a session.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    fn run(&self, session: &mut SearchSession<'_>) -> Result<(), SimError>;
}

/// Evaluates every valid candidate of the space, in enumeration order, as
/// one parallel batch — the ground truth the sampling strategies are
/// judged against (tractable thanks to the runner's memoizing cache and
/// the capped steady-state simulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveGrid;

impl SearchStrategy for ExhaustiveGrid {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn run(&self, session: &mut SearchSession<'_>) -> Result<(), SimError> {
        let all = session.space().candidates().to_vec();
        session.evaluate(&all)?;
        session.record_generation(all.len());
        Ok(())
    }
}

/// Seeded uniform sampling: `samples` independent draws from the
/// candidate list, evaluated as one parallel batch (duplicates collapse
/// in-batch, so the distinct count may be lower).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSampling {
    /// Number of draws.
    pub samples: usize,
    /// RNG seed; equal seeds reproduce the draw sequence exactly.
    pub seed: u64,
}

impl RandomSampling {
    /// A sampler drawing `samples` candidates under `seed`.
    #[must_use]
    pub const fn new(samples: usize, seed: u64) -> Self {
        RandomSampling { samples, seed }
    }
}

impl SearchStrategy for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.samples == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "random sampling needs at least one sample".to_string(),
            });
        }
        Ok(())
    }

    fn run(&self, session: &mut SearchSession<'_>) -> Result<(), SimError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let draws: Vec<_> = (0..self.samples)
            .map(|_| session.space().sample(&mut rng))
            .collect();
        session.evaluate(&draws)?;
        session.record_generation(draws.len());
        Ok(())
    }
}

/// A seeded evolutionary/hill-climbing loop.
///
/// Generation 0 is `population` uniform draws; each later generation
/// breeds `population` children by tournament selection (dominance first,
/// scalar fitness as the tie-break — see [`SearchSession::compare`])
/// followed by per-axis mutation with validity repair
/// ([`super::SearchSpace::mutate`]). Children are evaluated as one
/// parallel batch per generation; revisited genotypes are answered by the
/// runner's cell cache rather than re-simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evolutionary {
    /// Individuals per generation.
    pub population: usize,
    /// Breeding generations after the initial draw.
    pub generations: usize,
    /// RNG seed; equal seeds reproduce selection and mutation exactly.
    pub seed: u64,
    /// Per-axis mutation probability (0..=1).
    pub mutation_rate: f64,
    /// Individuals drawn per tournament (at least 1).
    pub tournament: usize,
}

impl Evolutionary {
    /// Default per-axis mutation probability.
    pub const DEFAULT_MUTATION_RATE: f64 = 0.35;
    /// Default tournament size (binary tournament).
    pub const DEFAULT_TOURNAMENT: usize = 2;

    /// An evolutionary search with the default mutation rate and
    /// tournament size.
    #[must_use]
    pub const fn new(population: usize, generations: usize, seed: u64) -> Self {
        Evolutionary {
            population,
            generations,
            seed,
            mutation_rate: Evolutionary::DEFAULT_MUTATION_RATE,
            tournament: Evolutionary::DEFAULT_TOURNAMENT,
        }
    }

    /// Overrides the per-axis mutation probability.
    #[must_use]
    pub const fn with_mutation_rate(mut self, rate: f64) -> Self {
        self.mutation_rate = rate;
        self
    }

    /// Overrides the tournament size.
    #[must_use]
    pub const fn with_tournament(mut self, tournament: usize) -> Self {
        self.tournament = tournament;
        self
    }

    /// Tournament selection: the best of `tournament` uniform draws from
    /// the current population, under the session's deterministic
    /// comparison.
    fn select<'p>(
        &self,
        session: &SearchSession<'_>,
        population: &'p [EvaluatedDesign],
        rng: &mut StdRng,
    ) -> &'p EvaluatedDesign {
        let mut best = &population[rng.gen_range(0..population.len())];
        for _ in 1..self.tournament {
            let challenger = &population[rng.gen_range(0..population.len())];
            if session.compare(challenger, best).is_lt() {
                best = challenger;
            }
        }
        best
    }
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolve"
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.population == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "evolutionary search needs a population of at least 1".to_string(),
            });
        }
        if self.tournament == 0 {
            return Err(SimError::InvalidExperiment {
                reason: "tournament size must be at least 1".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(SimError::InvalidExperiment {
                reason: format!(
                    "mutation rate must be within 0..=1, got {}",
                    self.mutation_rate
                ),
            });
        }
        Ok(())
    }

    fn run(&self, session: &mut SearchSession<'_>) -> Result<(), SimError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let initial: Vec<_> = (0..self.population)
            .map(|_| session.space().sample(&mut rng))
            .collect();
        let mut population = session.evaluate(&initial)?;
        session.record_generation(initial.len());
        for _ in 0..self.generations {
            let children: Vec<_> = (0..self.population)
                .map(|_| {
                    let parent = self.select(session, &population, &mut rng);
                    session
                        .space()
                        .mutate(&parent.genotype, &mut rng, self.mutation_rate)
                })
                .collect();
            population = session.evaluate(&children)?;
            session.record_generation(children.len());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{DesignSearch, SearchSpace};
    use crate::ExperimentRunner;
    use rasa_workloads::LayerSpec;

    fn run(strategy: &dyn SearchStrategy) -> Result<crate::search::SearchOutcome, SimError> {
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(32))
            .build()?;
        let layer = LayerSpec::fc("TINY-FC", 32, 64, 64);
        DesignSearch::new(&runner, SearchSpace::paper(), layer).run(strategy)
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(ExhaustiveGrid.name(), "grid");
        assert_eq!(RandomSampling::new(4, 0).name(), "random");
        assert_eq!(Evolutionary::new(4, 1, 0).name(), "evolve");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            run(&RandomSampling::new(0, 1)),
            Err(SimError::InvalidExperiment { .. })
        ));
        assert!(matches!(
            run(&Evolutionary::new(0, 1, 1)),
            Err(SimError::InvalidExperiment { .. })
        ));
        assert!(matches!(
            run(&Evolutionary::new(2, 1, 1).with_tournament(0)),
            Err(SimError::InvalidExperiment { .. })
        ));
        assert!(matches!(
            run(&Evolutionary::new(2, 1, 1).with_mutation_rate(1.5)),
            Err(SimError::InvalidExperiment { .. })
        ));
        // Parameter validation happens before any simulation: a rejected
        // run must leave the runner's cache untouched (not even the
        // baseline anchor cell).
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(32))
            .build()
            .unwrap();
        let layer = LayerSpec::fc("TINY-FC", 32, 64, 64);
        let result =
            DesignSearch::new(&runner, SearchSpace::paper(), layer).run(&RandomSampling::new(0, 1));
        assert!(result.is_err());
        assert_eq!(runner.cache_stats().misses, 0, "no simulation was spent");
    }

    #[test]
    fn random_sampling_respects_the_draw_budget() {
        let outcome = run(&RandomSampling::new(10, 21)).unwrap();
        assert_eq!(outcome.requested_evaluations, 10);
        assert!(outcome.distinct_evaluated <= 10);
        assert!(outcome.distinct_evaluated >= 1);
        assert_eq!(outcome.generations.len(), 1);
        assert_eq!(outcome.generations[0].evaluations, 10);
    }

    #[test]
    fn evolutionary_generations_are_logged_in_order() {
        let outcome = run(&Evolutionary::new(3, 4, 5)).unwrap();
        assert_eq!(outcome.generations.len(), 5);
        for (index, record) in outcome.generations.iter().enumerate() {
            assert_eq!(record.generation, index);
            assert_eq!(record.evaluations, 3);
            assert!(record.frontier_size >= 1);
        }
        // The best normalized runtime can only improve over generations.
        for pair in outcome.generations.windows(2) {
            assert!(pair[1].best_normalized_runtime <= pair[0].best_normalized_runtime + 1e-12);
        }
    }
}
