//! The evaluation engine behind every search strategy.
//!
//! A [`DesignSearch`] binds a [`SearchSpace`] and a workload to a shared
//! [`ExperimentRunner`]; running a [`SearchStrategy`] opens a
//! [`SearchSession`] the strategy drives. The session owns candidate
//! evaluation: batches are deduplicated, materialized into
//! [`SimJob`](crate::SimJob)s and fanned out through the runner's parallel,
//! memoizing pipeline — so a genotype revisited in a later generation is a
//! cell-cache hit, never a re-simulation — and every result feeds the
//! [`ParetoFrontier`].

use super::{
    EvaluatedDesign, GenerationRecord, Genotype, Objectives, ParetoFrontier, SearchOutcome,
    SearchSpace, SearchStrategy,
};
use crate::{DesignPoint, ExperimentRunner, SimError, SimJob, SimReport};
use rasa_workloads::LayerSpec;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// A configured design-space search: space + workload + runner.
///
/// ```no_run
/// use rasa_sim::search::{DesignSearch, ExhaustiveGrid, SearchSpace};
/// use rasa_sim::ExperimentRunner;
/// use rasa_workloads::WorkloadSuite;
///
/// # fn main() -> Result<(), rasa_sim::SimError> {
/// let runner = ExperimentRunner::builder()
///     .with_matmul_cap(Some(256))
///     .build()?;
/// let layer = WorkloadSuite::mlperf().layer("DLRM-2").unwrap().clone();
/// let search = DesignSearch::new(&runner, SearchSpace::paper(), layer);
/// let outcome = search.run(&ExhaustiveGrid)?;
/// assert!(!outcome.frontier.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DesignSearch<'a> {
    runner: &'a ExperimentRunner,
    space: SearchSpace,
    workload: LayerSpec,
}

impl<'a> DesignSearch<'a> {
    /// Binds a space and a workload to a runner. The runner's kernel
    /// settings (matmul cap, streaming transport) apply to every
    /// evaluation, and its cell cache is shared with anything else the
    /// runner serves.
    #[must_use]
    pub fn new(runner: &'a ExperimentRunner, space: SearchSpace, workload: LayerSpec) -> Self {
        DesignSearch {
            runner,
            space,
            workload,
        }
    }

    /// The design space being searched.
    #[must_use]
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The workload every candidate is evaluated on.
    #[must_use]
    pub fn workload(&self) -> &LayerSpec {
        &self.workload
    }

    /// Runs a strategy to completion and returns the deterministic
    /// outcome. The paper baseline is always evaluated first as the
    /// normalization anchor (one extra cell, shared with any candidate
    /// that materializes to the same configuration).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for invalid strategy
    /// parameters (checked before any simulation is spent) and propagates
    /// simulation errors.
    pub fn run(&self, strategy: &dyn SearchStrategy) -> Result<SearchOutcome, SimError> {
        strategy.validate()?;
        let mut session = SearchSession::begin(self.runner, &self.space, &self.workload)?;
        strategy.run(&mut session)?;
        Ok(session.finish(strategy.name(), self.space.clone()))
    }
}

/// The mutable state a [`SearchStrategy`] drives: candidate evaluation,
/// the frontier, and the generation log.
#[derive(Debug)]
pub struct SearchSession<'a> {
    space: &'a SearchSpace,
    runner: &'a ExperimentRunner,
    workload: &'a LayerSpec,
    baseline: EvaluatedDesign,
    baseline_report: Arc<SimReport>,
    evaluated: HashMap<Genotype, EvaluatedDesign>,
    requested_evaluations: usize,
    frontier: ParetoFrontier,
    generations: Vec<GenerationRecord>,
}

impl<'a> SearchSession<'a> {
    /// Opens a session: simulates the paper-baseline anchor and prepares
    /// the empty frontier.
    fn begin(
        runner: &'a ExperimentRunner,
        space: &'a SearchSpace,
        workload: &'a LayerSpec,
    ) -> Result<Self, SimError> {
        let baseline_report =
            runner.run_job(&SimJob::new(DesignPoint::baseline(), workload.clone()))?;
        let baseline_genotype = Genotype {
            pe: rasa_systolic::PeVariant::Baseline,
            control: rasa_systolic::ControlScheme::Base,
            max_tk: rasa_systolic::SystolicConfig::paper_baseline().max_tk(),
            cols: rasa_systolic::SystolicConfig::paper_baseline().max_tn(),
            max_in_flight: rasa_systolic::SystolicConfig::paper_baseline().max_in_flight(),
            clock_ratio: rasa_systolic::SystolicConfig::paper_baseline().clock_ratio(),
            kernel: None,
        };
        let baseline = EvaluatedDesign {
            genotype: baseline_genotype,
            name: baseline_report.design.clone(),
            core_cycles: baseline_report.core_cycles,
            objectives: Objectives {
                normalized_runtime: 1.0,
                area_mm2: baseline_report.power.area.total(),
                energy_joules: baseline_report.power.energy.total(),
            },
        };
        Ok(SearchSession {
            space,
            runner,
            workload,
            baseline,
            baseline_report,
            evaluated: HashMap::new(),
            requested_evaluations: 0,
            frontier: ParetoFrontier::new(),
            generations: Vec::new(),
        })
    }

    /// The space being searched (for sampling and mutation).
    #[must_use]
    pub fn space(&self) -> &SearchSpace {
        self.space
    }

    /// The baseline anchor every candidate is normalized against.
    #[must_use]
    pub fn baseline(&self) -> &EvaluatedDesign {
        &self.baseline
    }

    /// The frontier accumulated so far.
    #[must_use]
    pub fn frontier(&self) -> &ParetoFrontier {
        &self.frontier
    }

    /// Genotype evaluations requested so far, revisits included.
    #[must_use]
    pub fn requested_evaluations(&self) -> usize {
        self.requested_evaluations
    }

    /// Distinct genotypes evaluated so far.
    #[must_use]
    pub fn distinct_evaluated(&self) -> usize {
        self.evaluated.len()
    }

    /// Evaluates a batch of genotypes and returns their results in input
    /// order.
    ///
    /// Duplicates *within* the batch are collapsed before submission (so
    /// parallel workers never race on one uncached cell), while genotypes
    /// revisited *across* batches are looked up through the runner again —
    /// deliberately, so the memoizing cell cache (not a session-private
    /// shortcut) serves the repeat and its [`crate::CacheStats`] hit
    /// counters record the reuse.
    ///
    /// # Errors
    ///
    /// Propagates materialization and simulation errors.
    pub fn evaluate(&mut self, genotypes: &[Genotype]) -> Result<Vec<EvaluatedDesign>, SimError> {
        self.requested_evaluations += genotypes.len();
        let mut batch: Vec<Genotype> = Vec::new();
        for genotype in genotypes {
            if !batch.contains(genotype) {
                batch.push(*genotype);
            }
        }
        let jobs = batch
            .iter()
            .map(|genotype| {
                let mut job = SimJob::new(genotype.materialize()?, self.workload.clone());
                // Joint-space candidates carry an explicit kernel (under
                // the runner's cap, so joint and hardware-only cells stay
                // comparable); hardware-only candidates keep the runner's
                // default kernel and its legacy cache keys.
                if let Some(kernel) = genotype.kernel_config(self.runner.matmul_cap())? {
                    job = job.with_kernel(kernel);
                }
                Ok(job)
            })
            .collect::<Result<Vec<SimJob>, SimError>>()?;
        let reports = self.runner.run_jobs(&jobs)?;
        for (genotype, report) in batch.iter().zip(&reports) {
            let evaluation = self.evaluation(*genotype, report);
            self.frontier.insert(evaluation.clone());
            self.evaluated.insert(*genotype, evaluation);
        }
        Ok(genotypes
            .iter()
            .map(|genotype| self.evaluated[genotype].clone())
            .collect())
    }

    fn evaluation(&self, genotype: Genotype, report: &SimReport) -> EvaluatedDesign {
        EvaluatedDesign {
            genotype,
            name: report.design.clone(),
            core_cycles: report.core_cycles,
            objectives: Objectives {
                normalized_runtime: report.normalized_runtime_vs(&self.baseline_report),
                area_mm2: report.power.area.total(),
                energy_joules: report.power.energy.total(),
            },
        }
    }

    /// A scalar fitness for selection: the mean of the three objectives,
    /// each normalized to the baseline (smaller is better). Purely a
    /// tie-breaker between mutually non-dominating designs; dominance
    /// always wins first (see [`compare`](Self::compare)).
    #[must_use]
    pub fn fitness(&self, design: &EvaluatedDesign) -> f64 {
        let base = &self.baseline.objectives;
        (design.objectives.normalized_runtime
            + design.objectives.area_mm2 / base.area_mm2.max(f64::MIN_POSITIVE)
            + design.objectives.energy_joules / base.energy_joules.max(f64::MIN_POSITIVE))
            / 3.0
    }

    /// Deterministic selection order: dominance first, then scalar
    /// [`fitness`](Self::fitness), then name. `Ordering::Less` means `a`
    /// is the better design.
    #[must_use]
    pub fn compare(&self, a: &EvaluatedDesign, b: &EvaluatedDesign) -> Ordering {
        if a.objectives.dominates(&b.objectives) {
            Ordering::Less
        } else if b.objectives.dominates(&a.objectives) {
            Ordering::Greater
        } else {
            self.fitness(a)
                .total_cmp(&self.fitness(b))
                .then_with(|| a.name.cmp(&b.name))
        }
    }

    /// Closes one generation: records how many evaluations it requested
    /// and snapshots the frontier state.
    pub fn record_generation(&mut self, evaluations: usize) {
        self.generations.push(GenerationRecord {
            generation: self.generations.len(),
            evaluations,
            frontier_size: self.frontier.len(),
            best_normalized_runtime: self
                .frontier
                .fastest()
                .map_or(1.0, |best| best.objectives.normalized_runtime),
        });
    }

    fn finish(self, strategy: &'static str, space: SearchSpace) -> SearchOutcome {
        SearchOutcome {
            strategy: strategy.to_string(),
            workload: self.workload.name().to_string(),
            space,
            baseline: self.baseline,
            requested_evaluations: self.requested_evaluations,
            distinct_evaluated: self.evaluated.len(),
            generations: self.generations,
            frontier: self.frontier.members().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{Evolutionary, ExhaustiveGrid, RandomSampling};
    use rasa_systolic::{ControlScheme, PeVariant};
    use rasa_workloads::LayerSpec;

    fn tiny_layer() -> LayerSpec {
        LayerSpec::fc("TINY-FC", 32, 64, 64)
    }

    fn capped_runner() -> ExperimentRunner {
        ExperimentRunner::builder()
            .with_matmul_cap(Some(32))
            .build()
            .unwrap()
    }

    #[test]
    fn grid_search_covers_the_whole_space() {
        let runner = capped_runner();
        let space = SearchSpace::paper();
        let search = DesignSearch::new(&runner, space.clone(), tiny_layer());
        assert_eq!(search.space(), &space);
        assert_eq!(search.workload().name(), "TINY-FC");
        let outcome = search.run(&ExhaustiveGrid).unwrap();
        assert_eq!(outcome.distinct_evaluated, 14);
        assert_eq!(outcome.requested_evaluations, 14);
        assert_eq!(outcome.generations.len(), 1);
        assert!(!outcome.frontier.is_empty());
        // The baseline anchors normalization at exactly 1.
        assert_eq!(outcome.baseline.name, "BASELINE");
        assert!((outcome.baseline.objectives.normalized_runtime - 1.0).abs() < 1e-12);
        // Every frontier member is a space candidate and none dominates
        // another.
        for member in &outcome.frontier {
            assert!(space.candidates().contains(&member.genotype));
            for other in &outcome.frontier {
                assert!(!member.objectives.dominates(&other.objectives) || member == other);
            }
        }
    }

    #[test]
    fn random_and_evolutionary_runs_are_seed_deterministic() {
        let layer = tiny_layer();
        for strategy in [RandomSampling::new(6, 13), RandomSampling::new(6, 14)] {
            let a = DesignSearch::new(&capped_runner(), SearchSpace::explorer(), layer.clone())
                .run(&strategy)
                .unwrap();
            let b = DesignSearch::new(&capped_runner(), SearchSpace::explorer(), layer.clone())
                .run(&strategy)
                .unwrap();
            assert_eq!(a, b);
        }
        let strategy = Evolutionary::new(4, 2, 99);
        let a = DesignSearch::new(&capped_runner(), SearchSpace::explorer(), layer.clone())
            .run(&strategy)
            .unwrap();
        let b = DesignSearch::new(&capped_runner(), SearchSpace::explorer(), layer)
            .run(&strategy)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.generations.len(), 3, "init + 2 generations");
        assert_eq!(a.requested_evaluations, 4 * 3);
    }

    #[test]
    fn session_compare_prefers_dominating_designs() {
        let runner = capped_runner();
        let space = SearchSpace::builder()
            .with_pe_variants(vec![PeVariant::Baseline])
            .with_control_schemes(vec![ControlScheme::Base, ControlScheme::Pipe])
            .build()
            .unwrap();
        let layer = tiny_layer();
        let mut session = SearchSession::begin(&runner, &space, &layer).unwrap();
        let designs = session.evaluate(space.candidates()).unwrap();
        // Same geometry, same area; PIPE is strictly faster at equal or
        // lower energy, so it dominates BASE on this layer.
        let base = designs.iter().find(|d| d.name == "BASELINE").unwrap();
        let pipe = designs.iter().find(|d| d.name == "RASA-PIPE").unwrap();
        assert_eq!(session.compare(pipe, base), Ordering::Less);
        assert_eq!(session.compare(base, pipe), Ordering::Greater);
        assert_eq!(session.compare(base, base), Ordering::Equal);
        assert!(session.fitness(pipe) < session.fitness(base));
        assert_eq!(session.distinct_evaluated(), 2);
        assert_eq!(session.requested_evaluations(), 2);
        assert_eq!(session.baseline().name, "BASELINE");
        assert_eq!(session.space(), &space);
    }

    #[test]
    fn within_batch_duplicates_are_collapsed() {
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(32))
            .serial()
            .build()
            .unwrap();
        let space = SearchSpace::paper();
        let layer = tiny_layer();
        let mut session = SearchSession::begin(&runner, &space, &layer).unwrap();
        let genotype = space.candidates()[1];
        let results = session.evaluate(&[genotype, genotype, genotype]).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(session.requested_evaluations(), 3);
        assert_eq!(session.distinct_evaluated(), 1);
        // One cell for the baseline anchor, one for the candidate; the
        // in-batch duplicates never reached the runner.
        assert_eq!(runner.cache_stats().misses, 2);
    }
}
