//! The parameterized design space a search explores.
//!
//! A [`SearchSpace`] is four axes over [`SystolicConfig`] parameters — PE
//! variant, control scheme, array geometry and engine in-flight depth —
//! plus the validity rules that prune the raw cross product: Weight Load
//! Skip needs double-buffered PEs, the logical K extent must fold evenly
//! into the variant's multipliers-per-PE, and the array must still fit the
//! AMX-like register tile the trace generator emits. The surviving
//! [`Genotype`]s are enumerated once, in a deterministic axis-major order,
//! so every strategy (and every seeded random draw) indexes the same list.

use crate::{DesignPoint, SimError};
use rand::rngs::StdRng;
use rand::Rng;
use rasa_cpu::CpuConfig;
use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};
use rasa_trace::GemmKernelConfig;
use std::fmt;

/// One point of a [`SearchSpace`]: a complete, materializable systolic
/// configuration choice.
///
/// The geometry is stored as the **logical** K extent (`max_tk`, the K
/// positions the array covers, i.e. `rows × multipliers_per_pe`) rather
/// than physical rows, so the same geometry value is comparable across PE
/// variants — exactly the paper's convention of halving the rows of
/// double-multiplier arrays to keep the multiplier budget constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Genotype {
    /// Processing-element variant.
    pub pe: PeVariant,
    /// Control/pipelining scheme.
    pub control: ControlScheme,
    /// Logical K extent of the array (`rows × multipliers_per_pe`).
    pub max_tk: usize,
    /// Physical PE columns (the N extent).
    pub cols: usize,
    /// Engine in-flight window (`rasa_mm` instructions tracked at once) —
    /// the "buffer depth" axis.
    pub max_in_flight: usize,
    /// CPU cycles per engine cycle (fixed per space, not an axis).
    pub clock_ratio: u32,
}

impl Genotype {
    /// Physical PE rows this genotype materializes to.
    ///
    /// Meaningful only for valid genotypes (`max_tk` divisible by the
    /// variant's multipliers per PE); rounds down otherwise.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.max_tk / self.pe.multipliers_per_pe()
    }

    /// The deterministic design name: the paper label for paper-convention
    /// genotypes (`RASA-DMDB-WLS`, `BASELINE`, …), with explicit geometry
    /// (`@K64N32`) and in-flight (`+Q2`) suffixes exactly when the genotype
    /// deviates from the paper's 32-K × 16-N array and depth-8 window.
    #[must_use]
    pub fn label(&self) -> String {
        let reference = SystolicConfig::paper_baseline();
        let mut label = match (self.pe, self.control) {
            (PeVariant::Baseline, ControlScheme::Base) => "BASELINE".to_string(),
            (PeVariant::Baseline, c) => format!("RASA-{}", c.label()),
            (p, c) => format!("RASA-{}-{}", p.label(), c.label()),
        };
        if self.max_tk != reference.max_tk() || self.cols != reference.max_tn() {
            label.push_str(&format!("@K{}N{}", self.max_tk, self.cols));
        }
        if self.max_in_flight != reference.max_in_flight() {
            label.push_str(&format!("+Q{}", self.max_in_flight));
        }
        label
    }

    /// Materializes the genotype into a simulatable [`DesignPoint`] (with
    /// the evaluation's Skylake-like host core).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] when `max_tk` does not fold
    /// into the variant's multipliers per PE, and [`SimError::Design`] when
    /// the systolic configuration itself is invalid.
    pub fn materialize(&self) -> Result<DesignPoint, SimError> {
        if self.max_tk % self.pe.multipliers_per_pe() != 0 {
            return Err(SimError::InvalidExperiment {
                reason: format!(
                    "genotype K extent {} does not fold into {} multipliers per PE",
                    self.max_tk,
                    self.pe.multipliers_per_pe()
                ),
            });
        }
        let systolic = SystolicConfig::new(
            self.rows(),
            self.cols,
            self.pe,
            self.control,
            self.clock_ratio,
        )?
        .with_max_in_flight(self.max_in_flight);
        Ok(DesignPoint::new(
            self.label(),
            systolic,
            CpuConfig::skylake_like(),
        ))
    }
}

impl fmt::Display for Genotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The four-axis design space. Built with [`SearchSpace::builder`] (or the
/// [`paper`](SearchSpace::paper) / [`explorer`](SearchSpace::explorer)
/// presets); immutable afterwards, with the valid candidate list
/// pre-enumerated in deterministic axis-major order (variant → scheme →
/// geometry → depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    pe_variants: Vec<PeVariant>,
    control_schemes: Vec<ControlScheme>,
    /// `(max_tk, cols)` pairs: logical K extent × physical columns.
    geometries: Vec<(usize, usize)>,
    in_flight_depths: Vec<usize>,
    clock_ratio: u32,
    /// Minimum logical K extent: the register tile's K dimension (the
    /// engine rejects tiles taller than the array).
    tile_k: usize,
    /// Minimum column count: the register tile's N dimension.
    tile_n: usize,
    candidates: Vec<Genotype>,
}

impl SearchSpace {
    /// Starts building a space (kubecl-style typed config builder).
    #[must_use]
    pub fn builder() -> SearchSpaceBuilder {
        SearchSpaceBuilder::default()
    }

    /// The paper's own design space: every PE variant × control scheme at
    /// the evaluated geometry (logical 32-K × 16 columns, in-flight 8) —
    /// 14 valid candidates carrying the paper's design names.
    #[must_use]
    pub fn paper() -> Self {
        SearchSpace::builder()
            .build()
            .expect("paper space is always valid")
    }

    /// A wider exploration space: the paper combinations crossed with
    /// larger-than-paper geometries and shallow/deep in-flight windows —
    /// the default space of the `design_search` binary.
    #[must_use]
    pub fn explorer() -> Self {
        SearchSpace::builder()
            .with_geometries(vec![(32, 16), (64, 16), (32, 32)])
            .with_in_flight_depths(vec![2, 8])
            .build()
            .expect("explorer space is always valid")
    }

    /// The PE-variant axis.
    #[must_use]
    pub fn pe_variants(&self) -> &[PeVariant] {
        &self.pe_variants
    }

    /// The control-scheme axis.
    #[must_use]
    pub fn control_schemes(&self) -> &[ControlScheme] {
        &self.control_schemes
    }

    /// The geometry axis as `(max_tk, cols)` pairs.
    #[must_use]
    pub fn geometries(&self) -> &[(usize, usize)] {
        &self.geometries
    }

    /// The in-flight-depth axis.
    #[must_use]
    pub fn in_flight_depths(&self) -> &[usize] {
        &self.in_flight_depths
    }

    /// CPU cycles per engine cycle for every candidate.
    #[must_use]
    pub const fn clock_ratio(&self) -> u32 {
        self.clock_ratio
    }

    /// All valid candidates, in deterministic axis-major enumeration order.
    #[must_use]
    pub fn candidates(&self) -> &[Genotype] {
        &self.candidates
    }

    /// The number of valid candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space has no valid candidate (never true for a built
    /// space; kept for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Whether a genotype satisfies every validity rule of this space:
    /// scheme supported by the variant, K extent folding evenly into the
    /// multipliers per PE, and an array at least as large as the register
    /// tile the trace generator emits.
    #[must_use]
    pub fn is_valid(&self, genotype: &Genotype) -> bool {
        genotype.control.is_supported_by(genotype.pe)
            && genotype.max_tk % genotype.pe.multipliers_per_pe() == 0
            && genotype.max_tk >= self.tile_k
            && genotype.cols >= self.tile_n
    }

    /// Draws a uniformly random candidate (by enumeration index).
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> Genotype {
        self.candidates[rng.gen_range(0..self.candidates.len())]
    }

    /// Mutates a parent genotype: each axis is independently resampled
    /// from its axis values with probability `rate`, then the result is
    /// repaired back into validity (an unsupported control scheme falls
    /// back to the first axis scheme the new variant supports; if no
    /// repair produces a valid genotype the mutation collapses to the
    /// parent). RNG draws happen in a fixed order, so the operation is
    /// deterministic for a given seed state.
    #[must_use]
    pub fn mutate(&self, parent: &Genotype, rng: &mut StdRng, rate: f64) -> Genotype {
        let mut child = *parent;
        if rng.gen::<f64>() < rate {
            child.pe = self.pe_variants[rng.gen_range(0..self.pe_variants.len())];
        }
        if rng.gen::<f64>() < rate {
            child.control = self.control_schemes[rng.gen_range(0..self.control_schemes.len())];
        }
        if rng.gen::<f64>() < rate {
            let (max_tk, cols) = self.geometries[rng.gen_range(0..self.geometries.len())];
            child.max_tk = max_tk;
            child.cols = cols;
        }
        if rng.gen::<f64>() < rate {
            child.max_in_flight =
                self.in_flight_depths[rng.gen_range(0..self.in_flight_depths.len())];
        }
        if !self.is_valid(&child) {
            if let Some(scheme) = self
                .control_schemes
                .iter()
                .find(|scheme| scheme.is_supported_by(child.pe))
            {
                child.control = *scheme;
            }
            if !self.is_valid(&child) {
                child = *parent;
            }
        }
        child
    }
}

impl fmt::Display for SearchSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PE variants x {} schemes x {} geometries x {} depths = {} valid candidates",
            self.pe_variants.len(),
            self.control_schemes.len(),
            self.geometries.len(),
            self.in_flight_depths.len(),
            self.candidates.len()
        )
    }
}

/// Builder for [`SearchSpace`]: optional axes, validated and enumerated at
/// [`build`](Self::build).
#[derive(Debug, Default)]
pub struct SearchSpaceBuilder {
    pe_variants: Option<Vec<PeVariant>>,
    control_schemes: Option<Vec<ControlScheme>>,
    geometries: Option<Vec<(usize, usize)>>,
    in_flight_depths: Option<Vec<usize>>,
    clock_ratio: Option<u32>,
}

impl SearchSpaceBuilder {
    /// Restricts the PE-variant axis (default: all four variants).
    #[must_use]
    pub fn with_pe_variants(mut self, variants: Vec<PeVariant>) -> Self {
        self.pe_variants = Some(variants);
        self
    }

    /// Restricts the control-scheme axis (default: all four schemes).
    #[must_use]
    pub fn with_control_schemes(mut self, schemes: Vec<ControlScheme>) -> Self {
        self.control_schemes = Some(schemes);
        self
    }

    /// Sets the geometry axis as `(max_tk, cols)` pairs (default: the
    /// paper's logical 32-K × 16 columns only).
    #[must_use]
    pub fn with_geometries(mut self, geometries: Vec<(usize, usize)>) -> Self {
        self.geometries = Some(geometries);
        self
    }

    /// Sets the in-flight-depth axis (default: the paper's depth of 8).
    #[must_use]
    pub fn with_in_flight_depths(mut self, depths: Vec<usize>) -> Self {
        self.in_flight_depths = Some(depths);
        self
    }

    /// Overrides the CPU-to-engine clock ratio (default 4, the paper's
    /// 500 MHz array under a 2 GHz core).
    #[must_use]
    pub fn with_clock_ratio(mut self, ratio: u32) -> Self {
        self.clock_ratio = Some(ratio);
        self
    }

    /// Validates the axes and enumerates the candidate list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for an empty axis, a zero
    /// dimension/depth/ratio, a geometry smaller than the register tile,
    /// or a space whose filtered cross product is empty.
    pub fn build(self) -> Result<SearchSpace, SimError> {
        let invalid = |reason: String| SimError::InvalidExperiment { reason };
        let reference = SystolicConfig::paper_baseline();
        let pe_variants = self.pe_variants.unwrap_or_else(|| PeVariant::all().into());
        let control_schemes = self
            .control_schemes
            .unwrap_or_else(|| ControlScheme::all().into());
        let geometries = self
            .geometries
            .unwrap_or_else(|| vec![(reference.max_tk(), reference.max_tn())]);
        let in_flight_depths = self
            .in_flight_depths
            .unwrap_or_else(|| vec![reference.max_in_flight()]);
        let clock_ratio = self.clock_ratio.unwrap_or(reference.clock_ratio());
        if pe_variants.is_empty()
            || control_schemes.is_empty()
            || geometries.is_empty()
            || in_flight_depths.is_empty()
        {
            return Err(invalid("every search axis needs at least one value".into()));
        }
        if clock_ratio == 0 {
            return Err(invalid("clock ratio must be at least 1".into()));
        }
        if in_flight_depths.contains(&0) {
            return Err(invalid("in-flight depth must be at least 1".into()));
        }
        // The trace generator emits AMX-like register tiles; an array
        // smaller than one tile cannot execute the trace at all, so such
        // geometries are configuration errors rather than filterable
        // candidates.
        let tile = GemmKernelConfig::amx_like().tiling;
        for &(max_tk, cols) in &geometries {
            if max_tk < tile.tk || cols < tile.tn {
                return Err(invalid(format!(
                    "geometry K{max_tk}xN{cols} cannot hold the {}x{} register tile",
                    tile.tk, tile.tn
                )));
            }
        }

        let mut space = SearchSpace {
            pe_variants,
            control_schemes,
            geometries,
            in_flight_depths,
            clock_ratio,
            tile_k: tile.tk,
            tile_n: tile.tn,
            candidates: Vec::new(),
        };
        for &pe in &space.pe_variants {
            for &control in &space.control_schemes {
                for &(max_tk, cols) in &space.geometries {
                    for &max_in_flight in &space.in_flight_depths {
                        let genotype = Genotype {
                            pe,
                            control,
                            max_tk,
                            cols,
                            max_in_flight,
                            clock_ratio: space.clock_ratio,
                        };
                        if space.is_valid(&genotype) {
                            space.candidates.push(genotype);
                        }
                    }
                }
            }
        }
        if space.candidates.is_empty() {
            return Err(invalid(
                "no valid candidate survives the validity filter".into(),
            ));
        }
        Ok(space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_space_enumerates_the_fourteen_named_designs() {
        let space = SearchSpace::paper();
        assert_eq!(space.len(), 14);
        assert!(!space.is_empty());
        let labels: Vec<String> = space.candidates().iter().map(Genotype::label).collect();
        for expected in [
            "BASELINE",
            "RASA-PIPE",
            "RASA-WLBP",
            "RASA-DM-PIPE",
            "RASA-DM-WLBP",
            "RASA-DB-WLS",
            "RASA-DMDB-WLBP",
            "RASA-DMDB-WLS",
        ] {
            assert!(labels.contains(&expected.to_string()), "missing {expected}");
        }
        // No WLS without double buffering ever enumerates.
        assert!(space.candidates().iter().all(|g| space.is_valid(g)));
        assert!(space.to_string().contains("14 valid candidates"));
    }

    #[test]
    fn labels_suffix_non_paper_geometry_and_depth() {
        let genotype = Genotype {
            pe: PeVariant::Dmdb,
            control: ControlScheme::Wls,
            max_tk: 64,
            cols: 32,
            max_in_flight: 2,
            clock_ratio: 4,
        };
        assert_eq!(genotype.label(), "RASA-DMDB-WLS@K64N32+Q2");
        assert_eq!(genotype.to_string(), genotype.label());
        let paper = Genotype {
            max_tk: 32,
            cols: 16,
            max_in_flight: 8,
            ..genotype
        };
        assert_eq!(paper.label(), "RASA-DMDB-WLS");
    }

    #[test]
    fn materialize_follows_the_row_convention() {
        let space = SearchSpace::explorer();
        for genotype in space.candidates() {
            let design = genotype.materialize().unwrap();
            let systolic = design.systolic();
            assert_eq!(systolic.max_tk(), genotype.max_tk);
            assert_eq!(systolic.max_tn(), genotype.cols);
            assert_eq!(systolic.max_in_flight(), genotype.max_in_flight);
            assert_eq!(design.name(), genotype.label());
            // Double-multiplier variants halve the physical rows.
            assert_eq!(
                systolic.rows(),
                genotype.max_tk / genotype.pe.multipliers_per_pe()
            );
        }
    }

    #[test]
    fn odd_k_extent_does_not_fold_into_dm() {
        let genotype = Genotype {
            pe: PeVariant::Dm,
            control: ControlScheme::Pipe,
            max_tk: 34,
            cols: 16,
            max_in_flight: 8,
            clock_ratio: 4,
        };
        assert_eq!(genotype.rows(), 17);
        assert!(genotype.materialize().is_ok(), "34 folds into 2");
        let odd = Genotype {
            max_tk: 33,
            ..genotype
        };
        assert!(matches!(
            odd.materialize(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn builder_rejects_degenerate_axes() {
        assert!(SearchSpace::builder()
            .with_pe_variants(vec![])
            .build()
            .is_err());
        assert!(SearchSpace::builder()
            .with_in_flight_depths(vec![0])
            .build()
            .is_err());
        assert!(SearchSpace::builder().with_clock_ratio(0).build().is_err());
        // A geometry smaller than the 32x16 register tile is rejected
        // outright rather than silently filtered.
        assert!(SearchSpace::builder()
            .with_geometries(vec![(16, 16)])
            .build()
            .is_err());
        assert!(SearchSpace::builder()
            .with_geometries(vec![(32, 8)])
            .build()
            .is_err());
        // An all-invalid cross product is rejected.
        assert!(SearchSpace::builder()
            .with_pe_variants(vec![PeVariant::Baseline])
            .with_control_schemes(vec![ControlScheme::Wls])
            .build()
            .is_err());
    }

    #[test]
    fn sampling_and_mutation_stay_inside_the_space() {
        let space = SearchSpace::explorer();
        let mut rng = StdRng::seed_from_u64(11);
        let mut genotype = space.sample(&mut rng);
        for _ in 0..200 {
            assert!(space.is_valid(&genotype));
            assert!(space.candidates().contains(&genotype));
            genotype = space.mutate(&genotype, &mut rng, 0.7);
        }
    }

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let space = SearchSpace::explorer();
        let walk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut genotype = space.sample(&mut rng);
            let mut path = vec![genotype];
            for _ in 0..32 {
                genotype = space.mutate(&genotype, &mut rng, 0.5);
                path.push(genotype);
            }
            path
        };
        assert_eq!(walk(3), walk(3));
        assert_ne!(walk(3), walk(4), "different seeds should diverge");
    }

    #[test]
    fn mutation_repairs_unsupported_schemes() {
        // A space where WLS exists but Baseline PEs do not support it: the
        // repair path must land on a supported scheme, never the parent's
        // invalid combination.
        let space = SearchSpace::builder()
            .with_pe_variants(vec![PeVariant::Baseline, PeVariant::Dmdb])
            .with_control_schemes(vec![ControlScheme::Wlbp, ControlScheme::Wls])
            .build()
            .unwrap();
        let parent = Genotype {
            pe: PeVariant::Dmdb,
            control: ControlScheme::Wls,
            max_tk: 32,
            cols: 16,
            max_in_flight: 8,
            clock_ratio: 4,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let child = space.mutate(&parent, &mut rng, 1.0);
            assert!(space.is_valid(&child), "invalid child {child:?}");
        }
    }
}
