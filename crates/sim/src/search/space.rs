//! The parameterized design space a search explores.
//!
//! A [`SearchSpace`] is four hardware axes over [`SystolicConfig`]
//! parameters — PE variant, control scheme, array geometry and engine
//! in-flight depth — optionally crossed with the kernel axes of the
//! generated micro-kernel ([`KernelAxes`]: register-block shape, matmul
//! order, loop order, unroll). Validity rules prune the raw cross product:
//! Weight Load Skip needs double-buffered PEs, the logical K extent must
//! fold evenly into the variant's multipliers-per-PE, the array must still
//! fit the register tile the trace generator emits, and a kernel's register
//! block must fit the ISA tile-register budget. In joint mode a cost-model
//! pre-filter additionally discards kernel combinations whose
//! instruction-class costs are dominated by another combination destined
//! for the same hardware genotype, so obviously wasteful kernels never
//! reach full simulation; an opt-in cache-aware widening
//! ([`SearchSpaceBuilder::with_cache_aware_kernel_filter`]) adds A/B-panel
//! traffic proxies for a concrete GEMM shape to the dominance test, letting
//! shape-matched blocks survive. The surviving [`Genotype`]s are enumerated once,
//! in a deterministic axis-major order, so every strategy (and every
//! seeded random draw) indexes the same list.

use crate::{DesignPoint, SimError};
use rand::rngs::StdRng;
use rand::Rng;
use rasa_cpu::CpuConfig;
use rasa_isa::IsaConfig;
use rasa_numeric::{GemmShape, RegisterBlock};
use rasa_systolic::{ControlScheme, PeVariant, SystolicConfig};
use rasa_trace::{GemmKernelConfig, KernelSchemeBuilder, LoopOrder, MatmulOrder};
use std::fmt;

/// The kernel half of a joint genotype: the searchable structural axes of
/// the generated micro-kernel.
///
/// `None` on a [`Genotype`] means the candidate runs the scheme-derived
/// default kernel (hardware-only search); `Some` carries an explicit choice
/// of register-block shape, intra-block `rasa_mm` emission order,
/// accumulator-residency loop order and unrolling (a fully unrolled kernel
/// emits no scalar loop overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelGenotype {
    /// Register-block shape (A tiles × B tiles held live per block).
    pub block: RegisterBlock,
    /// Intra-block `rasa_mm` emission order.
    pub matmul_order: MatmulOrder,
    /// Accumulator residency across the K reduction.
    pub loop_order: LoopOrder,
    /// Fully unrolled kernel: no scalar pointer-bump/branch overhead.
    pub unroll: bool,
}

impl Default for KernelGenotype {
    fn default() -> Self {
        KernelGenotype {
            block: RegisterBlock::algorithm_one(),
            matmul_order: MatmulOrder::WeightPaired,
            loop_order: LoopOrder::KInnermost,
            unroll: false,
        }
    }
}

impl KernelGenotype {
    /// Whether this is the Algorithm-1 kernel the hardware-only search
    /// runs implicitly.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == KernelGenotype::default()
    }

    /// Compact deterministic label: the block shape plus `-il`
    /// (interleaved order), `-ni` (N-innermost loop) and `-u` (unrolled)
    /// markers exactly when the axis deviates from Algorithm 1. The
    /// default kernel's label is plain `2x2`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = self.block.to_string();
        if self.matmul_order != MatmulOrder::WeightPaired {
            label.push_str("-il");
        }
        if self.loop_order != LoopOrder::KInnermost {
            label.push_str("-ni");
        }
        if self.unroll {
            label.push_str("-u");
        }
        label
    }

    /// Tile registers this kernel's register block occupies.
    #[must_use]
    pub const fn tile_regs_needed(&self) -> usize {
        self.block.tile_regs_needed()
    }

    /// Instruction-class cost proxies per useful `rasa_mm`, from the same
    /// closed-form model as `GemmKernelConfig::block_len_estimate`:
    /// `(memory, scalar)` — operand loads plus per-K-step accumulator
    /// spill traffic, and modeled scalar bookkeeping (three pointer bumps
    /// plus a branch per K step unless unrolled). Matrix work is exactly
    /// one `rasa_mm` per unit of work for every kernel, so it never
    /// differentiates candidates.
    #[must_use]
    pub fn cost_proxies(&self) -> (f64, f64) {
        let acc = (self.block.m * self.block.n) as f64;
        let loads = (self.block.m + self.block.n) as f64 / acc;
        let spill = match self.loop_order {
            LoopOrder::KInnermost => 0.0,
            LoopOrder::NInnermost => 2.0,
        };
        let scalar = if self.unroll { 0.0 } else { 4.0 / acc };
        (loads + spill, scalar)
    }

    /// Cost-model dominance between two kernels destined for the *same*
    /// hardware genotype: `other` is at least as cheap in every
    /// instruction class and strictly cheaper in one. The matmul order
    /// never enters the proxies (it changes the reuse *pattern*, not any
    /// count), so order variants are never pruned against each other —
    /// ranking them takes full simulation.
    #[must_use]
    pub fn is_cost_dominated_by(&self, other: &KernelGenotype) -> bool {
        let (mem_a, scalar_a) = self.cost_proxies();
        let (mem_b, scalar_b) = other.cost_proxies();
        mem_b <= mem_a && scalar_b <= scalar_a && (mem_b < mem_a || scalar_b < scalar_a)
    }

    /// Cache-hierarchy traffic proxies per useful `rasa_mm` for a concrete
    /// GEMM shape: `(a_traffic, b_traffic)`, the fraction of the A
    /// (respectively B) register-tile grid re-fetched per unit of matrix
    /// work when this block streams the AMX-like tile grid.
    ///
    /// A block holding `n` live B tiles sweeps the whole A panel once per
    /// N block column — `ceil(Nt / n)` passes over `Nt` columns of useful
    /// work — and symmetrically `ceil(Mt / m)` passes over the B panel.
    /// The ceiling is what makes the model shape-dependent: a block whose
    /// extent does not divide the tile grid pays a ragged final pass, so
    /// rankings can flip between shapes where the shape-blind
    /// [`cost_proxies`](Self::cost_proxies) model must abstain.
    #[must_use]
    pub fn cache_traffic_proxies(&self, shape: GemmShape) -> (f64, f64) {
        let tile = GemmKernelConfig::amx_like().tiling;
        let (mt, _, nt) = shape.tile_counts(tile.tm, tile.tk, tile.tn);
        let (mt, nt) = (mt.max(1), nt.max(1));
        let a_passes = nt.div_ceil(self.block.n);
        let b_passes = mt.div_ceil(self.block.m);
        (a_passes as f64 / nt as f64, b_passes as f64 / mt as f64)
    }

    /// Shape-aware widening of
    /// [`is_cost_dominated_by`](Self::is_cost_dominated_by): dominance
    /// additionally requires `other` to be at least as cheap in A- and
    /// B-panel cache traffic for `shape`, and strictly cheaper in at least
    /// one of the four proxies. More dimensions mean *fewer* prunes — a
    /// kernel that loses on instruction counts can survive by touching
    /// less memory for this particular shape.
    #[must_use]
    pub fn is_cache_cost_dominated_by(&self, other: &KernelGenotype, shape: GemmShape) -> bool {
        let (mem_a, scalar_a) = self.cost_proxies();
        let (mem_b, scalar_b) = other.cost_proxies();
        let (at_a, bt_a) = self.cache_traffic_proxies(shape);
        let (at_b, bt_b) = other.cache_traffic_proxies(shape);
        let no_worse = mem_b <= mem_a && scalar_b <= scalar_a && at_b <= at_a && bt_b <= bt_a;
        let better = mem_b < mem_a || scalar_b < scalar_a || at_b < at_a || bt_b < bt_a;
        no_worse && better
    }

    /// Materializes the kernel genotype into a validated
    /// [`GemmKernelConfig`] carrying `matmul_cap`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] when the axes are invalid (never for a
    /// genotype drawn from a built space).
    pub fn to_kernel_config(
        &self,
        matmul_cap: Option<usize>,
    ) -> Result<GemmKernelConfig, SimError> {
        let mut builder = KernelSchemeBuilder::new()
            .with_block(self.block.m, self.block.n)
            .with_matmul_order(self.matmul_order)
            .with_loop_order(self.loop_order);
        if self.unroll {
            builder = builder.without_scalar_overhead();
        }
        if let Some(cap) = matmul_cap {
            builder = builder.with_max_matmuls(cap);
        }
        Ok(builder.build()?)
    }
}

impl fmt::Display for KernelGenotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The kernel axes of a joint search space: the values crossed into every
/// hardware genotype when kernel search is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAxes {
    /// Register-block shapes.
    pub blocks: Vec<RegisterBlock>,
    /// Intra-block `rasa_mm` emission orders.
    pub matmul_orders: Vec<MatmulOrder>,
    /// Accumulator-residency loop orders.
    pub loop_orders: Vec<LoopOrder>,
    /// Unroll choices (`true` = fully unrolled, no scalar overhead).
    pub unroll: Vec<bool>,
}

impl Default for KernelAxes {
    /// Every register block that fits the 8-register AMX-like budget,
    /// both matmul orders, both loop orders, rolled and unrolled.
    fn default() -> Self {
        KernelAxes {
            blocks: vec![
                RegisterBlock::algorithm_one(),
                RegisterBlock { m: 1, n: 2 },
                RegisterBlock { m: 2, n: 1 },
                RegisterBlock { m: 1, n: 3 },
                RegisterBlock { m: 3, n: 1 },
            ],
            matmul_orders: vec![MatmulOrder::WeightPaired, MatmulOrder::Interleaved],
            loop_orders: vec![LoopOrder::KInnermost, LoopOrder::NInnermost],
            unroll: vec![false, true],
        }
    }
}

impl KernelAxes {
    /// Raw cross-product size before the cost-model pre-filter.
    #[must_use]
    pub fn combinations(&self) -> usize {
        self.blocks.len() * self.matmul_orders.len() * self.loop_orders.len() * self.unroll.len()
    }

    /// Axis-major enumeration (block → order → loop order → unroll).
    fn enumerate(&self) -> Vec<KernelGenotype> {
        let mut combos = Vec::with_capacity(self.combinations());
        for &block in &self.blocks {
            for &matmul_order in &self.matmul_orders {
                for &loop_order in &self.loop_orders {
                    for &unroll in &self.unroll {
                        combos.push(KernelGenotype {
                            block,
                            matmul_order,
                            loop_order,
                            unroll,
                        });
                    }
                }
            }
        }
        combos
    }
}

/// One point of a [`SearchSpace`]: a complete, materializable systolic
/// configuration choice.
///
/// The geometry is stored as the **logical** K extent (`max_tk`, the K
/// positions the array covers, i.e. `rows × multipliers_per_pe`) rather
/// than physical rows, so the same geometry value is comparable across PE
/// variants — exactly the paper's convention of halving the rows of
/// double-multiplier arrays to keep the multiplier budget constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Genotype {
    /// Processing-element variant.
    pub pe: PeVariant,
    /// Control/pipelining scheme.
    pub control: ControlScheme,
    /// Logical K extent of the array (`rows × multipliers_per_pe`).
    pub max_tk: usize,
    /// Physical PE columns (the N extent).
    pub cols: usize,
    /// Engine in-flight window (`rasa_mm` instructions tracked at once) —
    /// the "buffer depth" axis.
    pub max_in_flight: usize,
    /// CPU cycles per engine cycle (fixed per space, not an axis).
    pub clock_ratio: u32,
    /// Kernel half of the genotype: `None` in hardware-only spaces (the
    /// scheme-derived default kernel), `Some` in joint spaces.
    pub kernel: Option<KernelGenotype>,
}

impl Genotype {
    /// Physical PE rows this genotype materializes to.
    ///
    /// Meaningful only for valid genotypes (`max_tk` divisible by the
    /// variant's multipliers per PE); rounds down otherwise.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.max_tk / self.pe.multipliers_per_pe()
    }

    /// The deterministic design name: the paper label for paper-convention
    /// genotypes (`RASA-DMDB-WLS`, `BASELINE`, …), with explicit geometry
    /// (`@K64N32`) and in-flight (`+Q2`) suffixes exactly when the genotype
    /// deviates from the paper's 32-K × 16-N array and depth-8 window.
    #[must_use]
    pub fn label(&self) -> String {
        let reference = SystolicConfig::paper_baseline();
        let mut label = match (self.pe, self.control) {
            (PeVariant::Baseline, ControlScheme::Base) => "BASELINE".to_string(),
            (PeVariant::Baseline, c) => format!("RASA-{}", c.label()),
            (p, c) => format!("RASA-{}-{}", p.label(), c.label()),
        };
        if self.max_tk != reference.max_tk() || self.cols != reference.max_tn() {
            label.push_str(&format!("@K{}N{}", self.max_tk, self.cols));
        }
        if self.max_in_flight != reference.max_in_flight() {
            label.push_str(&format!("+Q{}", self.max_in_flight));
        }
        if let Some(kernel) = &self.kernel {
            if !kernel.is_default() {
                label.push_str(&format!("*{}", kernel.label()));
            }
        }
        label
    }

    /// The kernel override this genotype carries, materialized as a
    /// validated [`GemmKernelConfig`] carrying `matmul_cap` — `None` when
    /// the genotype runs the runner's default kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] when the kernel axes are invalid (never
    /// for a genotype drawn from a built space).
    pub fn kernel_config(
        &self,
        matmul_cap: Option<usize>,
    ) -> Result<Option<GemmKernelConfig>, SimError> {
        match &self.kernel {
            None => Ok(None),
            Some(kernel) => Ok(Some(kernel.to_kernel_config(matmul_cap)?)),
        }
    }

    /// Materializes the genotype into a simulatable [`DesignPoint`] (with
    /// the evaluation's Skylake-like host core).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] when `max_tk` does not fold
    /// into the variant's multipliers per PE, and [`SimError::Design`] when
    /// the systolic configuration itself is invalid.
    pub fn materialize(&self) -> Result<DesignPoint, SimError> {
        if self.max_tk % self.pe.multipliers_per_pe() != 0 {
            return Err(SimError::InvalidExperiment {
                reason: format!(
                    "genotype K extent {} does not fold into {} multipliers per PE",
                    self.max_tk,
                    self.pe.multipliers_per_pe()
                ),
            });
        }
        let systolic = SystolicConfig::new(
            self.rows(),
            self.cols,
            self.pe,
            self.control,
            self.clock_ratio,
        )?
        .with_max_in_flight(self.max_in_flight);
        Ok(DesignPoint::new(
            self.label(),
            systolic,
            CpuConfig::skylake_like(),
        ))
    }
}

impl fmt::Display for Genotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The four-axis design space. Built with [`SearchSpace::builder`] (or the
/// [`paper`](SearchSpace::paper) / [`explorer`](SearchSpace::explorer)
/// presets); immutable afterwards, with the valid candidate list
/// pre-enumerated in deterministic axis-major order (variant → scheme →
/// geometry → depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    pe_variants: Vec<PeVariant>,
    control_schemes: Vec<ControlScheme>,
    /// `(max_tk, cols)` pairs: logical K extent × physical columns.
    geometries: Vec<(usize, usize)>,
    in_flight_depths: Vec<usize>,
    clock_ratio: u32,
    /// Minimum logical K extent: the register tile's K dimension (the
    /// engine rejects tiles taller than the array).
    tile_k: usize,
    /// Minimum column count: the register tile's N dimension.
    tile_n: usize,
    /// Kernel axes when the space searches the joint hardware × kernel
    /// space; `None` for hardware-only spaces.
    kernel_axes: Option<KernelAxes>,
    /// Kernel combinations surviving the cost-model pre-filter (empty in
    /// hardware-only spaces), in deterministic axis-major order.
    kernel_candidates: Vec<KernelGenotype>,
    candidates: Vec<Genotype>,
}

impl SearchSpace {
    /// Starts building a space (kubecl-style typed config builder).
    #[must_use]
    pub fn builder() -> SearchSpaceBuilder {
        SearchSpaceBuilder::default()
    }

    /// The paper's own design space: every PE variant × control scheme at
    /// the evaluated geometry (logical 32-K × 16 columns, in-flight 8) —
    /// 14 valid candidates carrying the paper's design names.
    #[must_use]
    pub fn paper() -> Self {
        SearchSpace::builder()
            .build()
            .expect("paper space is always valid")
    }

    /// A wider exploration space: the paper combinations crossed with
    /// larger-than-paper geometries and shallow/deep in-flight windows —
    /// the default space of the `design_search` binary.
    #[must_use]
    pub fn explorer() -> Self {
        SearchSpace::builder()
            .with_geometries(vec![(32, 16), (64, 16), (32, 32)])
            .with_in_flight_depths(vec![2, 8])
            .build()
            .expect("explorer space is always valid")
    }

    /// The [`explorer`](SearchSpace::explorer) space crossed with the
    /// default [`KernelAxes`]: the joint hardware × kernel space behind
    /// `design_search --kernel-axes`.
    #[must_use]
    pub fn explorer_joint() -> Self {
        SearchSpace::builder()
            .with_geometries(vec![(32, 16), (64, 16), (32, 32)])
            .with_in_flight_depths(vec![2, 8])
            .with_kernel_axes()
            .build()
            .expect("joint explorer space is always valid")
    }

    /// The PE-variant axis.
    #[must_use]
    pub fn pe_variants(&self) -> &[PeVariant] {
        &self.pe_variants
    }

    /// The control-scheme axis.
    #[must_use]
    pub fn control_schemes(&self) -> &[ControlScheme] {
        &self.control_schemes
    }

    /// The geometry axis as `(max_tk, cols)` pairs.
    #[must_use]
    pub fn geometries(&self) -> &[(usize, usize)] {
        &self.geometries
    }

    /// The in-flight-depth axis.
    #[must_use]
    pub fn in_flight_depths(&self) -> &[usize] {
        &self.in_flight_depths
    }

    /// CPU cycles per engine cycle for every candidate.
    #[must_use]
    pub const fn clock_ratio(&self) -> u32 {
        self.clock_ratio
    }

    /// The kernel axes when this space searches the joint hardware ×
    /// kernel space (`None` for hardware-only spaces).
    #[must_use]
    pub fn kernel_axes(&self) -> Option<&KernelAxes> {
        self.kernel_axes.as_ref()
    }

    /// Whether the space crosses kernel axes into every hardware genotype.
    #[must_use]
    pub fn is_joint(&self) -> bool {
        self.kernel_axes.is_some()
    }

    /// Kernel combinations surviving the cost-model pre-filter, in
    /// deterministic axis-major order (empty for hardware-only spaces).
    #[must_use]
    pub fn kernel_candidates(&self) -> &[KernelGenotype] {
        &self.kernel_candidates
    }

    /// Kernel combinations the cost-model pre-filter discarded before any
    /// simulation: raw axis cross product minus the survivors (0 for
    /// hardware-only spaces).
    #[must_use]
    pub fn kernel_cost_pruned(&self) -> usize {
        self.kernel_axes
            .as_ref()
            .map_or(0, |axes| axes.combinations() - self.kernel_candidates.len())
    }

    /// All valid candidates, in deterministic axis-major enumeration order.
    #[must_use]
    pub fn candidates(&self) -> &[Genotype] {
        &self.candidates
    }

    /// The number of valid candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space has no valid candidate (never true for a built
    /// space; kept for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Whether a genotype satisfies every validity rule of this space:
    /// scheme supported by the variant, K extent folding evenly into the
    /// multipliers per PE, an array at least as large as the register tile
    /// the trace generator emits, and a kernel half matching the space's
    /// mode — absent in hardware-only spaces, one of the cost-filter
    /// survivors in joint spaces.
    #[must_use]
    pub fn is_valid(&self, genotype: &Genotype) -> bool {
        let kernel_ok = match (&self.kernel_axes, &genotype.kernel) {
            (None, None) => true,
            (Some(_), Some(kernel)) => self.kernel_candidates.contains(kernel),
            _ => false,
        };
        kernel_ok
            && genotype.control.is_supported_by(genotype.pe)
            && genotype.max_tk % genotype.pe.multipliers_per_pe() == 0
            && genotype.max_tk >= self.tile_k
            && genotype.cols >= self.tile_n
    }

    /// Draws a uniformly random candidate (by enumeration index).
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> Genotype {
        self.candidates[rng.gen_range(0..self.candidates.len())]
    }

    /// Mutates a parent genotype: each axis is independently resampled
    /// from its axis values with probability `rate`, then the result is
    /// repaired back into validity (an unsupported control scheme falls
    /// back to the first axis scheme the new variant supports; if no
    /// repair produces a valid genotype the mutation collapses to the
    /// parent). RNG draws happen in a fixed order, so the operation is
    /// deterministic for a given seed state.
    #[must_use]
    pub fn mutate(&self, parent: &Genotype, rng: &mut StdRng, rate: f64) -> Genotype {
        let mut child = *parent;
        if rng.gen::<f64>() < rate {
            child.pe = self.pe_variants[rng.gen_range(0..self.pe_variants.len())];
        }
        if rng.gen::<f64>() < rate {
            child.control = self.control_schemes[rng.gen_range(0..self.control_schemes.len())];
        }
        if rng.gen::<f64>() < rate {
            let (max_tk, cols) = self.geometries[rng.gen_range(0..self.geometries.len())];
            child.max_tk = max_tk;
            child.cols = cols;
        }
        if rng.gen::<f64>() < rate {
            child.max_in_flight =
                self.in_flight_depths[rng.gen_range(0..self.in_flight_depths.len())];
        }
        if let (Some(axes), Some(mut kernel)) = (&self.kernel_axes, child.kernel) {
            if rng.gen::<f64>() < rate {
                kernel.block = axes.blocks[rng.gen_range(0..axes.blocks.len())];
            }
            if rng.gen::<f64>() < rate {
                kernel.matmul_order =
                    axes.matmul_orders[rng.gen_range(0..axes.matmul_orders.len())];
            }
            if rng.gen::<f64>() < rate {
                kernel.loop_order = axes.loop_orders[rng.gen_range(0..axes.loop_orders.len())];
            }
            if rng.gen::<f64>() < rate {
                kernel.unroll = axes.unroll[rng.gen_range(0..axes.unroll.len())];
            }
            // Repair: a combination the cost-model pre-filter pruned snaps
            // to the survivor sharing the most-significant mutated axes.
            if !self.kernel_candidates.contains(&kernel) {
                kernel = *self
                    .kernel_candidates
                    .iter()
                    .find(|s| s.block == kernel.block && s.matmul_order == kernel.matmul_order)
                    .or_else(|| {
                        self.kernel_candidates
                            .iter()
                            .find(|s| s.matmul_order == kernel.matmul_order)
                    })
                    .unwrap_or(&self.kernel_candidates[0]);
            }
            child.kernel = Some(kernel);
        }
        if !self.is_valid(&child) {
            if let Some(scheme) = self
                .control_schemes
                .iter()
                .find(|scheme| scheme.is_supported_by(child.pe))
            {
                child.control = *scheme;
            }
            if !self.is_valid(&child) {
                child = *parent;
            }
        }
        child
    }
}

impl fmt::Display for SearchSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PE variants x {} schemes x {} geometries x {} depths",
            self.pe_variants.len(),
            self.control_schemes.len(),
            self.geometries.len(),
            self.in_flight_depths.len(),
        )?;
        if self.kernel_axes.is_some() {
            write!(
                f,
                " x {} kernel schemes ({} cost-dominated pruned)",
                self.kernel_candidates.len(),
                self.kernel_cost_pruned()
            )?;
        }
        write!(f, " = {} valid candidates", self.candidates.len())
    }
}

/// Builder for [`SearchSpace`]: optional axes, validated and enumerated at
/// [`build`](Self::build).
#[derive(Debug, Default)]
pub struct SearchSpaceBuilder {
    pe_variants: Option<Vec<PeVariant>>,
    control_schemes: Option<Vec<ControlScheme>>,
    geometries: Option<Vec<(usize, usize)>>,
    in_flight_depths: Option<Vec<usize>>,
    clock_ratio: Option<u32>,
    kernel_axes: Option<KernelAxes>,
    cache_filter_shape: Option<GemmShape>,
}

impl SearchSpaceBuilder {
    /// Restricts the PE-variant axis (default: all four variants).
    #[must_use]
    pub fn with_pe_variants(mut self, variants: Vec<PeVariant>) -> Self {
        self.pe_variants = Some(variants);
        self
    }

    /// Restricts the control-scheme axis (default: all four schemes).
    #[must_use]
    pub fn with_control_schemes(mut self, schemes: Vec<ControlScheme>) -> Self {
        self.control_schemes = Some(schemes);
        self
    }

    /// Sets the geometry axis as `(max_tk, cols)` pairs (default: the
    /// paper's logical 32-K × 16 columns only).
    #[must_use]
    pub fn with_geometries(mut self, geometries: Vec<(usize, usize)>) -> Self {
        self.geometries = Some(geometries);
        self
    }

    /// Sets the in-flight-depth axis (default: the paper's depth of 8).
    #[must_use]
    pub fn with_in_flight_depths(mut self, depths: Vec<usize>) -> Self {
        self.in_flight_depths = Some(depths);
        self
    }

    /// Overrides the CPU-to-engine clock ratio (default 4, the paper's
    /// 500 MHz array under a 2 GHz core).
    #[must_use]
    pub fn with_clock_ratio(mut self, ratio: u32) -> Self {
        self.clock_ratio = Some(ratio);
        self
    }

    /// Enables joint hardware × kernel search with the default
    /// [`KernelAxes`] (every register block fitting the tile-register
    /// budget, both matmul orders, both loop orders, rolled and unrolled).
    #[must_use]
    pub fn with_kernel_axes(self) -> Self {
        self.with_custom_kernel_axes(KernelAxes::default())
    }

    /// Enables joint hardware × kernel search over explicit kernel axes.
    #[must_use]
    pub fn with_custom_kernel_axes(mut self, axes: KernelAxes) -> Self {
        self.kernel_axes = Some(axes);
        self
    }

    /// Widens the joint-mode cost-model pre-filter with the
    /// cache-hierarchy traffic proxies evaluated for `shape`
    /// ([`KernelGenotype::is_cache_cost_dominated_by`]): kernels then also
    /// survive by touching less A- or B-panel memory on that shape, even
    /// when their instruction-class counts lose.
    ///
    /// Opt-in: without this call the pre-filter uses only the shape-blind
    /// instruction-class proxies, so existing spaces (and the goldens
    /// pinned to them) are unchanged. Has no effect on hardware-only
    /// spaces.
    #[must_use]
    pub fn with_cache_aware_kernel_filter(mut self, shape: GemmShape) -> Self {
        self.cache_filter_shape = Some(shape);
        self
    }

    /// Validates the axes and enumerates the candidate list. In joint
    /// mode the kernel axes are validated against the ISA tile-register
    /// budget, then the cost-model pre-filter discards every kernel
    /// combination dominated (per unit of matrix work, in every
    /// instruction class) by another combination destined for the same
    /// hardware genotype — those kernels can never win and are pruned
    /// before any simulation is spent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidExperiment`] for an empty axis, a zero
    /// dimension/depth/ratio, a geometry smaller than the register tile,
    /// a kernel register block exceeding the ISA tile-register budget,
    /// or a space whose filtered cross product is empty.
    pub fn build(self) -> Result<SearchSpace, SimError> {
        let invalid = |reason: String| SimError::InvalidExperiment { reason };
        let reference = SystolicConfig::paper_baseline();
        let pe_variants = self.pe_variants.unwrap_or_else(|| PeVariant::all().into());
        let control_schemes = self
            .control_schemes
            .unwrap_or_else(|| ControlScheme::all().into());
        let geometries = self
            .geometries
            .unwrap_or_else(|| vec![(reference.max_tk(), reference.max_tn())]);
        let in_flight_depths = self
            .in_flight_depths
            .unwrap_or_else(|| vec![reference.max_in_flight()]);
        let clock_ratio = self.clock_ratio.unwrap_or(reference.clock_ratio());
        if pe_variants.is_empty()
            || control_schemes.is_empty()
            || geometries.is_empty()
            || in_flight_depths.is_empty()
        {
            return Err(invalid("every search axis needs at least one value".into()));
        }
        if clock_ratio == 0 {
            return Err(invalid("clock ratio must be at least 1".into()));
        }
        if in_flight_depths.contains(&0) {
            return Err(invalid("in-flight depth must be at least 1".into()));
        }
        // The trace generator emits AMX-like register tiles; an array
        // smaller than one tile cannot execute the trace at all, so such
        // geometries are configuration errors rather than filterable
        // candidates.
        let tile = GemmKernelConfig::amx_like().tiling;
        for &(max_tk, cols) in &geometries {
            if max_tk < tile.tk || cols < tile.tn {
                return Err(invalid(format!(
                    "geometry K{max_tk}xN{cols} cannot hold the {}x{} register tile",
                    tile.tk, tile.tn
                )));
            }
        }

        // Kernel axes: the register block must fit the ISA tile-register
        // budget (accumulators + A tiles + B tiles), exactly the rule the
        // trace generator enforces at emission time — an oversized block
        // is a configuration error, not a filterable candidate.
        let mut kernel_candidates = Vec::new();
        if let Some(axes) = &self.kernel_axes {
            if axes.blocks.is_empty()
                || axes.matmul_orders.is_empty()
                || axes.loop_orders.is_empty()
                || axes.unroll.is_empty()
            {
                return Err(invalid("every kernel axis needs at least one value".into()));
            }
            let budget = IsaConfig::amx_like().num_tile_regs();
            for block in &axes.blocks {
                if block.m == 0 || block.n == 0 {
                    return Err(invalid(format!(
                        "kernel register block {block} has a zero dimension"
                    )));
                }
                if block.tile_regs_needed() > budget {
                    return Err(invalid(format!(
                        "kernel register block {block} needs {} tile registers, \
                         the ISA provides {budget}",
                        block.tile_regs_needed()
                    )));
                }
            }
            // Cost-model pre-filter: every kernel combination is destined
            // for every hardware genotype, so a combination dominated in
            // every per-matmul instruction-class proxy by another can
            // never beat it on any candidate and is dropped here, before
            // any simulation.
            let combos = axes.enumerate();
            let cache_shape = self.cache_filter_shape;
            let dominated = |combo: &KernelGenotype, other: &KernelGenotype| match cache_shape {
                Some(shape) => combo.is_cache_cost_dominated_by(other, shape),
                None => combo.is_cost_dominated_by(other),
            };
            kernel_candidates = combos
                .iter()
                .filter(|combo| !combos.iter().any(|other| dominated(combo, other)))
                .copied()
                .collect();
        }

        let mut space = SearchSpace {
            pe_variants,
            control_schemes,
            geometries,
            in_flight_depths,
            clock_ratio,
            tile_k: tile.tk,
            tile_n: tile.tn,
            kernel_axes: self.kernel_axes,
            kernel_candidates,
            candidates: Vec::new(),
        };
        let kernel_options: Vec<Option<KernelGenotype>> = if space.kernel_axes.is_some() {
            space.kernel_candidates.iter().copied().map(Some).collect()
        } else {
            vec![None]
        };
        for &pe in &space.pe_variants {
            for &control in &space.control_schemes {
                for &(max_tk, cols) in &space.geometries {
                    for &max_in_flight in &space.in_flight_depths {
                        for &kernel in &kernel_options {
                            let genotype = Genotype {
                                pe,
                                control,
                                max_tk,
                                cols,
                                max_in_flight,
                                clock_ratio: space.clock_ratio,
                                kernel,
                            };
                            if space.is_valid(&genotype) {
                                space.candidates.push(genotype);
                            }
                        }
                    }
                }
            }
        }
        if space.candidates.is_empty() {
            return Err(invalid(
                "no valid candidate survives the validity filter".into(),
            ));
        }
        Ok(space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_space_enumerates_the_fourteen_named_designs() {
        let space = SearchSpace::paper();
        assert_eq!(space.len(), 14);
        assert!(!space.is_empty());
        let labels: Vec<String> = space.candidates().iter().map(Genotype::label).collect();
        for expected in [
            "BASELINE",
            "RASA-PIPE",
            "RASA-WLBP",
            "RASA-DM-PIPE",
            "RASA-DM-WLBP",
            "RASA-DB-WLS",
            "RASA-DMDB-WLBP",
            "RASA-DMDB-WLS",
        ] {
            assert!(labels.contains(&expected.to_string()), "missing {expected}");
        }
        // No WLS without double buffering ever enumerates.
        assert!(space.candidates().iter().all(|g| space.is_valid(g)));
        assert!(space.to_string().contains("14 valid candidates"));
    }

    #[test]
    fn labels_suffix_non_paper_geometry_and_depth() {
        let genotype = Genotype {
            pe: PeVariant::Dmdb,
            control: ControlScheme::Wls,
            max_tk: 64,
            cols: 32,
            max_in_flight: 2,
            clock_ratio: 4,
            kernel: None,
        };
        assert_eq!(genotype.label(), "RASA-DMDB-WLS@K64N32+Q2");
        assert_eq!(genotype.to_string(), genotype.label());
        let paper = Genotype {
            max_tk: 32,
            cols: 16,
            max_in_flight: 8,
            ..genotype
        };
        assert_eq!(paper.label(), "RASA-DMDB-WLS");
    }

    #[test]
    fn materialize_follows_the_row_convention() {
        let space = SearchSpace::explorer();
        for genotype in space.candidates() {
            let design = genotype.materialize().unwrap();
            let systolic = design.systolic();
            assert_eq!(systolic.max_tk(), genotype.max_tk);
            assert_eq!(systolic.max_tn(), genotype.cols);
            assert_eq!(systolic.max_in_flight(), genotype.max_in_flight);
            assert_eq!(design.name(), genotype.label());
            // Double-multiplier variants halve the physical rows.
            assert_eq!(
                systolic.rows(),
                genotype.max_tk / genotype.pe.multipliers_per_pe()
            );
        }
    }

    #[test]
    fn odd_k_extent_does_not_fold_into_dm() {
        let genotype = Genotype {
            pe: PeVariant::Dm,
            control: ControlScheme::Pipe,
            max_tk: 34,
            cols: 16,
            max_in_flight: 8,
            clock_ratio: 4,
            kernel: None,
        };
        assert_eq!(genotype.rows(), 17);
        assert!(genotype.materialize().is_ok(), "34 folds into 2");
        let odd = Genotype {
            max_tk: 33,
            ..genotype
        };
        assert!(matches!(
            odd.materialize(),
            Err(SimError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn builder_rejects_degenerate_axes() {
        assert!(SearchSpace::builder()
            .with_pe_variants(vec![])
            .build()
            .is_err());
        assert!(SearchSpace::builder()
            .with_in_flight_depths(vec![0])
            .build()
            .is_err());
        assert!(SearchSpace::builder().with_clock_ratio(0).build().is_err());
        // A geometry smaller than the 32x16 register tile is rejected
        // outright rather than silently filtered.
        assert!(SearchSpace::builder()
            .with_geometries(vec![(16, 16)])
            .build()
            .is_err());
        assert!(SearchSpace::builder()
            .with_geometries(vec![(32, 8)])
            .build()
            .is_err());
        // An all-invalid cross product is rejected.
        assert!(SearchSpace::builder()
            .with_pe_variants(vec![PeVariant::Baseline])
            .with_control_schemes(vec![ControlScheme::Wls])
            .build()
            .is_err());
    }

    #[test]
    fn sampling_and_mutation_stay_inside_the_space() {
        let space = SearchSpace::explorer();
        let mut rng = StdRng::seed_from_u64(11);
        let mut genotype = space.sample(&mut rng);
        for _ in 0..200 {
            assert!(space.is_valid(&genotype));
            assert!(space.candidates().contains(&genotype));
            genotype = space.mutate(&genotype, &mut rng, 0.7);
        }
    }

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let space = SearchSpace::explorer();
        let walk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut genotype = space.sample(&mut rng);
            let mut path = vec![genotype];
            for _ in 0..32 {
                genotype = space.mutate(&genotype, &mut rng, 0.5);
                path.push(genotype);
            }
            path
        };
        assert_eq!(walk(3), walk(3));
        assert_ne!(walk(3), walk(4), "different seeds should diverge");
    }

    #[test]
    fn joint_space_crosses_the_kernel_survivors_into_every_hardware_point() {
        let hardware = SearchSpace::explorer();
        let joint = SearchSpace::explorer_joint();
        assert!(joint.is_joint());
        assert!(!hardware.is_joint());
        // Cost pre-filter: of the 5×2×2×2 = 40 raw combinations, the 2×2
        // K-innermost unrolled kernel dominates every narrower block,
        // every spilling loop order and every rolled kernel in both
        // instruction-class proxies — only the matmul-order variants
        // (which the cost model cannot rank) survive.
        assert_eq!(joint.kernel_axes().unwrap().combinations(), 40);
        assert_eq!(joint.kernel_cost_pruned(), 38);
        let survivors = joint.kernel_candidates();
        assert_eq!(survivors.len(), 2);
        for survivor in survivors {
            assert_eq!(survivor.block, RegisterBlock::algorithm_one());
            assert_eq!(survivor.loop_order, LoopOrder::KInnermost);
            assert!(survivor.unroll);
        }
        assert_eq!(survivors[0].matmul_order, MatmulOrder::WeightPaired);
        assert_eq!(survivors[1].matmul_order, MatmulOrder::Interleaved);
        // Every hardware point appears once per surviving kernel.
        assert_eq!(joint.len(), hardware.len() * survivors.len());
        assert!(joint.candidates().iter().all(|g| joint.is_valid(g)));
        assert!(joint
            .candidates()
            .iter()
            .all(|g| g.kernel.is_some_and(|k| survivors.contains(&k))));
        // A hardware-only genotype is invalid in the joint space and vice
        // versa.
        assert!(!joint.is_valid(&hardware.candidates()[0]));
        assert!(!hardware.is_valid(&joint.candidates()[0]));
        assert!(joint.to_string().contains("2 kernel schemes"));
        assert!(joint.to_string().contains("38 cost-dominated pruned"));
    }

    #[test]
    fn kernel_cost_model_ranks_what_it_can_and_abstains_where_it_cannot() {
        let base = KernelGenotype::default();
        assert!(base.is_default());
        assert_eq!(base.cost_proxies(), (1.0, 1.0));
        assert_eq!(base.tile_regs_needed(), 8);
        // Unrolling strictly removes scalar work at equal memory traffic.
        let unrolled = KernelGenotype {
            unroll: true,
            ..base
        };
        assert!(base.is_cost_dominated_by(&unrolled));
        assert!(!unrolled.is_cost_dominated_by(&base));
        // Spilling accumulators every K step strictly adds memory traffic.
        let spilled = KernelGenotype {
            loop_order: LoopOrder::NInnermost,
            ..base
        };
        assert!(spilled.is_cost_dominated_by(&base));
        // Narrow blocks amortize loads and scalar work over fewer matmuls.
        let narrow = KernelGenotype {
            block: RegisterBlock { m: 1, n: 2 },
            ..base
        };
        assert!(narrow.is_cost_dominated_by(&base));
        // The matmul order changes no instruction count: the model
        // abstains, full simulation decides.
        let interleaved = KernelGenotype {
            matmul_order: MatmulOrder::Interleaved,
            ..base
        };
        assert!(!interleaved.is_cost_dominated_by(&base));
        assert!(!base.is_cost_dominated_by(&interleaved));
        // A kernel never dominates itself.
        assert!(!base.is_cost_dominated_by(&base));
    }

    #[test]
    fn cache_aware_filter_widens_the_dlrm2_survivor_set() {
        // DLRM-2's fc GEMM (M=512, K=1024, N=64) covers Mt=32 x Nt=4
        // register tiles, so a 3x1 block sweeps the B panel in
        // ceil(32/3)=11 passes against the 2x2 block's 16: cheaper B
        // traffic that the shape-blind model cannot see. The widened
        // filter must let it through while still pruning everything that
        // loses on every axis.
        let shape = GemmShape::new(512, 1024, 64);
        let tall = KernelGenotype {
            block: RegisterBlock { m: 3, n: 1 },
            unroll: true,
            ..KernelGenotype::default()
        };
        let square = KernelGenotype {
            unroll: true,
            ..KernelGenotype::default()
        };
        assert!(tall.is_cost_dominated_by(&square), "shape-blind prunes 3x1");
        assert!(
            !tall.is_cache_cost_dominated_by(&square, shape),
            "3x1 touches less B-panel memory on DLRM-2, so it survives"
        );
        let (_, b_tall) = tall.cache_traffic_proxies(shape);
        let (_, b_square) = square.cache_traffic_proxies(shape);
        assert!((b_tall - 11.0 / 32.0).abs() < 1e-12);
        assert!((b_square - 0.5).abs() < 1e-12);

        let space = SearchSpace::builder()
            .with_kernel_axes()
            .with_cache_aware_kernel_filter(shape)
            .build()
            .expect("cache-aware joint space is valid");
        let survivors = space.kernel_candidates();
        let shapes: Vec<(usize, usize, MatmulOrder)> = survivors
            .iter()
            .map(|k| (k.block.m, k.block.n, k.matmul_order))
            .collect();
        assert_eq!(
            shapes,
            vec![
                (2, 2, MatmulOrder::WeightPaired),
                (2, 2, MatmulOrder::Interleaved),
                (3, 1, MatmulOrder::WeightPaired),
                (3, 1, MatmulOrder::Interleaved),
            ],
            "survivors: {survivors:?}"
        );
        for kernel in survivors {
            assert_eq!(kernel.loop_order, LoopOrder::KInnermost);
            assert!(kernel.unroll, "rolled kernels still lose on every axis");
        }
        assert_eq!(space.kernel_cost_pruned(), 36);
        assert!(space.to_string().contains("4 kernel schemes"));
        assert!(space.to_string().contains("36 cost-dominated pruned"));

        // The default (shape-blind) joint space is untouched by the new
        // machinery: 2 survivors, exactly as the goldens pin.
        assert_eq!(SearchSpace::explorer_joint().kernel_candidates().len(), 2);
    }

    #[test]
    fn kernel_genotypes_label_and_materialize() {
        let base = KernelGenotype::default();
        assert_eq!(base.label(), "2x2");
        let exotic = KernelGenotype {
            block: RegisterBlock { m: 1, n: 3 },
            matmul_order: MatmulOrder::Interleaved,
            loop_order: LoopOrder::NInnermost,
            unroll: true,
        };
        assert_eq!(exotic.label(), "1x3-il-ni-u");
        assert_eq!(exotic.to_string(), exotic.label());

        let config = exotic.to_kernel_config(Some(128)).unwrap();
        assert_eq!(config.scheme.block, RegisterBlock { m: 1, n: 3 });
        assert_eq!(config.matmul_order, MatmulOrder::Interleaved);
        assert_eq!(config.scheme.loop_order, LoopOrder::NInnermost);
        assert!(!config.emit_scalar_overhead);
        assert_eq!(config.max_matmuls, Some(128));
        // The default kernel genotype materializes to the default kernel.
        let default_config = base.to_kernel_config(None).unwrap();
        assert_eq!(default_config, GemmKernelConfig::amx_like());

        // Genotype labels suffix exactly the non-default kernels.
        let joint = SearchSpace::explorer_joint();
        let unrolled_paper = joint
            .candidates()
            .iter()
            .find(|g| g.label() == "RASA-DMDB-WLS*2x2-u")
            .expect("the unrolled paper-geometry candidate exists");
        assert_eq!(
            unrolled_paper.kernel.unwrap().matmul_order,
            MatmulOrder::WeightPaired
        );
        let mut with_default_kernel = *unrolled_paper;
        with_default_kernel.kernel = Some(KernelGenotype::default());
        assert_eq!(with_default_kernel.label(), "RASA-DMDB-WLS");
        assert_eq!(
            with_default_kernel
                .kernel_config(Some(64))
                .unwrap()
                .unwrap(),
            GemmKernelConfig::amx_like().with_max_matmuls(64)
        );
        assert!(Genotype {
            kernel: None,
            ..with_default_kernel
        }
        .kernel_config(Some(64))
        .unwrap()
        .is_none());
    }

    #[test]
    fn joint_mutation_stays_inside_the_space_and_is_deterministic() {
        let space = SearchSpace::explorer_joint();
        let mut rng = StdRng::seed_from_u64(23);
        let mut genotype = space.sample(&mut rng);
        for _ in 0..300 {
            assert!(space.is_valid(&genotype), "left the space: {genotype:?}");
            assert!(space.candidates().contains(&genotype));
            genotype = space.mutate(&genotype, &mut rng, 0.7);
        }
        let walk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut genotype = space.sample(&mut rng);
            let mut path = vec![genotype];
            for _ in 0..32 {
                genotype = space.mutate(&genotype, &mut rng, 0.5);
                path.push(genotype);
            }
            path
        };
        assert_eq!(walk(7), walk(7));
        assert_ne!(walk(7), walk(8), "different seeds should diverge");
        // Both matmul orders remain reachable through mutation.
        let orders: std::collections::HashSet<_> = walk(7)
            .iter()
            .chain(walk(8).iter())
            .map(|g| g.kernel.unwrap().matmul_order)
            .collect();
        assert_eq!(orders.len(), 2);
    }

    #[test]
    fn kernel_axes_are_validated_against_the_register_budget() {
        // A 3×2 block needs 6 + 3 + 2 = 11 tile registers; the AMX-like
        // ISA provides 8 — a configuration error, not a filterable
        // candidate.
        let oversized = KernelAxes {
            blocks: vec![RegisterBlock { m: 3, n: 2 }],
            ..KernelAxes::default()
        };
        assert!(matches!(
            SearchSpace::builder()
                .with_custom_kernel_axes(oversized)
                .build(),
            Err(SimError::InvalidExperiment { .. })
        ));
        let zero = KernelAxes {
            blocks: vec![RegisterBlock { m: 0, n: 2 }],
            ..KernelAxes::default()
        };
        assert!(SearchSpace::builder()
            .with_custom_kernel_axes(zero)
            .build()
            .is_err());
        let empty = KernelAxes {
            unroll: vec![],
            ..KernelAxes::default()
        };
        assert!(SearchSpace::builder()
            .with_custom_kernel_axes(empty)
            .build()
            .is_err());
    }

    #[test]
    fn mutation_repairs_unsupported_schemes() {
        // A space where WLS exists but Baseline PEs do not support it: the
        // repair path must land on a supported scheme, never the parent's
        // invalid combination.
        let space = SearchSpace::builder()
            .with_pe_variants(vec![PeVariant::Baseline, PeVariant::Dmdb])
            .with_control_schemes(vec![ControlScheme::Wlbp, ControlScheme::Wls])
            .build()
            .unwrap();
        let parent = Genotype {
            pe: PeVariant::Dmdb,
            control: ControlScheme::Wls,
            max_tk: 32,
            cols: 16,
            max_in_flight: 8,
            clock_ratio: 4,
            kernel: None,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let child = space.mutate(&parent, &mut rng, 1.0);
            assert!(space.is_valid(&child), "invalid child {child:?}");
        }
    }
}
