//! The deterministic result document of a search run.
//!
//! A [`SearchOutcome`] contains only configuration-determined data — the
//! strategy, the space, the baseline anchor, per-generation progress and
//! the final frontier. Scheduling-dependent observations (wall-clock
//! times, cache hit counters) are deliberately excluded, so the JSON
//! rendering is byte-identical across runs with the same seed: the
//! property the CI golden diff and the determinism proptest lock down.

use super::{EvaluatedDesign, SearchSpace};
use crate::json::{JsonValue, ToJson};
use std::fmt;

/// One generation's snapshot in a [`SearchOutcome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationRecord {
    /// Generation index (0 = the initial draw / the only batch).
    pub generation: usize,
    /// Evaluations requested by this generation (revisits included).
    pub evaluations: usize,
    /// Frontier size after the generation.
    pub frontier_size: usize,
    /// Best (smallest) normalized runtime on the frontier so far.
    pub best_normalized_runtime: f64,
}

/// The complete, deterministic result of one strategy run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Strategy name (`grid`, `random`, `evolve`, or a custom strategy's).
    pub strategy: String,
    /// Workload the candidates were evaluated on.
    pub workload: String,
    /// The searched space.
    pub space: SearchSpace,
    /// The paper-baseline anchor (normalized runtime exactly 1).
    pub baseline: EvaluatedDesign,
    /// Evaluations requested across the run, revisits included.
    pub requested_evaluations: usize,
    /// Distinct genotypes evaluated.
    pub distinct_evaluated: usize,
    /// Per-generation progress, in order.
    pub generations: Vec<GenerationRecord>,
    /// The final non-dominated set, best normalized runtime first.
    pub frontier: Vec<EvaluatedDesign>,
}

impl SearchOutcome {
    /// The frontier member names, in frontier order.
    #[must_use]
    pub fn frontier_names(&self) -> Vec<&str> {
        self.frontier.iter().map(|m| m.name.as_str()).collect()
    }

    /// The frontier member with the best normalized runtime, if any.
    #[must_use]
    pub fn fastest(&self) -> Option<&EvaluatedDesign> {
        self.frontier.first()
    }
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "design-space search ({}) on {}: {} candidates, {} evaluations ({} distinct)",
            self.strategy,
            self.workload,
            self.space.len(),
            self.requested_evaluations,
            self.distinct_evaluated
        )?;
        writeln!(
            f,
            "baseline {}: {} cycles, {:.3} mm2, {:.3e} J",
            self.baseline.name,
            self.baseline.core_cycles,
            self.baseline.objectives.area_mm2,
            self.baseline.objectives.energy_joules
        )?;
        if self.generations.len() > 1 {
            writeln!(
                f,
                "{:>4} {:>11} {:>9} {:>10}",
                "gen", "evaluations", "frontier", "best norm"
            )?;
            for record in &self.generations {
                writeln!(
                    f,
                    "{:>4} {:>11} {:>9} {:>10.3}",
                    record.generation,
                    record.evaluations,
                    record.frontier_size,
                    record.best_normalized_runtime
                )?;
            }
        }
        writeln!(f, "pareto frontier ({} points):", self.frontier.len())?;
        writeln!(
            f,
            "{:>26} {:>12} {:>10} {:>10} {:>12}",
            "design", "cycles", "norm", "area mm2", "energy J"
        )?;
        for member in &self.frontier {
            writeln!(
                f,
                "{:>26} {:>12} {:>10.3} {:>10.3} {:>12.3e}",
                member.name,
                member.core_cycles,
                member.objectives.normalized_runtime,
                member.objectives.area_mm2,
                member.objectives.energy_joules
            )?;
        }
        Ok(())
    }
}

impl ToJson for EvaluatedDesign {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("name".into(), JsonValue::string(&self.name)),
            ("pe".into(), JsonValue::string(self.genotype.pe.label())),
            (
                "control".into(),
                JsonValue::string(self.genotype.control.label()),
            ),
            (
                "max_tk".into(),
                JsonValue::number_from_usize(self.genotype.max_tk),
            ),
            (
                "rows".into(),
                JsonValue::number_from_usize(self.genotype.rows()),
            ),
            (
                "cols".into(),
                JsonValue::number_from_usize(self.genotype.cols),
            ),
            (
                "max_in_flight".into(),
                JsonValue::number_from_usize(self.genotype.max_in_flight),
            ),
        ];
        // Joint-space designs carry their kernel axes; hardware-only
        // documents (including every pinned golden) stay byte-identical.
        if let Some(kernel) = self.genotype.kernel {
            members.push((
                "kernel".into(),
                JsonValue::Object(vec![
                    (
                        "block_m".into(),
                        JsonValue::number_from_usize(kernel.block.m),
                    ),
                    (
                        "block_n".into(),
                        JsonValue::number_from_usize(kernel.block.n),
                    ),
                    (
                        "matmul_order".into(),
                        JsonValue::string(kernel.matmul_order.label()),
                    ),
                    (
                        "loop_order".into(),
                        JsonValue::string(kernel.loop_order.label()),
                    ),
                    ("unroll".into(), JsonValue::Bool(kernel.unroll)),
                ]),
            ));
        }
        members.extend([
            (
                "core_cycles".into(),
                JsonValue::number_from_u64(self.core_cycles),
            ),
            (
                "normalized_runtime".into(),
                JsonValue::number_from_f64(self.objectives.normalized_runtime),
            ),
            (
                "area_mm2".into(),
                JsonValue::number_from_f64(self.objectives.area_mm2),
            ),
            (
                "energy_joules".into(),
                JsonValue::number_from_f64(self.objectives.energy_joules),
            ),
        ]);
        JsonValue::Object(members)
    }
}

impl ToJson for SearchSpace {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            (
                "pe_variants".into(),
                JsonValue::Array(
                    self.pe_variants()
                        .iter()
                        .map(|pe| JsonValue::string(pe.label()))
                        .collect(),
                ),
            ),
            (
                "control_schemes".into(),
                JsonValue::Array(
                    self.control_schemes()
                        .iter()
                        .map(|scheme| JsonValue::string(scheme.label()))
                        .collect(),
                ),
            ),
            (
                "geometries".into(),
                JsonValue::Array(
                    self.geometries()
                        .iter()
                        .map(|&(max_tk, cols)| {
                            JsonValue::Array(vec![
                                JsonValue::number_from_usize(max_tk),
                                JsonValue::number_from_usize(cols),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "in_flight_depths".into(),
                JsonValue::Array(
                    self.in_flight_depths()
                        .iter()
                        .map(|&depth| JsonValue::number_from_usize(depth))
                        .collect(),
                ),
            ),
            (
                "clock_ratio".into(),
                JsonValue::number_from_u64(u64::from(self.clock_ratio())),
            ),
        ];
        // The kernel axes appear only for joint spaces, so hardware-only
        // search documents (and the pinned golden) keep their exact bytes.
        if let Some(axes) = self.kernel_axes() {
            members.push((
                "kernel_axes".into(),
                JsonValue::Object(vec![
                    (
                        "blocks".into(),
                        JsonValue::Array(
                            axes.blocks
                                .iter()
                                .map(|block| {
                                    JsonValue::Array(vec![
                                        JsonValue::number_from_usize(block.m),
                                        JsonValue::number_from_usize(block.n),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "matmul_orders".into(),
                        JsonValue::Array(
                            axes.matmul_orders
                                .iter()
                                .map(|order| JsonValue::string(order.label()))
                                .collect(),
                        ),
                    ),
                    (
                        "loop_orders".into(),
                        JsonValue::Array(
                            axes.loop_orders
                                .iter()
                                .map(|order| JsonValue::string(order.label()))
                                .collect(),
                        ),
                    ),
                    (
                        "unroll".into(),
                        JsonValue::Array(axes.unroll.iter().map(|&u| JsonValue::Bool(u)).collect()),
                    ),
                    (
                        "combinations".into(),
                        JsonValue::number_from_usize(axes.combinations()),
                    ),
                    (
                        "cost_pruned".into(),
                        JsonValue::number_from_usize(self.kernel_cost_pruned()),
                    ),
                    (
                        "survivors".into(),
                        JsonValue::number_from_usize(self.kernel_candidates().len()),
                    ),
                ]),
            ));
        }
        members.push((
            "candidates".into(),
            JsonValue::number_from_usize(self.len()),
        ));
        JsonValue::Object(members)
    }
}

impl ToJson for GenerationRecord {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "generation".into(),
                JsonValue::number_from_usize(self.generation),
            ),
            (
                "evaluations".into(),
                JsonValue::number_from_usize(self.evaluations),
            ),
            (
                "frontier_size".into(),
                JsonValue::number_from_usize(self.frontier_size),
            ),
            (
                "best_normalized_runtime".into(),
                JsonValue::number_from_f64(self.best_normalized_runtime),
            ),
        ])
    }
}

impl ToJson for SearchOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("strategy".into(), JsonValue::string(&self.strategy)),
            ("workload".into(), JsonValue::string(&self.workload)),
            ("space".into(), self.space.to_json()),
            ("baseline".into(), self.baseline.to_json()),
            (
                "requested_evaluations".into(),
                JsonValue::number_from_usize(self.requested_evaluations),
            ),
            (
                "distinct_evaluated".into(),
                JsonValue::number_from_usize(self.distinct_evaluated),
            ),
            (
                "generations".into(),
                JsonValue::Array(self.generations.iter().map(ToJson::to_json).collect()),
            ),
            (
                "frontier".into(),
                JsonValue::Array(self.frontier.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{DesignSearch, ExhaustiveGrid};
    use crate::ExperimentRunner;
    use rasa_workloads::LayerSpec;

    fn grid_outcome() -> SearchOutcome {
        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(32))
            .build()
            .unwrap();
        let layer = LayerSpec::fc("TINY-FC", 32, 64, 64);
        DesignSearch::new(&runner, SearchSpace::paper(), layer)
            .run(&ExhaustiveGrid)
            .unwrap()
    }

    #[test]
    fn json_document_round_trips_byte_identically() {
        let outcome = grid_outcome();
        let json = outcome.to_json();
        let text = json.to_string_pretty();
        let reparsed = JsonValue::parse(&text).unwrap();
        assert_eq!(reparsed.to_string_pretty(), text);
        // Headline members are present and well-typed.
        assert_eq!(
            reparsed.get("strategy").and_then(JsonValue::as_str),
            Some("grid")
        );
        assert_eq!(
            reparsed
                .get("space")
                .and_then(|s| s.get("candidates"))
                .and_then(JsonValue::as_u64),
            Some(14)
        );
        let frontier = reparsed
            .get("frontier")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(frontier.len(), outcome.frontier.len());
        assert!(frontier[0].get("normalized_runtime").is_some());
    }

    #[test]
    fn kernel_members_appear_only_for_joint_documents() {
        // Hardware-only documents must not gain any kernel member — the
        // pinned golden/search.json depends on that — while joint documents
        // must describe both the axes and each design's chosen kernel.
        let hardware_only = grid_outcome().to_json().to_string_pretty();
        assert!(!hardware_only.contains("\"kernel\""));
        assert!(!hardware_only.contains("\"kernel_axes\""));

        let runner = ExperimentRunner::builder()
            .with_matmul_cap(Some(32))
            .build()
            .unwrap();
        let layer = LayerSpec::fc("TINY-FC", 32, 64, 64);
        let space = SearchSpace::builder()
            .with_geometries(vec![(32, 16)])
            .with_in_flight_depths(vec![2])
            .with_kernel_axes()
            .build()
            .unwrap();
        let outcome = DesignSearch::new(&runner, space, layer)
            .run(&ExhaustiveGrid)
            .unwrap();
        let json = outcome.to_json();
        let axes = json
            .get("space")
            .and_then(|s| s.get("kernel_axes"))
            .unwrap();
        assert_eq!(
            axes.get("combinations").and_then(JsonValue::as_u64),
            Some(40)
        );
        assert_eq!(axes.get("survivors").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            axes.get("cost_pruned").and_then(JsonValue::as_u64),
            Some(38)
        );
        let frontier = json.get("frontier").and_then(JsonValue::as_array).unwrap();
        let first_kernel = frontier[0].get("kernel").unwrap();
        assert_eq!(
            first_kernel.get("loop_order").and_then(JsonValue::as_str),
            Some("k-innermost")
        );
        assert_eq!(first_kernel.get("unroll"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn display_summarizes_the_run() {
        let outcome = grid_outcome();
        let text = outcome.to_string();
        assert!(text.contains("design-space search (grid) on TINY-FC"));
        assert!(text.contains("pareto frontier"));
        assert!(text.contains("BASELINE"));
        assert!(outcome
            .frontier_names()
            .contains(&outcome.fastest().unwrap().name.as_str()));
    }
}
