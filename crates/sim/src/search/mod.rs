//! Deterministic design-space search with a Pareto frontier.
//!
//! The paper evaluates eight hand-picked design points; this module turns
//! the simulation stack into an automated exploration engine over the full
//! parameterized space:
//!
//! * [`SearchSpace`] — four hardware axes over
//!   [`rasa_systolic::SystolicConfig`] parameters (PE variant, control
//!   scheme, logical-K × column geometry, engine in-flight depth),
//!   optionally crossed with the [`KernelAxes`] of the generated
//!   micro-kernel (register-block shape, matmul order, loop order,
//!   unroll) for joint hardware × kernel search, with validity filtering,
//!   a cost-model pre-filter that discards dominated kernel combinations
//!   before any simulation, and deterministic candidate enumeration;
//! * [`SearchStrategy`] implementations — [`ExhaustiveGrid`], seeded
//!   [`RandomSampling`] and a seeded [`Evolutionary`] loop (per-axis
//!   mutation + tournament selection);
//! * evaluation through the shared, memoizing
//!   [`ExperimentRunner`](crate::ExperimentRunner): batches run in
//!   parallel, and revisited genotypes are answered by the cell cache
//!   instead of re-simulated;
//! * a multi-objective [`ParetoFrontier`] over (normalized runtime,
//!   area mm², energy joules) with dominance pruning and deterministic
//!   tie-breaking.
//!
//! **Determinism is a hard requirement**: for a fixed seed, strategy
//! configuration and workload, repeated runs produce identical
//! [`SearchOutcome`]s and byte-identical JSON documents
//! ([`SearchOutcome::to_json`](crate::ToJson) excludes every
//! scheduling-dependent observation), which is what lets the `design_search`
//! binary join the CI golden-results regression scheme.

mod outcome;
mod pareto;
mod session;
mod space;
mod strategy;

pub use outcome::{GenerationRecord, SearchOutcome};
pub use pareto::{EvaluatedDesign, FrontierInsert, Objectives, ParetoFrontier};
pub use session::{DesignSearch, SearchSession};
pub use space::{Genotype, KernelAxes, KernelGenotype, SearchSpace, SearchSpaceBuilder};
pub use strategy::{Evolutionary, ExhaustiveGrid, RandomSampling, SearchStrategy};
