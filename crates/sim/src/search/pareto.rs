//! Multi-objective frontier maintenance.
//!
//! Every evaluated design collapses to three minimized objectives —
//! normalized runtime (vs the paper baseline on the same workload), array
//! area in mm² and simulated energy in joules — and the
//! [`ParetoFrontier`] keeps exactly the non-dominated set. Everything is
//! deterministic: objectives come from a deterministic simulation, members
//! are kept sorted under a total order ([`f64::total_cmp`] with the design
//! name as the final tie-break), and the resulting set is independent of
//! insertion order.

use super::Genotype;
use std::cmp::Ordering;
use std::fmt;

/// The three minimized objectives of a design evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Runtime normalized to the paper baseline on the same workload
    /// (< 1 is faster than the baseline).
    pub normalized_runtime: f64,
    /// Array area in mm².
    pub area_mm2: f64,
    /// Estimated energy of the simulated portion in joules.
    pub energy_joules: f64,
}

impl Objectives {
    /// Pareto dominance: at least as good on every objective and strictly
    /// better on at least one. Equal objective vectors do not dominate
    /// each other, so exact ties coexist on a frontier.
    #[must_use]
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.normalized_runtime <= other.normalized_runtime
            && self.area_mm2 <= other.area_mm2
            && self.energy_joules <= other.energy_joules;
        let better = self.normalized_runtime < other.normalized_runtime
            || self.area_mm2 < other.area_mm2
            || self.energy_joules < other.energy_joules;
        no_worse && better
    }
}

impl fmt::Display for Objectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "norm {:.3}, {:.3} mm2, {:.3e} J",
            self.normalized_runtime, self.area_mm2, self.energy_joules
        )
    }
}

/// One fully evaluated design: the genotype, its deterministic name, the
/// raw cycle count and the objective vector.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedDesign {
    /// The evaluated search-space point.
    pub genotype: Genotype,
    /// Deterministic design name (see [`Genotype::label`]).
    pub name: String,
    /// Full-workload core cycles (extrapolated when the trace was capped).
    pub core_cycles: u64,
    /// The minimized objective vector.
    pub objectives: Objectives,
}

impl EvaluatedDesign {
    /// The deterministic frontier order: best normalized runtime first,
    /// then area, then energy, then name. Total (all metrics are finite).
    #[must_use]
    pub fn frontier_order(&self, other: &EvaluatedDesign) -> Ordering {
        self.objectives
            .normalized_runtime
            .total_cmp(&other.objectives.normalized_runtime)
            .then_with(|| {
                self.objectives
                    .area_mm2
                    .total_cmp(&other.objectives.area_mm2)
            })
            .then_with(|| {
                self.objectives
                    .energy_joules
                    .total_cmp(&other.objectives.energy_joules)
            })
            .then_with(|| self.name.cmp(&other.name))
    }
}

impl fmt::Display for EvaluatedDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cycles ({})",
            self.name, self.core_cycles, self.objectives
        )
    }
}

/// What [`ParetoFrontier::insert`] did with a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierInsert {
    /// The candidate joined the frontier, pruning `pruned` now-dominated
    /// members.
    Added {
        /// Members removed because the new candidate dominates them.
        pruned: usize,
    },
    /// An existing member dominates the candidate; the frontier is
    /// unchanged.
    Dominated,
    /// The candidate's genotype is already a member (a revisited genotype
    /// re-evaluates to identical objectives); the frontier is unchanged.
    Revisited,
}

/// The non-dominated set over [`EvaluatedDesign`]s, kept in the
/// deterministic [`frontier_order`](EvaluatedDesign::frontier_order).
///
/// The maintained set is insertion-order independent: a candidate is kept
/// exactly when no other inserted candidate dominates it, whichever order
/// the insertions arrive in.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoFrontier {
    members: Vec<EvaluatedDesign>,
}

impl ParetoFrontier {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> Self {
        ParetoFrontier::default()
    }

    /// Offers a candidate to the frontier.
    pub fn insert(&mut self, candidate: EvaluatedDesign) -> FrontierInsert {
        if self
            .members
            .iter()
            .any(|member| member.genotype == candidate.genotype)
        {
            return FrontierInsert::Revisited;
        }
        if self
            .members
            .iter()
            .any(|member| member.objectives.dominates(&candidate.objectives))
        {
            return FrontierInsert::Dominated;
        }
        let before = self.members.len();
        self.members
            .retain(|member| !candidate.objectives.dominates(&member.objectives));
        let pruned = before - self.members.len();
        let position = self
            .members
            .partition_point(|member| member.frontier_order(&candidate) == Ordering::Less);
        self.members.insert(position, candidate);
        FrontierInsert::Added { pruned }
    }

    /// The non-dominated members, best normalized runtime first.
    #[must_use]
    pub fn members(&self) -> &[EvaluatedDesign] {
        &self.members
    }

    /// Number of frontier members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member with the best (smallest) normalized runtime, if any —
    /// the first member under the frontier order.
    #[must_use]
    pub fn fastest(&self) -> Option<&EvaluatedDesign> {
        self.members.first()
    }

    /// Looks a member up by design name.
    #[must_use]
    pub fn member(&self, name: &str) -> Option<&EvaluatedDesign> {
        self.members.iter().find(|member| member.name == name)
    }
}

impl fmt::Display for ParetoFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pareto frontier ({} points):", self.members.len())?;
        for member in &self.members {
            writeln!(f, "  {member}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_systolic::{ControlScheme, PeVariant};

    fn design(name: &str, runtime: f64, area: f64, energy: f64) -> EvaluatedDesign {
        // A name-derived in-flight depth keeps synthetic genotypes
        // distinct per name even when objectives repeat.
        let depth = 1 + name.bytes().map(usize::from).sum::<usize>();
        EvaluatedDesign {
            genotype: Genotype {
                pe: PeVariant::Baseline,
                control: ControlScheme::Base,
                max_tk: 32,
                cols: 16,
                max_in_flight: depth,
                clock_ratio: 4,
                kernel: None,
            },
            name: name.to_string(),
            core_cycles: (runtime * 1000.0) as u64,
            objectives: Objectives {
                normalized_runtime: runtime,
                area_mm2: area,
                energy_joules: energy,
            },
        }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let a = design("A", 0.5, 1.0, 1.0).objectives;
        let b = design("B", 0.6, 1.0, 1.0).objectives;
        let c = design("C", 0.6, 0.9, 1.1).objectives;
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Equal vectors never dominate.
        assert!(!a.dominates(&a));
        // Trade-offs (faster vs smaller) are incomparable.
        assert!(!b.dominates(&c));
        assert!(!c.dominates(&b));
        assert!(a.to_string().contains("norm 0.500"));
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let mut frontier = ParetoFrontier::new();
        assert!(frontier.is_empty());
        assert!(frontier.fastest().is_none());
        assert_eq!(
            frontier.insert(design("ONLY", 1.0, 1.0, 1.0)),
            FrontierInsert::Added { pruned: 0 }
        );
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier.fastest().unwrap().name, "ONLY");
        assert!(frontier.member("ONLY").is_some());
        assert!(frontier.member("OTHER").is_none());
    }

    #[test]
    fn dominated_candidates_are_rejected_and_members_pruned() {
        let mut frontier = ParetoFrontier::new();
        frontier.insert(design("MID", 0.5, 0.5, 0.5));
        // Strictly worse everywhere: rejected.
        assert_eq!(
            frontier.insert(design("WORSE", 0.6, 0.6, 0.6)),
            FrontierInsert::Dominated
        );
        assert_eq!(frontier.len(), 1);
        // Strictly better everywhere: replaces the member.
        assert_eq!(
            frontier.insert(design("BEST", 0.4, 0.4, 0.4)),
            FrontierInsert::Added { pruned: 1 }
        );
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier.members()[0].name, "BEST");
    }

    #[test]
    fn degenerate_all_dominated_input_collapses_to_one_point() {
        // A chain where each design dominates the next: whatever the
        // insertion order, only the best survives.
        let chain: Vec<EvaluatedDesign> = (0..5)
            .map(|i| {
                let v = 0.3 + 0.1 * i as f64;
                design(&format!("D{i}"), v, v, v)
            })
            .collect();
        for order in [[0, 1, 2, 3, 4], [4, 3, 2, 1, 0], [2, 0, 4, 1, 3]] {
            let mut frontier = ParetoFrontier::new();
            for &i in &order {
                frontier.insert(chain[i].clone());
            }
            assert_eq!(frontier.len(), 1, "order {order:?}");
            assert_eq!(frontier.members()[0].name, "D0");
        }
    }

    #[test]
    fn exact_ties_coexist_in_name_order() {
        let mut frontier = ParetoFrontier::new();
        frontier.insert(design("ZETA", 0.5, 1.0, 1.0));
        frontier.insert(design("ALPHA1", 0.5, 1.0, 1.0));
        assert_eq!(frontier.len(), 2);
        let names: Vec<&str> = frontier.members().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["ALPHA1", "ZETA"], "ties break by name");
    }

    #[test]
    fn revisited_genotypes_do_not_duplicate() {
        let mut frontier = ParetoFrontier::new();
        let point = design("SAME", 0.5, 1.0, 1.0);
        assert_eq!(
            frontier.insert(point.clone()),
            FrontierInsert::Added { pruned: 0 }
        );
        assert_eq!(frontier.insert(point), FrontierInsert::Revisited);
        assert_eq!(frontier.len(), 1);
    }

    #[test]
    fn frontier_is_insertion_order_independent() {
        // Three incomparable trade-off points plus two dominated ones; all
        // six permutations of a representative subset (and a few full
        // shuffles) must converge to the same sorted member list.
        let points = [
            design("FAST", 0.2, 1.2, 1.1),
            design("SMALL", 0.9, 0.4, 1.0),
            design("FRUGAL", 0.8, 1.1, 0.3),
            design("LOSER1", 0.95, 1.3, 1.2),
            design("LOSER2", 0.9, 0.5, 1.1),
        ];
        let orders = [
            [0, 1, 2, 3, 4],
            [4, 3, 2, 1, 0],
            [3, 4, 0, 2, 1],
            [1, 0, 4, 3, 2],
            [2, 4, 1, 0, 3],
            [4, 0, 3, 1, 2],
        ];
        let mut reference: Option<Vec<EvaluatedDesign>> = None;
        for order in orders {
            let mut frontier = ParetoFrontier::new();
            for &i in &order {
                frontier.insert(points[i].clone());
            }
            let members = frontier.members().to_vec();
            let names: Vec<&str> = members.iter().map(|m| m.name.as_str()).collect();
            assert_eq!(names, vec!["FAST", "FRUGAL", "SMALL"], "order {order:?}");
            match &reference {
                None => reference = Some(members),
                Some(expected) => assert_eq!(&members, expected, "order {order:?}"),
            }
        }
    }

    #[test]
    fn display_lists_members() {
        let mut frontier = ParetoFrontier::new();
        frontier.insert(design("A", 0.5, 1.0, 1.0));
        let text = frontier.to_string();
        assert!(text.contains("1 points") || text.contains("(1 points)"));
        assert!(text.contains("A:"));
    }
}
